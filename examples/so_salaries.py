"""Developer salaries: compare MESA with the baselines and rank responsibility.

Reproduces the Stack Overflow scenario of the paper (Examples 2.1-2.4):
the analyst wonders why the average developer salary differs so much between
countries, runs MESA and the competing baselines, inspects per-attribute
responsibility, and finally drills into the data subgroups (e.g. Europe)
where the global explanation is not satisfactory.

Run with:  python examples/so_salaries.py
"""

from __future__ import annotations

from repro import MESAConfig, load_dataset
from repro.baselines import hypdb, linear_regression, top_k
from repro.datasets import representative_queries
from repro.evaluation.scoring import simulate_user_study
from repro.mesa.system import MESA


def main() -> None:
    bundle = load_dataset("SO", seed=7, n_rows=3000)
    so_q1 = representative_queries("SO")[0]          # average salary per country
    print(f"Dataset: {bundle.name} with {bundle.n_rows} respondents")
    print(f"Query:   {so_q1.query.to_sql()}\n")

    config = MESAConfig(k=5, excluded_columns=bundle.id_columns)
    mesa = MESA(bundle.table, bundle.knowledge_graph, bundle.extraction_specs, config=config)
    result = mesa.explain(so_q1.query)

    print("MESA explanation (with degree of responsibility):")
    for attribute in result.explanation.ranked_attributes():
        responsibility = result.explanation.responsibilities.get(attribute, 0.0)
        origin = "KG" if result.candidate_set.is_extracted(attribute) else "table"
        print(f"  - {attribute:<24} responsibility {responsibility:+.2f}   [{origin}]")
    print(f"  I(O;T|C) = {result.explanation.baseline_cmi:.3f}  ->  "
          f"I(O;T|E,C) = {result.explainability:.3f}\n")

    # Competing baselines run on the same pruned candidate set for fairness.
    problem = result.problem
    explanations = {"mesa": result.explanation}
    explanations["top_k"] = top_k(problem, k=3)
    explanations["linear_regression"] = linear_regression(problem, k=3)
    explanations["hypdb"] = hypdb(problem, k=3)

    print("Baselines on the same candidates:")
    for method, explanation in explanations.items():
        print(f"  {method:<18} {', '.join(explanation.attributes) or '(none)':<50} "
              f"I(O;T|E,C)={explanation.explainability:.3f}")

    scores = simulate_user_study(explanations, so_q1, n_subjects=150, seed=1)
    print("\nSimulated user-study scores (1-5):")
    for method, score in sorted(scores.items(), key=lambda item: -item[1].mean_score):
        print(f"  {method:<18} {score.mean_score:.2f}  (variance {score.variance:.2f})")

    # Where is the explanation not good enough?  (Table 4 of the paper.)
    subgroups = mesa.unexplained_subgroups(result, k=5, threshold=0.2,
                                           refine_attributes=["Continent", "DevType",
                                                              "EdLevel", "Gender"])
    print("\nLargest data subgroups needing a different explanation:")
    for rank, subgroup in enumerate(subgroups, start=1):
        print(f"  {rank}. {subgroup.describe()}")


if __name__ == "__main__":
    main()
