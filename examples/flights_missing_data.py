"""Flight delays: knowledge mined from three entity classes + missing data.

The Flights scenario exercises the parts of MESA the other examples do not:

* extraction from *several* columns against *different* entity classes
  (origin city -> City, origin state -> State, airline -> Airline);
* selection-bias detection and inverse-probability weighting for sparsely
  populated extracted attributes;
* robustness of the explanation when values are removed at random or in a
  biased way (the Figure 3 experiment of the paper, in miniature).

Run with:  python examples/flights_missing_data.py
"""

from __future__ import annotations

from repro import MESAConfig, load_dataset
from repro.core.problem import CorrelationExplanationProblem
from repro.datasets import representative_queries
from repro.mesa.system import MESA
from repro.missingness.imputation import impute_mean
from repro.missingness.patterns import inject_biased_removal, inject_mcar


def main() -> None:
    bundle = load_dataset("Flights", seed=7, n_rows=8000)
    query = representative_queries("Flights")[0]     # average delay per origin city
    print(f"Dataset: {bundle.name} with {bundle.n_rows} flights")
    print(f"Query:   {query.query.to_sql()}\n")

    mesa = MESA(bundle.table, bundle.knowledge_graph, bundle.extraction_specs,
                config=MESAConfig(k=4, excluded_columns=bundle.id_columns))
    result = mesa.explain(query.query)

    print("Extraction summary:")
    for extraction in mesa.extraction_results():
        failures = len(extraction.linking_failures())
        print(f"  from {extraction.key_column:<13} {extraction.n_attributes:>3} attributes "
              f"({failures} values failed entity linking)")

    print(f"\nMESA explanation: {', '.join(result.attributes) or '(none)'}")
    print(f"I(O;T|C) = {result.explanation.baseline_cmi:.3f} -> "
          f"I(O;T|E,C) = {result.explainability:.3f}")
    biased = result.biased_attributes()
    print(f"Attributes with detected selection bias (IPW applied): {len(biased)}")

    # Robustness of the found explanation to additional missing data.
    explanation = list(result.attributes)
    problem = result.problem
    numeric_targets = [a for a in explanation
                       if problem.context_table.column(a).is_numeric()]
    print("\nExplainability of the explanation under injected missingness:")
    print(f"  {'regime':<28} {'25% missing':>12} {'50% missing':>12}")
    for label, degrade in (
            ("missing at random", lambda t, f: inject_mcar(t, numeric_targets, f, seed=3)),
            ("biased removal (top values)", lambda t, f: inject_biased_removal(t, numeric_targets, f)),
            ("mean imputation", lambda t, f: impute_mean(
                inject_mcar(t, numeric_targets, f, seed=3), numeric_targets))):
        scores = []
        for fraction in (0.25, 0.5):
            degraded = degrade(problem.context_table, fraction)
            fresh = CorrelationExplanationProblem(degraded, result.query, explanation)
            scores.append(fresh.explanation_score(explanation))
        print(f"  {label:<28} {scores[0]:>12.3f} {scores[1]:>12.3f}")
    print("\nThe missing-aware estimates stay close to the clean-data score, while")
    print("mean imputation distorts the dependence structure - the Figure 3 story.")


if __name__ == "__main__":
    main()
