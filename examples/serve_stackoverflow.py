"""Serve Stack Overflow salary explanations over HTTP, end to end.

Starts a serving backend for the synthetic Stack Overflow dataset — an
in-process :class:`~repro.serving.ExplanationService` by default, or a
sharded :class:`~repro.serving.ServiceCluster` of worker processes with
``--workers N`` (the *same* HTTP handler serves both) — brings up the
JSON-over-HTTP front end on a free port, and then plays a short traffic
script against it:

1. a cold ``POST /explain`` (full engine run),
2. the same request again (explanation-cache hit, byte-identical),
3. a repeated-context batch (``POST /explain_batch`` — the context-level
   frame cache means the shared WHERE clause is encoded once),
4. a burst of identical concurrent requests (coalesced to one execution),
5. ``GET /stats`` to show what the serving layer did — in cluster mode
   including the merged counter view and per-worker cache hit rates.

Run with:  PYTHONPATH=src python examples/serve_stackoverflow.py [--workers 4]

For a long-running server use the CLI instead:

    PYTHONPATH=src python -m repro.serving --dataset SO --port 8080 --workers 4
"""

from __future__ import annotations

import argparse
import json
import threading
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor

from repro import MESAConfig, load_dataset
from repro.serving import (
    ClusterClient,
    ExplanationService,
    LocalClient,
    ServiceCluster,
    make_server,
)


def post(base: str, path: str, body: dict) -> dict:
    request = urllib.request.Request(
        base + path, data=json.dumps(body).encode("utf-8"), method="POST")
    with urllib.request.urlopen(request, timeout=300) as response:
        return json.loads(response.read())


def get(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=60) as response:
        return json.loads(response.read())


def build_client(bundle, n_workers: int):
    config = MESAConfig(excluded_columns=tuple(bundle.id_columns), k=3)
    if n_workers <= 1:
        service = ExplanationService(cache_size=4096,
                                     coalesce_window_seconds=0.01)
        print(f"Registering {bundle.name} ({bundle.table.n_rows} rows) and "
              f"warming the cross-query caches ...")
        service.register_bundle(bundle, config=config)
        return LocalClient(service)
    cluster = ServiceCluster(n_workers=n_workers)
    cluster.register_bundle(bundle, config=config)
    print(f"Starting {n_workers} worker processes for {bundle.name} "
          f"({bundle.table.n_rows} rows); each warms its own caches ...")
    return ClusterClient(cluster)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=1,
                        help="1 = in-process service, N > 1 = sharded cluster")
    args = parser.parse_args()

    bundle = load_dataset("SO", seed=7, n_rows=2000)
    client = build_client(bundle, args.workers)

    server = make_server(client, port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    base = "http://{}:{}".format(*server.server_address[:2])
    print(f"Serving on {base}\n")

    explain_salary = {
        "dataset": "SO",
        "sql": "SELECT Country, avg(Salary) FROM SO GROUP BY Country",
        "k": 3,
    }

    # 1-2. Cold request, then the cache hit.
    start = time.perf_counter()
    cold = post(base, "/explain", explain_salary)
    cold_seconds = time.perf_counter() - start
    start = time.perf_counter()
    warm = post(base, "/explain", explain_salary)
    warm_seconds = time.perf_counter() - start
    print(f"Cold explain: {cold_seconds * 1e3:.0f} ms, attributes="
          f"{cold['envelope']['explanation']['attributes']}")
    print(f"Warm repeat:  {warm_seconds * 1e3:.1f} ms "
          f"(cache_hit={warm['cache_hit']}, byte-identical="
          f"{warm['envelope'] == cold['envelope']})\n")

    # 3. A repeated-context batch: every query shares the WHERE clause, so
    #    the context-level frame cache factorises the columns only once.
    context = [{"column": "Continent", "op": "eq", "value": "Europe"}]
    batch = post(base, "/explain_batch", {
        "dataset": "SO",
        "queries": [
            {"exposure": "Country", "outcome": "Salary", "context": context},
            {"exposure": "EdLevel", "outcome": "Salary", "context": context},
            {"exposure": "DevType", "outcome": "Salary", "context": context},
        ],
        "k": 3,
    })
    print("Repeated-context batch:")
    for result in batch["results"]:
        explanation = result["envelope"]["explanation"]
        print(f"  {result['envelope']['query']['exposure']:>8} -> "
              f"{explanation['attributes']}")

    # 4. A thundering herd of one query: requests attach to the in-flight
    #    execution instead of recomputing.
    herd_query = {
        "dataset": "SO", "exposure": "EdLevel", "outcome": "Salary", "k": 2,
    }
    with ThreadPoolExecutor(max_workers=8) as pool:
        herd = list(pool.map(
            lambda _: post(base, "/explain", herd_query), range(8)))
    verdicts = {(one["cache_hit"], one["coalesced"]) for one in herd}
    print(f"\nHerd of 8 identical requests -> verdicts {sorted(verdicts)} "
          "(one execution, everyone else cache/in-flight)")

    # 5. What the serving layer did.
    stats = get(base, "/stats")
    cache = stats["cache"]
    counters = stats["contexts"]["SO"]["counters"]
    print(f"\nStats: cache {cache['hits']} hits / {cache['misses']} misses "
          f"(per dataset: {cache['by_dataset']}); "
          f"engine explained {counters['queries_explained']} queries, "
          f"frame cache {counters.get('frame_cache_hits', 0)} hits")
    if "batchers" in stats:
        batcher = stats["batchers"]["SO"]
        print(f"Batcher deduplicated {batcher['requests_deduplicated']} of "
              f"{batcher['requests_submitted']} submissions")
    if "cluster" in stats:
        front = stats["cluster"]
        print(f"Front tier: {front['requests_routed']} requests routed over "
              f"{front['n_workers']} workers, "
              f"{front['requests_deduplicated']} deduplicated in flight, "
              f"{front['worker_restarts']} restarts")
        print("Per-worker cache hit rates (merged stats keep the breakdown):")
        for worker_id, snapshot in sorted(stats["workers"].items()):
            worker_cache = snapshot["cache"]
            total = worker_cache["hits"] + worker_cache["misses"]
            rate = worker_cache["hits"] / total if total else 0.0
            print(f"  worker {worker_id}: {worker_cache['hits']:>3} hits / "
                  f"{worker_cache['misses']:>3} misses "
                  f"({rate:.0%} hit rate, {worker_cache['size']} resident)")

    server.shutdown()
    server.server_close()
    client.close()


if __name__ == "__main__":
    main()
