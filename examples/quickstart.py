"""Quickstart: explain a confounded aggregate query with MESA.

Builds the synthetic Covid-19 dataset and its DBpedia-like knowledge graph,
runs the paper's motivating query (average deaths per 100 cases by country),
and asks MESA for the confounding attributes that explain the observed
correlation.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import MESA, MESAConfig, load_dataset
from repro.mesa.report import render_report
from repro.query.parser import parse_query


def main() -> None:
    # 1. Load the dataset bundle: the table, the knowledge graph and the
    #    extraction specification (link the Country column to Country entities).
    bundle = load_dataset("Covid-19", seed=7)
    print(f"Loaded {bundle.name}: {bundle.table.n_rows} rows, "
          f"{bundle.knowledge_graph.n_entities} KG entities")

    # 2. The analyst's query, written the way the paper writes it.
    query = parse_query(
        "SELECT Country, avg(Deaths_per_100_cases) FROM Covid GROUP BY Country",
        name="Covid-Q1",
    )
    print("\nQuery result (first groups):")
    print(query.execute(bundle.table).to_text(max_rows=8))

    # 3. Ask MESA for an explanation of the Country <-> death-rate correlation.
    mesa = MESA(bundle.table, bundle.knowledge_graph, bundle.extraction_specs,
                config=MESAConfig(k=5, excluded_columns=bundle.id_columns))
    result = mesa.explain(query)

    # 4. Identify data subgroups for which the explanation is not satisfactory.
    subgroups = mesa.unexplained_subgroups(result, k=3)

    print()
    print(render_report(result, subgroups))

    print("Interpretation: the death-rate differences between countries are")
    print("largely explained by country development (HDI / GDP, mined from the")
    print("knowledge graph) together with the confirmed-case load already in")
    print("the table - the confounders planted by the synthetic world model.")


if __name__ == "__main__":
    main()
