"""Quickstart: explain a confounded aggregate query with the explanation engine.

Builds the synthetic Covid-19 dataset and its DBpedia-like knowledge graph,
runs the paper's motivating query (average deaths per 100 cases by country)
through the staged :class:`ExplanationPipeline`, and prints the confounding
attributes that explain the observed correlation — then shows the batch API
and the JSON-serializable result envelope.

Migration note: the historical ``MESA`` facade still works unchanged
(``MESA(table, kg, specs).explain(query)``); it is now a thin shim over the
pipeline used below, so switching is a rename, not a rewrite.  The facade
is still the home of ``unexplained_subgroups``.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import MESA, MESAConfig, load_dataset
from repro.engine import ExplanationPipeline
from repro.mesa.report import render_report
from repro.query.parser import parse_query


def main() -> None:
    # 1. Load the dataset bundle: the table, the knowledge graph and the
    #    extraction specification (link the Country column to Country entities).
    bundle = load_dataset("Covid-19", seed=7)
    print(f"Loaded {bundle.name}: {bundle.table.n_rows} rows, "
          f"{bundle.knowledge_graph.n_entities} KG entities")

    # 2. The analyst's query, written the way the paper writes it.
    query = parse_query(
        "SELECT Country, avg(Deaths_per_100_cases) FROM Covid GROUP BY Country",
        name="Covid-Q1",
    )
    print("\nQuery result (first groups):")
    print(query.execute(bundle.table).to_text(max_rows=8))

    # 3. Build the engine pipeline and explain the Country <-> death-rate
    #    correlation.  The pipeline's context caches extraction and offline
    #    pruning, so follow-up queries skip the pre-processing.
    pipeline = ExplanationPipeline(
        bundle.table, bundle.knowledge_graph, bundle.extraction_specs,
        config=MESAConfig(k=5, excluded_columns=bundle.id_columns))
    result = pipeline.explain(query)

    # 4. Identify data subgroups for which the explanation is not satisfactory
    #    (the subgroup analysis lives on the MESA facade, which shares the
    #    engine underneath).
    mesa = MESA(bundle.table, bundle.knowledge_graph, bundle.extraction_specs,
                config=pipeline.config)
    subgroups = mesa.unexplained_subgroups(result, k=3)

    print()
    print(render_report(result, subgroups))

    # 5. Batch + serving: explain every representative query in one call —
    #    extraction/offline pruning run once for the whole batch — and ship
    #    a result across a process boundary as a JSON envelope.
    batch = pipeline.explain_many([q.query for q in bundle.queries], k=3)
    print(f"Batch: explained {len(batch)} queries; "
          f"extraction ran {pipeline.context.counters['extraction_runs']}x, "
          f"offline pruning ran {pipeline.context.counters['offline_pruning_runs']}x")
    envelope = result.to_envelope()
    print(f"Envelope: {len(envelope.to_json())} bytes of JSON, "
          f"attributes={list(envelope.explanation.attributes)}")

    #    Large batches can opt into worker fan-out: n_jobs=2 runs thread
    #    workers over forked contexts (same results, counters merged back),
    #    and explain_many_envelopes(..., backend="process") forks OS
    #    processes that ship JSON envelopes back — the serving-tier shape.
    parallel = pipeline.explain_many([q.query for q in bundle.queries],
                                     k=3, n_jobs=2)
    print(f"Parallel batch: {len(parallel)} queries over "
          f"{pipeline.context.counters['parallel_workers']} workers")

    # 6. The batched inference backend: permutation tests run blocked (one
    #    shared bincount per block, bit-identical p-values) and IPW selection
    #    fits are cached by missingness mask + design and solved multi-label.
    #    Both are on by default; `permutation_early_exit` additionally stops
    #    a permutation run the moment its verdict is determined (verdicts
    #    preserved, p-value resolution traded for speed).  The backend
    #    counters land next to the cache counters.
    fast = ExplanationPipeline(
        bundle.table, bundle.knowledge_graph, bundle.extraction_specs,
        config=pipeline.config.with_overrides(permutation_early_exit=True))
    fast.explain_many([q.query for q in bundle.queries], k=3)
    counters = fast.context.counters
    seconds = fast.context.stage_seconds
    print(f"Inference backend: ipw fits {counters.get('ipw_fit_miss', 0)} "
          f"fitted / {counters.get('ipw_fit_hit', 0)} cached, "
          f"{counters.get('perm_early_exit', 0)} permutation tests exited "
          f"early saving {counters.get('perm_saved', 0)} permutations "
          f"(ipw_fit {seconds.get('ipw_fit', 0.0):.3f}s, "
          f"permutation_test {seconds.get('permutation_test', 0.0):.3f}s)")

    #    The adaptive scheduler goes further: `max_responsibility_permutations`
    #    lets statistically uncertain permutation tests extend their budget
    #    (clear-cut ones still exit early), and `speculative_search` overlaps
    #    each MCIMR round's responsibility test with the next round's
    #    candidate scoring on a worker thread — bit-identical explanations,
    #    better wall-clock.  `permutation_rng_stream="argsort"` additionally
    #    vectorises the permutation draw (a different documented RNG stream,
    #    matching in distribution rather than bit-for-bit).
    adaptive = ExplanationPipeline(
        bundle.table, bundle.knowledge_graph, bundle.extraction_specs,
        config=pipeline.config.with_overrides(
            max_responsibility_permutations=200,
            permutation_rng_stream="argsort",
            speculative_search=True))
    adaptive.explain_many([q.query for q in bundle.queries], k=3)
    counters = adaptive.context.counters
    print(f"Adaptive scheduler: {counters.get('perm_budget_extended', 0)} "
          f"budgets extended, {counters.get('perm_budget_saved', 0)} "
          f"permutations saved, speculation "
          f"{counters.get('speculation_hit', 0)} hits / "
          f"{counters.get('speculation_waste', 0)} discards")

    # 7. Serving: wrap the warm context in an ExplanationService — repeated
    #    requests are answered byte-identically from the explanation cache,
    #    concurrent misses coalesce into single engine batches, and
    #    client-input errors are negative-cached so hostile repeats never
    #    reach the engine.  (The HTTP form of this is
    #    `python -m repro.serving --dataset SO`; see
    #    examples/serve_stackoverflow.py for the full tour.  GET /stats
    #    surfaces every counter printed above.)
    from repro.serving import ExplanationService

    with ExplanationService(cache_size=1024) as service:
        service.register("covid", pipeline, warm=False)
        served = service.explain("covid", query, k=3)
        repeat = service.explain("covid", query, k=3)
        print(f"Service: first request cache_hit={served.cache_hit}, "
              f"repeat cache_hit={repeat.cache_hit} "
              f"(same envelope: {repeat.envelope is served.envelope})")

    # 8. Scaling out: callers program against the transport-agnostic
    #    ExplanationClient protocol (explain / explain_batch / stats / warm
    #    / close), so *where* explanations compute is a deployment choice,
    #    not a code change:
    #      - LocalClient    wraps an in-process ExplanationService;
    #      - HTTPClient     speaks to any remote JSON deployment;
    #      - ClusterClient  shards canonical query keys over N worker
    #        processes (ServiceCluster) — stable hashing keeps each
    #        worker's caches hot for its key range, the front tier dedupes
    #        in-flight keys, merges per-worker stats and restarts dead
    #        workers.  `python -m repro.serving --workers 4` serves the
    #        same HTTP API from such a cluster.
    from repro.serving import ClusterClient, ServiceCluster

    cluster = ServiceCluster(n_workers=2)
    cluster.register_bundle(bundle, config=pipeline.config)
    with ClusterClient(cluster) as client:
        sharded = client.explain(bundle.name, query, k=3)
        same = sharded.envelope.canonical_json() == \
            served.envelope.canonical_json()
        merged = client.stats()
        print(f"Cluster: served from worker shard "
              f"(identical envelope: {same}); merged stats cover "
              f"{merged['cluster']['n_workers']} workers, "
              f"{merged['cluster']['requests_routed']} routed requests")

    # 9. Scaling the *data* axis: `shard="rows"` splits each registered
    #    table into contiguous row ranges — one per worker — and the engine
    #    scatter-gathers partial contingency counts, within-shard
    #    permutations and IRLS normal-equation partials, merging them
    #    before the entropy/solve step.  Counts are additive over row
    #    partitions, so estimates equal the single-process engine's while
    #    each worker holds only O(rows / N) of the table —
    #    `python -m repro.serving --workers 4 --shard rows` serves tables
    #    no single worker could hold, and stats() shows the per-worker
    #    layout.  (Permutation tests draw per-shard RNG streams, so a
    #    relevance verdict sitting exactly on the acceptance boundary can
    #    legitimately differ across shard layouts; this demo uses a
    #    verdict-stable query — see tests/test_distributed.py for the
    #    systematic equality coverage.)
    stable_query = bundle.queries[0].query
    direct = pipeline.explain(stable_query, k=3)
    rows_cluster = ServiceCluster(n_workers=2, shard="rows")
    rows_cluster.register_bundle(bundle, config=pipeline.config, warm=False)
    with ClusterClient(rows_cluster) as client:
        row_sharded = client.explain(bundle.name, stable_query, k=3)
        same_attrs = row_sharded.envelope.explanation.attributes == \
            direct.explanation.attributes
        layout = client.stats()["workers"]
        residency = {index: f"{worker['role']}:{worker['resident_rows']} rows"
                     for index, worker in layout.items()}
        print(f"Row shards: same attributes as the single process: "
              f"{same_attrs}; data-plane layout {residency}")

    # 10. Memory: a replica cluster holds ONE shared copy of each encoded
    #     dataset, not one per worker.  With the frame store on (the
    #     default for multi-worker clusters when /dev/shm works) the owner
    #     packs the encoded columns into POSIX shared segments and workers
    #     map them as read-only views; warm() additionally pre-encodes the
    #     hot query contexts once and publishes the frames for adoption.
    #     Scaled up — `python -m repro.serving --dataset SO --workers 8` —
    #     per-worker RSS stays near-flat as workers are added; the merged
    #     stats carry each worker's maxrss and the store's segment sizes.
    mem_cluster = ServiceCluster(n_workers=2)
    mem_cluster.register_bundle(bundle, config=pipeline.config, warm=False)
    with ClusterClient(mem_cluster) as client:
        mem_cluster.warm(bundle.name, queries=[query])
        merged = client.stats()
        store = merged["frame_store"]
        rss = {index: f"{worker['memory']['maxrss_kb'] // 1024} MiB"
               for index, worker in merged["workers"].items()}
        print(f"Frame store: enabled={store['enabled']}, "
              f"{store.get('segments', 0)} shared segments "
              f"({store.get('bytes', 0) / 1e6:.1f} MB, "
              f"{store.get('frames_published', 0)} hot frames published); "
              f"per-worker RSS {rss}")

    # 11. Observability: tracing and metrics are on by default and cheap
    #     enough to stay on.  Every served request carries a trace id whose
    #     span tree (pipeline stages, permutation tests, IPW fit batches,
    #     cache lookups, batcher queue wait — and, in a cluster, the RPCs
    #     and the worker/shard spans stitched across the process boundary)
    #     is served by GET /trace/<id>; GET /metrics exposes Prometheus
    #     text (latency histograms with estimated quantiles, cache hit
    #     ratios, engine counters) from any topology; requests slower than
    #     --slow-query-seconds write one structured JSON line with the
    #     trace id to the repro.serving.slowlog logger.
    from repro.obs.metrics import prometheus_text

    with ExplanationService(cache_size=1024) as service:
        service.register("covid", pipeline, warm=False)
        served = service.explain("covid", query, k=3)
        tree = service.tracer.trace_tree(served.trace_id)
        scrape = prometheus_text(service.stats())
        print(f"Observability: trace {served.trace_id} recorded "
              f"{tree['n_spans']} spans; "
              f"/metrics scrape is {len(scrape.splitlines())} lines "
              f"(e.g. repro_request_seconds_bucket, repro_cache_hit_ratio)")

    # 12. Durability: with a store path, envelopes and jobs survive the
    #     process.  Submit a batch as a durable job, "crash" the service
    #     mid-flight (close() checkpoints the RUNNING job exactly like
    #     SIGTERM — a SIGKILL leaves a stale RUNNING row that the next
    #     start re-queues the same way), then restart on the same SQLite
    #     file: the job resumes from its durably completed prefix and the
    #     already-answered queries replay from disk, not the engine.
    #     Operationally: `python -m repro.serving --store meta.sqlite3`,
    #     then POST /jobs, kill -9 the server, start it again, and
    #     GET /jobs/<id> shows the same job finishing.
    import os
    import tempfile
    import time
    from repro.serving.schema import query_payload

    with tempfile.TemporaryDirectory() as scratch:
        store_path = os.path.join(scratch, "meta.sqlite3")
        batch = [query_payload(entry.query, k=3)
                 for entry in bundle.queries[:4]]

        service = ExplanationService(store=store_path,
                                     coalesce_window_seconds=0.0)
        service.register_bundle(bundle, config=pipeline.config, warm=False)
        service.enable_jobs()
        job_id = service.jobs.submit(bundle.name, queries=batch, k=3)
        while not service.jobs.store.job_result_positions(job_id):
            time.sleep(0.01)  # let at least one query land durably
        service.close()  # the "crash": job checkpoints mid-flight

        reborn = ExplanationService(store=store_path,
                                    coalesce_window_seconds=0.0)
        reborn.register_bundle(bundle, config=pipeline.config, warm=False)
        reborn.enable_jobs()  # re-queues + resumes the interrupted job
        done = reborn.jobs.wait(job_id, timeout=120)
        stats = reborn.jobs.stats()
        print(f"Durable jobs: job {job_id[:8]} survived a restart — "
              f"state {done['state']}, "
              f"{done['progress']['done']}/{done['progress']['total']} "
              f"queries, {stats['queries_resumed']} resumed from the "
              f"store, {stats['queries_executed']} executed after rebirth")
        reborn.close()

    print()
    print("Interpretation: the death-rate differences between countries are")
    print("largely explained by country development (HDI / GDP, mined from the")
    print("knowledge graph) together with the confirmed-case load already in")
    print("the table - the confounders planted by the synthetic world model.")


if __name__ == "__main__":
    main()
