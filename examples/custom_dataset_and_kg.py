"""Using MESA on your own table and your own knowledge source.

The other examples use the bundled synthetic datasets; this one shows the
path a downstream user takes with their own data:

1. build (or load) a table with the columnar engine;
2. describe the domain knowledge as a small knowledge graph;
3. point MESA at the table, the graph and the linking column;
4. read the explanation.

The toy domain: an online retailer wonders why average delivery delay
differs so much between carriers.  The hidden confounder is the share of
rural deliveries each carrier handles - a fact that lives in the company's
knowledge base, not in the orders table.

Run with:  python examples/custom_dataset_and_kg.py
"""

from __future__ import annotations

import numpy as np

from repro import MESA, MESAConfig, Table
from repro.datasets.registry import ExtractionSpec
from repro.kg.graph import Entity, KnowledgeGraph
from repro.query.aggregate_query import AggregateQuery


def build_orders(n_orders: int = 3000, seed: int = 0) -> Table:
    """Synthesise the orders table: carrier, weight, priority, delay."""
    rng = np.random.default_rng(seed)
    carriers = {
        # carrier -> (rural share, fleet age years)
        "NorthPost": (0.65, 9.0),
        "CityExpress": (0.10, 3.0),
        "RegioShip": (0.45, 6.0),
        "MetroRush": (0.05, 2.0),
        "CountryCargo": (0.80, 11.0),
        "LakesideLogistics": (0.55, 8.0),
        "UrbanParcel": (0.10, 4.0),
        "HighlandHaul": (0.70, 10.0),
        "CoastalCourier": (0.25, 5.0),
        "PrairiePost": (0.60, 9.0),
        "DowntownDrop": (0.05, 3.0),
        "ValleyVan": (0.40, 7.0),
    }
    rows = []
    names = list(carriers)
    for order in range(n_orders):
        carrier = names[int(rng.integers(0, len(names)))]
        rural_share, fleet_age = carriers[carrier]
        rural = rng.random() < rural_share
        weight = float(np.clip(rng.lognormal(0.5, 0.6), 0.1, 40.0))
        priority = "express" if rng.random() < 0.3 else "standard"
        delay = 1.0 + (3.5 if rural else 0.0) + 0.35 * fleet_age + 0.05 * weight
        delay += (-0.8 if priority == "express" else 0.0) + rng.normal(0, 1.2)
        rows.append({"Order": order, "Carrier": carrier, "Weight": round(weight, 2),
                     "Priority": priority, "Delay_days": round(max(0.1, delay), 2)})
    return Table.from_rows(rows, name="orders")


def build_carrier_kg() -> KnowledgeGraph:
    """The company knowledge base: per-carrier operational facts."""
    graph = KnowledgeGraph(name="carrier-kb")
    facts = {
        "NorthPost": {"Rural delivery share": 0.65, "Fleet age": 9.0, "Hubs": 4},
        "CityExpress": {"Rural delivery share": 0.10, "Fleet age": 3.0, "Hubs": 12},
        "RegioShip": {"Rural delivery share": 0.45, "Fleet age": 6.0, "Hubs": 7},
        "MetroRush": {"Rural delivery share": 0.05, "Fleet age": 2.0, "Hubs": 15},
        "CountryCargo": {"Rural delivery share": 0.80, "Fleet age": 11.0, "Hubs": 3},
        "LakesideLogistics": {"Rural delivery share": 0.55, "Fleet age": 8.0, "Hubs": 5},
        "UrbanParcel": {"Rural delivery share": 0.10, "Fleet age": 4.0, "Hubs": 11},
        "HighlandHaul": {"Rural delivery share": 0.70, "Fleet age": 10.0, "Hubs": 4},
        "CoastalCourier": {"Rural delivery share": 0.25, "Fleet age": 5.0, "Hubs": 9},
        "PrairiePost": {"Rural delivery share": 0.60, "Fleet age": 9.0, "Hubs": 5},
        "DowntownDrop": {"Rural delivery share": 0.05, "Fleet age": 3.0, "Hubs": 14},
        "ValleyVan": {"Rural delivery share": 0.40, "Fleet age": 7.0, "Hubs": 8},
    }
    for name, properties in facts.items():
        entity_id = f"carrier:{name.lower()}"
        graph.add_entity(Entity(entity_id, name, "Carrier"))
        for property_name, value in properties.items():
            graph.add_fact(entity_id, property_name, value)
    return graph


def main() -> None:
    orders = build_orders()
    knowledge = build_carrier_kg()
    query = AggregateQuery(exposure="Carrier", outcome="Delay_days", aggregate="avg",
                           table_name="orders", name="delay-by-carrier")
    print(f"Orders table: {orders.n_rows} rows; knowledge base: "
          f"{knowledge.n_entities} entities, {knowledge.n_facts} facts")
    print(query.to_sql())
    print("\nQuery result:")
    print(query.execute(orders).to_text())

    mesa = MESA(orders, knowledge,
                extraction_specs=[ExtractionSpec(column="Carrier", entity_class="Carrier")],
                config=MESAConfig(k=3, excluded_columns=("Order",)))
    result = mesa.explain(query)

    print("\nExplanation:")
    for attribute in result.explanation.ranked_attributes():
        responsibility = result.explanation.responsibilities.get(attribute, 0.0)
        print(f"  - {attribute} (responsibility {responsibility:+.2f})")
    print(f"I(O;T|C) = {result.explanation.baseline_cmi:.3f} -> "
          f"I(O;T|E,C) = {result.explainability:.3f}")
    print("\nThe delay differences between carriers are explained by how rural their")
    print("delivery areas are and how old their fleets are - facts from the")
    print("knowledge base, not from the orders table itself.")


if __name__ == "__main__":
    main()
