"""The shared synthetic world model.

Every entity used by the synthetic datasets and the synthetic knowledge
graph is defined here exactly once: countries with their economic and
demographic facts, US cities and states with climate and population facts,
airlines with financial facts, and celebrities with career facts.

The facts serve two purposes:

* the knowledge-graph builder (:mod:`repro.kg.synthetic`) turns them into
  triples (the "DBpedia" the extractor mines), and
* the dataset generators (:mod:`repro.datasets.stackoverflow` and friends)
  use a *subset* of them as the hidden drivers of the outcomes — those
  drivers are deliberately *not* placed in the generated tables, so the only
  way for an algorithm to explain the resulting correlations is to mine the
  KG, exactly as in the paper's motivating examples.

The numbers are plausible (2020-era magnitudes) but are not intended to be
exact statistics; only their relative ordering and co-variation matter for
reproducing the paper's experimental behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

# --------------------------------------------------------------------------- #
# Countries
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class CountryFacts:
    """Ground facts about one country."""

    name: str
    aliases: Tuple[str, ...]
    continent: str
    who_region: str
    hdi: float                 # Human Development Index, 0..1
    gdp_per_capita: float      # thousands of USD
    gini: float                # Gini index, 0..100
    density: float             # people per km^2
    population_millions: float
    area_thousand_km2: float
    currency: str
    language: str
    established_year: int
    time_zone: str


# name, aliases, continent, WHO region, HDI, GDP/cap(k$), Gini, density, pop(M), area(k km2), currency, language, established, tz
_COUNTRY_ROWS: List[Tuple] = [
    ("United States", ("USA", "US", "United States of America"), "North America", "Americas",
     0.926, 63.5, 41.4, 36.0, 331.0, 9834.0, "US Dollar", "English", 1776, "UTC-5"),
    ("Germany", (), "Europe", "Europe", 0.947, 46.2, 31.9, 240.0, 83.1, 357.0,
     "Euro", "German", 1871, "UTC+1"),
    ("France", (), "Europe", "Europe", 0.901, 39.0, 32.4, 119.0, 67.4, 551.0,
     "Euro", "French", 843, "UTC+1"),
    ("Italy", (), "Europe", "Europe", 0.892, 31.7, 35.9, 206.0, 60.4, 301.0,
     "Euro", "Italian", 1861, "UTC+1"),
    ("Spain", (), "Europe", "Europe", 0.904, 27.0, 34.7, 94.0, 47.4, 506.0,
     "Euro", "Spanish", 1479, "UTC+1"),
    ("United Kingdom", ("UK", "Great Britain"), "Europe", "Europe", 0.932, 40.3, 34.8, 281.0,
     67.2, 244.0, "Pound Sterling", "English", 1707, "UTC+0"),
    ("Switzerland", (), "Europe", "Europe", 0.955, 86.6, 33.1, 219.0, 8.6, 41.0,
     "Swiss Franc", "German", 1291, "UTC+1"),
    ("Denmark", (), "Europe", "Europe", 0.940, 60.2, 28.2, 137.0, 5.8, 43.0,
     "Danish Krone", "Danish", 1849, "UTC+1"),
    ("Norway", (), "Europe", "Europe", 0.957, 67.2, 27.6, 15.0, 5.4, 385.0,
     "Norwegian Krone", "Norwegian", 1814, "UTC+1"),
    ("Sweden", (), "Europe", "Europe", 0.945, 52.0, 30.0, 25.0, 10.4, 450.0,
     "Swedish Krona", "Swedish", 1523, "UTC+1"),
    ("Netherlands", ("Holland",), "Europe", "Europe", 0.944, 52.3, 28.5, 508.0, 17.4, 42.0,
     "Euro", "Dutch", 1581, "UTC+1"),
    ("Poland", (), "Europe", "Europe", 0.880, 15.7, 30.2, 124.0, 38.0, 313.0,
     "Zloty", "Polish", 1025, "UTC+1"),
    ("Romania", (), "Europe", "Europe", 0.828, 12.9, 34.8, 84.0, 19.2, 238.0,
     "Romanian Leu", "Romanian", 1859, "UTC+2"),
    ("Ukraine", (), "Europe", "Europe", 0.779, 3.7, 26.6, 75.0, 44.1, 604.0,
     "Hryvnia", "Ukrainian", 1991, "UTC+2"),
    ("Russia", ("Russian Federation",), "Europe", "Europe", 0.824, 10.1, 37.5, 9.0, 144.1,
     17098.0, "Russian Ruble", "Russian", 862, "UTC+3"),
    ("Greece", (), "Europe", "Europe", 0.888, 17.7, 34.4, 81.0, 10.7, 132.0,
     "Euro", "Greek", 1821, "UTC+2"),
    ("Portugal", (), "Europe", "Europe", 0.864, 22.2, 33.8, 111.0, 10.3, 92.0,
     "Euro", "Portuguese", 1143, "UTC+0"),
    ("Ireland", (), "Europe", "Europe", 0.955, 85.3, 32.8, 72.0, 5.0, 70.0,
     "Euro", "English", 1922, "UTC+0"),
    ("Czech Republic", ("Czechia",), "Europe", "Europe", 0.900, 22.9, 25.0, 139.0, 10.7, 79.0,
     "Czech Koruna", "Czech", 1993, "UTC+1"),
    ("Austria", (), "Europe", "Europe", 0.922, 48.1, 30.8, 109.0, 8.9, 84.0,
     "Euro", "German", 1955, "UTC+1"),
    ("China", ("People's Republic of China", "PRC"), "Asia", "Western Pacific",
     0.761, 10.5, 38.5, 153.0, 1402.0, 9597.0, "Renminbi", "Mandarin", -221, "UTC+8"),
    ("India", (), "Asia", "South-East Asia", 0.645, 1.9, 35.7, 464.0, 1380.0, 3287.0,
     "Indian Rupee", "Hindi", 1947, "UTC+5:30"),
    ("Japan", (), "Asia", "Western Pacific", 0.919, 40.1, 32.9, 347.0, 125.8, 378.0,
     "Yen", "Japanese", 660, "UTC+9"),
    ("South Korea", ("Republic of Korea", "Korea"), "Asia", "Western Pacific",
     0.916, 31.5, 31.4, 527.0, 51.8, 100.0, "South Korean Won", "Korean", 1948, "UTC+9"),
    ("Israel", (), "Asia", "Europe", 0.919, 43.6, 39.0, 400.0, 9.2, 22.0,
     "New Shekel", "Hebrew", 1948, "UTC+2"),
    ("Turkey", (), "Asia", "Europe", 0.820, 8.5, 41.9, 109.0, 84.3, 784.0,
     "Turkish Lira", "Turkish", 1923, "UTC+3"),
    ("Iran", ("Islamic Republic of Iran",), "Asia", "Eastern Mediterranean",
     0.783, 5.9, 40.8, 52.0, 84.0, 1648.0, "Iranian Rial", "Persian", 1979, "UTC+3:30"),
    ("Pakistan", (), "Asia", "Eastern Mediterranean", 0.557, 1.2, 33.5, 287.0, 220.9, 796.0,
     "Pakistani Rupee", "Urdu", 1947, "UTC+5"),
    ("Bangladesh", (), "Asia", "South-East Asia", 0.632, 2.0, 32.4, 1265.0, 164.7, 148.0,
     "Taka", "Bengali", 1971, "UTC+6"),
    ("Indonesia", (), "Asia", "South-East Asia", 0.718, 3.9, 38.2, 151.0, 273.5, 1905.0,
     "Rupiah", "Indonesian", 1945, "UTC+7"),
    ("Vietnam", ("Viet Nam",), "Asia", "Western Pacific", 0.704, 2.8, 35.7, 314.0, 97.3, 331.0,
     "Dong", "Vietnamese", 1945, "UTC+7"),
    ("Singapore", (), "Asia", "Western Pacific", 0.938, 59.8, 45.9, 8358.0, 5.7, 0.73,
     "Singapore Dollar", "English", 1965, "UTC+8"),
    ("Brazil", (), "South America", "Americas", 0.765, 6.8, 53.4, 25.0, 212.6, 8516.0,
     "Brazilian Real", "Portuguese", 1822, "UTC-3"),
    ("Argentina", (), "South America", "Americas", 0.845, 8.4, 42.9, 17.0, 45.4, 2780.0,
     "Argentine Peso", "Spanish", 1816, "UTC-3"),
    ("Colombia", (), "South America", "Americas", 0.767, 5.3, 51.3, 46.0, 50.9, 1142.0,
     "Colombian Peso", "Spanish", 1810, "UTC-5"),
    ("Mexico", (), "North America", "Americas", 0.779, 8.3, 45.4, 66.0, 128.9, 1964.0,
     "Mexican Peso", "Spanish", 1821, "UTC-6"),
    ("Canada", (), "North America", "Americas", 0.929, 43.2, 33.3, 4.0, 38.0, 9985.0,
     "Canadian Dollar", "English", 1867, "UTC-5"),
    ("South Africa", (), "Africa", "Africa", 0.709, 5.1, 63.0, 49.0, 59.3, 1221.0,
     "Rand", "Zulu", 1961, "UTC+2"),
    ("Nigeria", (), "Africa", "Africa", 0.539, 2.1, 35.1, 226.0, 206.1, 924.0,
     "Naira", "English", 1960, "UTC+1"),
    ("Egypt", (), "Africa", "Eastern Mediterranean", 0.707, 3.6, 31.5, 103.0, 102.3, 1010.0,
     "Egyptian Pound", "Arabic", 1922, "UTC+2"),
    ("Kenya", (), "Africa", "Africa", 0.601, 1.8, 40.8, 94.0, 53.8, 580.0,
     "Kenyan Shilling", "Swahili", 1963, "UTC+3"),
    ("Ethiopia", (), "Africa", "Africa", 0.485, 0.9, 35.0, 115.0, 115.0, 1104.0,
     "Birr", "Amharic", -980, "UTC+3"),
    ("Morocco", (), "Africa", "Eastern Mediterranean", 0.686, 3.2, 39.5, 83.0, 36.9, 447.0,
     "Moroccan Dirham", "Arabic", 788, "UTC+1"),
    ("Australia", (), "Oceania", "Western Pacific", 0.944, 51.8, 34.4, 3.0, 25.7, 7692.0,
     "Australian Dollar", "English", 1901, "UTC+10"),
    ("New Zealand", (), "Oceania", "Western Pacific", 0.931, 41.2, 36.2, 19.0, 5.1, 268.0,
     "New Zealand Dollar", "English", 1907, "UTC+12"),
]


def countries() -> List[CountryFacts]:
    """All countries of the world model."""
    return [CountryFacts(*row) for row in _COUNTRY_ROWS]


def country_index() -> Dict[str, CountryFacts]:
    """Mapping from country name to its facts."""
    return {facts.name: facts for facts in countries()}


def _rank(values: Dict[str, float], descending: bool = True) -> Dict[str, int]:
    """Rank entity names by a value (1 = largest when descending)."""
    ordered = sorted(values, key=lambda name: values[name], reverse=descending)
    return {name: position + 1 for position, name in enumerate(ordered)}


def country_derived_properties() -> Dict[str, Dict[str, object]]:
    """Derived per-country properties (ranks, census counts, nominal GDP).

    The derived properties are what DBpedia-style graphs typically carry in
    addition to the base statistic (e.g. both ``HDI`` and ``HDI Rank``);
    having both lets the redundancy-related behaviour of the paper (Top-K
    picking ``Year Low F`` *and* ``Year Avg F``) show up naturally.
    """
    facts = country_index()
    hdi_rank = _rank({name: c.hdi for name, c in facts.items()})
    gdp_rank = _rank({name: c.gdp_per_capita for name, c in facts.items()})
    gini_rank = _rank({name: c.gini for name, c in facts.items()})
    area_rank = _rank({name: c.area_thousand_km2 for name, c in facts.items()})
    population_rank = _rank({name: c.population_millions for name, c in facts.items()})
    derived: Dict[str, Dict[str, object]] = {}
    for name, country in facts.items():
        census = round(country.population_millions * 1_000_000)
        derived[name] = {
            "HDI Rank": hdi_rank[name],
            "GDP Rank": gdp_rank[name],
            "Gini Rank": gini_rank[name],
            "Area Rank": area_rank[name],
            "Population Rank": population_rank[name],
            "Population Census": census,
            "Population Estimate": round(census * 1.012),
            "GDP Nominal": round(country.gdp_per_capita * country.population_millions, 1),
            "Area Km": country.area_thousand_km2 * 1000.0,
        }
    return derived


# --------------------------------------------------------------------------- #
# US cities and states (Flights dataset)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class CityFacts:
    """Ground facts about one US city."""

    name: str
    state: str
    state_code: str
    population_thousands: float
    metro_population_thousands: float
    density: float
    median_household_income: float   # thousands of USD
    year_low_f: float                # average annual low temperature (F)
    year_avg_f: float
    december_low_f: float
    precipitation_days: int
    year_snow_inches: float
    year_uv_index: float
    december_percent_sun: int


# name, state, code, pop(k), metro pop(k), density, income(k$), year low F, year avg F, dec low F,
# precip days, snow(in), uv, dec % sun
_CITY_ROWS: List[Tuple] = [
    ("New York", "New York", "NY", 8336.0, 19216.0, 11000.0, 67.0, 47.0, 55.0, 32.0, 122, 29.8, 4.1, 51),
    ("Los Angeles", "California", "CA", 3979.0, 13200.0, 3300.0, 65.0, 56.0, 64.0, 49.0, 36, 0.0, 6.3, 72),
    ("Chicago", "Illinois", "IL", 2693.0, 9458.0, 4600.0, 58.0, 42.0, 50.0, 22.0, 125, 36.7, 3.9, 41),
    ("Houston", "Texas", "TX", 2320.0, 7066.0, 1400.0, 52.0, 61.0, 70.0, 44.0, 104, 0.1, 5.6, 52),
    ("Phoenix", "Arizona", "AZ", 1680.0, 4948.0, 1200.0, 57.0, 63.0, 75.0, 45.0, 36, 0.0, 6.8, 77),
    ("Philadelphia", "Pennsylvania", "PA", 1584.0, 6102.0, 4600.0, 46.0, 46.0, 55.0, 28.0, 118, 22.4, 4.0, 49),
    ("San Antonio", "Texas", "TX", 1547.0, 2550.0, 1200.0, 52.0, 58.0, 69.0, 41.0, 88, 0.3, 5.8, 53),
    ("San Diego", "California", "CA", 1423.0, 3338.0, 1700.0, 79.0, 57.0, 64.0, 49.0, 38, 0.0, 6.2, 72),
    ("Dallas", "Texas", "TX", 1343.0, 7573.0, 1500.0, 52.0, 57.0, 67.0, 38.0, 81, 1.5, 5.7, 56),
    ("San Jose", "California", "CA", 1021.0, 1990.0, 2300.0, 109.0, 50.0, 60.0, 42.0, 60, 0.0, 5.9, 68),
    ("Austin", "Texas", "TX", 978.0, 2227.0, 1200.0, 71.0, 58.0, 68.0, 41.0, 88, 0.6, 5.8, 54),
    ("Jacksonville", "Florida", "FL", 911.0, 1559.0, 470.0, 54.0, 58.0, 69.0, 44.0, 114, 0.0, 6.0, 58),
    ("Fort Worth", "Texas", "TX", 909.0, 7573.0, 1100.0, 59.0, 56.0, 66.0, 37.0, 80, 1.8, 5.7, 56),
    ("Columbus", "Ohio", "OH", 898.0, 2122.0, 1500.0, 53.0, 44.0, 53.0, 25.0, 137, 27.5, 3.8, 34),
    ("Charlotte", "North Carolina", "NC", 885.0, 2636.0, 1100.0, 62.0, 50.0, 60.0, 33.0, 110, 4.3, 4.7, 53),
    ("San Francisco", "California", "CA", 881.0, 4731.0, 7200.0, 112.0, 51.0, 58.0, 46.0, 68, 0.0, 5.5, 59),
    ("Indianapolis", "Indiana", "IN", 876.0, 2074.0, 930.0, 47.0, 44.0, 53.0, 23.0, 126, 25.9, 3.9, 39),
    ("Seattle", "Washington", "WA", 753.0, 3979.0, 3400.0, 92.0, 45.0, 52.0, 37.0, 152, 6.3, 3.5, 20),
    ("Denver", "Colorado", "CO", 727.0, 2967.0, 1800.0, 68.0, 37.0, 51.0, 19.0, 87, 56.5, 5.3, 59),
    ("Boston", "Massachusetts", "MA", 692.0, 4873.0, 5400.0, 71.0, 44.0, 52.0, 25.0, 126, 48.0, 3.9, 49),
    ("Detroit", "Michigan", "MI", 670.0, 4319.0, 1900.0, 31.0, 41.0, 50.0, 21.0, 135, 42.5, 3.6, 29),
    ("Nashville", "Tennessee", "TN", 670.0, 1934.0, 570.0, 59.0, 49.0, 60.0, 30.0, 119, 4.7, 4.6, 43),
    ("Washington", "District of Columbia", "DC", 705.0, 6280.0, 4500.0, 86.0, 49.0, 58.0, 30.0, 115, 13.7, 4.3, 47),
    ("Las Vegas", "Nevada", "NV", 651.0, 2266.0, 1800.0, 56.0, 56.0, 69.0, 39.0, 26, 0.3, 6.5, 74),
    ("Portland", "Oregon", "OR", 654.0, 2492.0, 1900.0, 71.0, 46.0, 55.0, 36.0, 156, 4.3, 3.6, 22),
    ("Memphis", "Tennessee", "TN", 651.0, 1346.0, 800.0, 41.0, 53.0, 63.0, 33.0, 107, 3.8, 4.8, 47),
    ("Baltimore", "Maryland", "MD", 593.0, 2800.0, 2900.0, 50.0, 46.0, 56.0, 28.0, 116, 20.1, 4.2, 48),
    ("Milwaukee", "Wisconsin", "WI", 590.0, 1575.0, 2400.0, 41.0, 40.0, 48.0, 19.0, 126, 46.9, 3.7, 38),
    ("Atlanta", "Georgia", "GA", 507.0, 6020.0, 1400.0, 65.0, 53.0, 62.0, 35.0, 113, 2.2, 4.9, 52),
    ("Miami", "Florida", "FL", 468.0, 6167.0, 4900.0, 42.0, 70.0, 77.0, 62.0, 135, 0.0, 6.8, 65),
    ("Minneapolis", "Minnesota", "MN", 429.0, 3640.0, 3100.0, 62.0, 37.0, 47.0, 9.0, 114, 51.2, 3.5, 44),
    ("Salt Lake City", "Utah", "UT", 200.0, 1232.0, 700.0, 60.0, 41.0, 53.0, 24.0, 91, 56.2, 5.2, 46),
    ("Anchorage", "Alaska", "AK", 288.0, 396.0, 66.0, 84.0, 30.0, 38.0, 13.0, 114, 74.5, 2.4, 27),
    ("Honolulu", "Hawaii", "HI", 345.0, 974.0, 2200.0, 72.0, 71.0, 78.0, 66.0, 93, 0.0, 7.4, 63),
    ("Orlando", "Florida", "FL", 287.0, 2608.0, 980.0, 51.0, 61.0, 73.0, 51.0, 117, 0.0, 6.3, 59),
]


def cities() -> List[CityFacts]:
    """All US cities of the world model."""
    return [CityFacts(*row) for row in _CITY_ROWS]


def city_index() -> Dict[str, CityFacts]:
    """Mapping from city name to its facts."""
    return {facts.name: facts for facts in cities()}


def city_derived_properties() -> Dict[str, Dict[str, object]]:
    """Derived per-city properties (ranks, urban population)."""
    facts = city_index()
    population_rank = _rank({name: c.population_thousands for name, c in facts.items()})
    derived: Dict[str, Dict[str, object]] = {}
    for name, city in facts.items():
        derived[name] = {
            "Population Total": round(city.population_thousands * 1000),
            "Population Urban": round(city.population_thousands * 1000 * 0.93),
            "Population Metropolitan": round(city.metro_population_thousands * 1000),
            "Population Ranking": population_rank[name],
        }
    return derived


@dataclass(frozen=True)
class StateFacts:
    """Ground facts about one US state."""

    name: str
    code: str
    population_millions: float
    density: float
    median_household_income: float
    year_low_f: float
    record_low_f: float
    december_record_low_f: float
    year_snow_inches: float
    precipitation_days: int


_STATE_ROWS: List[Tuple] = [
    ("New York", "NY", 19.5, 161.0, 72.0, 41.0, -52.0, -34.0, 62.0, 124),
    ("California", "CA", 39.5, 97.0, 80.0, 50.0, -45.0, -25.0, 5.0, 52),
    ("Illinois", "IL", 12.7, 89.0, 69.0, 42.0, -38.0, -25.0, 27.0, 115),
    ("Texas", "TX", 29.0, 42.0, 64.0, 57.0, -23.0, -10.0, 1.5, 84),
    ("Arizona", "AZ", 7.3, 25.0, 62.0, 52.0, -40.0, -20.0, 2.0, 44),
    ("Pennsylvania", "PA", 12.8, 110.0, 63.0, 43.0, -42.0, -28.0, 36.0, 130),
    ("Florida", "FL", 21.5, 145.0, 59.0, 62.0, -2.0, 8.0, 0.0, 120),
    ("Ohio", "OH", 11.7, 109.0, 58.0, 43.0, -39.0, -25.0, 28.0, 134),
    ("North Carolina", "NC", 10.5, 80.0, 57.0, 48.0, -34.0, -20.0, 5.0, 112),
    ("Indiana", "IN", 6.7, 73.0, 57.0, 43.0, -36.0, -23.0, 25.0, 124),
    ("Washington", "WA", 7.6, 44.0, 78.0, 42.0, -48.0, -30.0, 12.0, 149),
    ("Colorado", "CO", 5.8, 21.0, 77.0, 34.0, -61.0, -42.0, 60.0, 89),
    ("Massachusetts", "MA", 6.9, 336.0, 85.0, 42.0, -35.0, -22.0, 49.0, 127),
    ("Michigan", "MI", 10.0, 68.0, 59.0, 39.0, -51.0, -35.0, 51.0, 137),
    ("Tennessee", "TN", 6.8, 64.0, 56.0, 49.0, -32.0, -17.0, 4.5, 118),
    ("District of Columbia", "DC", 0.7, 4500.0, 92.0, 49.0, -15.0, -5.0, 14.0, 115),
    ("Nevada", "NV", 3.1, 11.0, 63.0, 44.0, -50.0, -29.0, 21.0, 29),
    ("Oregon", "OR", 4.2, 17.0, 67.0, 42.0, -54.0, -33.0, 5.0, 154),
    ("Maryland", "MD", 6.0, 238.0, 87.0, 46.0, -40.0, -24.0, 20.0, 116),
    ("Wisconsin", "WI", 5.8, 42.0, 64.0, 37.0, -55.0, -40.0, 46.0, 125),
    ("Georgia", "GA", 10.6, 69.0, 62.0, 52.0, -17.0, -5.0, 2.0, 113),
    ("Minnesota", "MN", 5.6, 27.0, 74.0, 35.0, -60.0, -45.0, 54.0, 116),
    ("Utah", "UT", 3.2, 15.0, 75.0, 40.0, -69.0, -40.0, 56.0, 92),
    ("Alaska", "AK", 0.73, 0.5, 78.0, 28.0, -80.0, -62.0, 74.0, 113),
    ("Hawaii", "HI", 1.4, 87.0, 83.0, 70.0, 12.0, 23.0, 0.0, 95),
    ("Minnesota2", "MN2", 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0),  # placeholder, removed below
]

# Drop the placeholder row kept only to make diffs of the table easy to read.
_STATE_ROWS = [row for row in _STATE_ROWS if row[0] != "Minnesota2"]


def states() -> List[StateFacts]:
    """All US states of the world model."""
    return [StateFacts(*row) for row in _STATE_ROWS]


def state_index() -> Dict[str, StateFacts]:
    """Mapping from state name to its facts."""
    return {facts.name: facts for facts in states()}


def state_derived_properties() -> Dict[str, Dict[str, object]]:
    """Derived per-state properties (population estimate / rank)."""
    facts = state_index()
    population_rank = _rank({name: s.population_millions for name, s in facts.items()})
    derived: Dict[str, Dict[str, object]] = {}
    for name, state in facts.items():
        derived[name] = {
            "Population estimation": round(state.population_millions * 1_000_000),
            "Population Rank": population_rank[name],
            "Population Urban": round(state.population_millions * 1_000_000 * 0.8),
        }
    return derived


# --------------------------------------------------------------------------- #
# Airlines (Flights dataset)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class AirlineFacts:
    """Ground facts about one US airline."""

    name: str
    iata_code: str
    fleet_size: int
    equity_billion: float
    net_income_billion: float
    revenue_billion: float
    num_employees_thousand: float
    founded_year: int


_AIRLINE_ROWS: List[Tuple] = [
    ("American Airlines", "AA", 914, -0.1, 1.7, 45.8, 133.7, 1930),
    ("Delta Air Lines", "DL", 880, 15.4, 4.8, 47.0, 91.0, 1925),
    ("United Airlines", "UA", 857, 11.5, 3.0, 43.3, 96.0, 1926),
    ("Southwest Airlines", "WN", 747, 9.8, 2.3, 22.4, 60.8, 1967),
    ("Alaska Airlines", "AS", 332, 4.3, 0.77, 8.8, 23.0, 1932),
    ("JetBlue Airways", "B6", 270, 4.8, 0.57, 8.1, 22.0, 1998),
    ("Spirit Airlines", "NK", 157, 2.2, 0.34, 3.8, 9.0, 1983),
    ("Frontier Airlines", "F9", 110, 0.6, 0.25, 2.5, 5.6, 1994),
    ("Hawaiian Airlines", "HA", 61, 1.0, 0.22, 2.8, 7.4, 1929),
    ("Allegiant Air", "G4", 92, 1.8, 0.23, 1.8, 4.4, 1997),
    ("SkyWest Airlines", "OO", 483, 2.1, 0.34, 3.0, 14.0, 1972),
    ("Envoy Air", "MQ", 185, 0.5, 0.08, 1.9, 18.0, 1998),
    ("Virgin America", "VX", 67, 1.2, 0.20, 1.5, 9.0, 2004),
    ("US Airways", "US", 340, 2.0, 0.7, 13.0, 32.0, 1937),
]


def airlines() -> List[AirlineFacts]:
    """All airlines of the world model."""
    return [AirlineFacts(*row) for row in _AIRLINE_ROWS]


def airline_index() -> Dict[str, AirlineFacts]:
    """Mapping from airline name to its facts."""
    return {facts.name: facts for facts in airlines()}


# --------------------------------------------------------------------------- #
# Celebrities (Forbes dataset)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class CelebrityFacts:
    """Ground facts about one celebrity of the Forbes-like dataset.

    Career fields that do not apply to a category are ``None``: athletes have
    ``cups`` and ``draft_pick`` but no ``awards``; actors and directors have
    ``awards`` but no ``cups``.  This is the per-category property sparsity
    the paper highlights for Forbes (73 % missing values).
    """

    name: str
    aliases: Tuple[str, ...]
    category: str
    gender: str
    age: int
    net_worth_million: float
    citizenship: str
    years_active: int
    awards: Optional[int]
    honors: Optional[int]
    cups: Optional[int]
    national_cups: Optional[int]
    draft_pick: Optional[int]


def _actor(name, gender, age, net_worth, citizenship, years_active, awards, honors,
           aliases=()):
    return (name, tuple(aliases), "Actors", gender, age, net_worth, citizenship,
            years_active, awards, honors, None, None, None)


def _director(name, gender, age, net_worth, citizenship, years_active, awards, honors,
              aliases=()):
    return (name, tuple(aliases), "Directors/Producers", gender, age, net_worth, citizenship,
            years_active, awards, honors, None, None, None)


def _athlete(name, gender, age, net_worth, citizenship, years_active, cups, national_cups,
             draft_pick, aliases=()):
    return (name, tuple(aliases), "Athletes", gender, age, net_worth, citizenship,
            years_active, None, None, cups, national_cups, draft_pick)


def _musician(name, gender, age, net_worth, citizenship, years_active, awards, honors,
              aliases=()):
    return (name, tuple(aliases), "Musicians", gender, age, net_worth, citizenship,
            years_active, awards, honors, None, None, None)


_CELEBRITY_ROWS: List[Tuple] = [
    # Actors: pay driven mostly by net worth (experience) with a gender pay gap.
    _actor("Dwayne Johnson", "Male", 48, 320.0, "United States", 24, 9, 4, aliases=("The Rock",)),
    _actor("Ryan Reynolds", "Male", 44, 150.0, "Canada", 28, 7, 2),
    _actor("Robert Downey Jr.", "Male", 55, 300.0, "United States", 40, 12, 5),
    _actor("Tom Cruise", "Male", 58, 570.0, "United States", 40, 10, 6),
    _actor("Leonardo DiCaprio", "Male", 46, 260.0, "United States", 31, 14, 7),
    _actor("Brad Pitt", "Male", 57, 300.0, "United States", 33, 13, 6),
    _actor("Will Smith", "Male", 52, 350.0, "United States", 35, 8, 4),
    _actor("Jackie Chan", "Male", 66, 400.0, "China", 58, 11, 9),
    _actor("Adam Sandler", "Male", 54, 420.0, "United States", 33, 6, 2),
    _actor("Mark Wahlberg", "Male", 49, 300.0, "United States", 32, 7, 3),
    _actor("Ben Affleck", "Male", 48, 150.0, "United States", 39, 8, 4),
    _actor("Chris Hemsworth", "Male", 37, 130.0, "Australia", 18, 5, 1),
    _actor("Vin Diesel", "Male", 53, 225.0, "United States", 30, 4, 1),
    _actor("Akshay Kumar", "Male", 53, 325.0, "India", 33, 9, 5),
    _actor("George Clooney", "Male", 59, 500.0, "United States", 42, 12, 8),
    _actor("Scarlett Johansson", "Female", 36, 165.0, "United States", 26, 10, 3),
    _actor("Sofia Vergara", "Female", 48, 180.0, "Colombia", 25, 6, 2),
    _actor("Angelina Jolie", "Female", 45, 120.0, "United States", 29, 11, 5),
    _actor("Jennifer Aniston", "Female", 51, 300.0, "United States", 32, 8, 3),
    _actor("Jennifer Lawrence", "Female", 30, 160.0, "United States", 14, 9, 4),
    _actor("Emma Stone", "Female", 32, 40.0, "United States", 16, 7, 2),
    _actor("Julia Roberts", "Female", 53, 250.0, "United States", 33, 10, 6),
    _actor("Meryl Streep", "Female", 71, 160.0, "United States", 49, 21, 12),
    _actor("Charlize Theron", "Female", 45, 170.0, "South Africa", 25, 9, 4),
    _actor("Gal Gadot", "Female", 35, 30.0, "Israel", 13, 4, 1),
    _actor("Margot Robbie", "Female", 30, 40.0, "Australia", 13, 6, 2),
    _actor("Nicole Kidman", "Female", 53, 250.0, "Australia", 37, 12, 7),
    _actor("Reese Witherspoon", "Female", 44, 300.0, "United States", 29, 8, 3),
    # Directors / producers: pay driven by net worth and awards (experience).
    _director("Steven Spielberg", "Male", 74, 3700.0, "United States", 51, 22, 15),
    _director("George Lucas", "Male", 76, 10000.0, "United States", 50, 15, 12),
    _director("James Cameron", "Male", 66, 700.0, "Canada", 42, 16, 10),
    _director("Peter Jackson", "Male", 59, 1500.0, "New Zealand", 34, 14, 9),
    _director("Christopher Nolan", "Male", 50, 250.0, "United Kingdom", 22, 11, 6),
    _director("Martin Scorsese", "Male", 78, 200.0, "United States", 53, 20, 14),
    _director("Quentin Tarantino", "Male", 57, 120.0, "United States", 28, 12, 7),
    _director("Ridley Scott", "Male", 83, 400.0, "United Kingdom", 44, 13, 9),
    _director("Tyler Perry", "Male", 51, 1000.0, "United States", 22, 6, 3),
    _director("Michael Bay", "Male", 55, 430.0, "United States", 25, 5, 2),
    _director("Kathryn Bigelow", "Female", 69, 120.0, "United States", 39, 10, 6),
    _director("Greta Gerwig", "Female", 37, 10.0, "United States", 14, 5, 2),
    _director("Ava DuVernay", "Female", 48, 50.0, "United States", 14, 6, 3),
    _director("Shonda Rhimes", "Female", 50, 140.0, "United States", 25, 8, 4),
    _director("Jerry Bruckheimer", "Male", 77, 1000.0, "United States", 45, 9, 5),
    # Athletes: pay driven by performance (cups, draft pick) and experience.
    _athlete("Cristiano Ronaldo", "Male", 35, 500.0, "Portugal", 19, 32, 7, None,
             aliases=("Ronaldo",)),
    _athlete("Lionel Messi", "Male", 33, 400.0, "Argentina", 17, 35, 10, None),
    _athlete("Neymar", "Male", 28, 200.0, "Brazil", 12, 20, 5, None, aliases=("Neymar Jr",)),
    _athlete("LeBron James", "Male", 36, 500.0, "United States", 17, 4, 4, 1),
    _athlete("Stephen Curry", "Male", 32, 160.0, "United States", 11, 3, 3, 7),
    _athlete("Kevin Durant", "Male", 32, 200.0, "United States", 13, 2, 2, 2),
    _athlete("Roger Federer", "Male", 39, 450.0, "Switzerland", 22, 20, 8, None),
    _athlete("Rafael Nadal", "Male", 34, 200.0, "Spain", 19, 20, 12, None),
    _athlete("Novak Djokovic", "Male", 33, 220.0, "Serbia", 17, 17, 9, None),
    _athlete("Tiger Woods", "Male", 45, 800.0, "United States", 24, 15, 11, None),
    _athlete("Tom Brady", "Male", 43, 250.0, "United States", 20, 7, 5, 199),
    _athlete("Aaron Rodgers", "Male", 37, 120.0, "United States", 15, 1, 1, 24),
    _athlete("Russell Wilson", "Male", 32, 135.0, "United States", 8, 1, 1, 75),
    _athlete("Kirk Cousins", "Male", 32, 70.0, "United States", 8, 0, 0, 102),
    _athlete("Canelo Alvarez", "Male", 30, 140.0, "Mexico", 15, 4, 2, None),
    _athlete("Conor McGregor", "Male", 32, 200.0, "Ireland", 12, 2, 1, None),
    _athlete("Lewis Hamilton", "Male", 36, 285.0, "United Kingdom", 14, 7, 4, None),
    _athlete("Serena Williams", "Female", 39, 225.0, "United States", 25, 23, 14, None),
    _athlete("Naomi Osaka", "Female", 23, 45.0, "Japan", 7, 4, 2, None),
    _athlete("Alex Morgan", "Female", 31, 22.0, "United States", 11, 2, 2, 1),
    # Musicians: kept in the data so Forbes has a category without planted
    # confounders usable as a control group.
    _musician("Taylor Swift", "Female", 31, 400.0, "United States", 15, 11, 6),
    _musician("Beyonce", "Female", 39, 440.0, "United States", 23, 28, 10, aliases=("Beyoncé",)),
    _musician("Ed Sheeran", "Male", 29, 200.0, "United Kingdom", 16, 7, 3),
    _musician("Kanye West", "Male", 43, 1300.0, "United States", 24, 21, 8),
    _musician("Jay-Z", "Male", 51, 1000.0, "United States", 31, 23, 9, aliases=("Jay Z",)),
    _musician("Rihanna", "Female", 32, 550.0, "Barbados", 17, 9, 4),
    _musician("Elton John", "Male", 73, 500.0, "United Kingdom", 51, 12, 7),
    _musician("Paul McCartney", "Male", 78, 1200.0, "United Kingdom", 63, 18, 11),
    _musician("Bruce Springsteen", "Male", 71, 500.0, "United States", 48, 20, 9),
    _musician("Ariana Grande", "Female", 27, 180.0, "United States", 12, 6, 2),
]


def celebrities() -> List[CelebrityFacts]:
    """All celebrities of the world model."""
    return [CelebrityFacts(*row) for row in _CELEBRITY_ROWS]


def celebrity_index() -> Dict[str, CelebrityFacts]:
    """Mapping from celebrity name to their facts."""
    return {facts.name: facts for facts in celebrities()}
