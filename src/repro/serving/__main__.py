"""``python -m repro.serving`` — serve registry datasets over HTTP.

Loads evaluation datasets (synthetic table + knowledge graph) from
:mod:`repro.datasets.registry` and serves the JSON API until interrupted.
The ``--workers`` flag picks the topology behind the *same* HTTP handler:

* ``--workers 1`` (default) — one in-process
  :class:`~repro.serving.service.ExplanationService` behind a
  :class:`~repro.serving.client.LocalClient`;
* ``--workers N`` — a :class:`~repro.serving.cluster.ServiceCluster` of N
  worker processes behind a :class:`~repro.serving.cluster.ClusterClient`:
  requests shard by the stable hash of their canonical query key, so each
  worker's caches stay hot for its key range and throughput scales past
  one GIL.
* ``--workers N --shard rows`` — the same cluster front end, but workers
  shard the *data* instead of the requests: each holds one contiguous row
  range and answers partial-count / partial-IRLS jobs, so the cluster can
  serve tables no single worker could hold in memory.

::

    PYTHONPATH=src python -m repro.serving --dataset SO --port 8080 --workers 4

    PYTHONPATH=src python -m repro.serving --dataset SO --rows 200000 \
        --workers 4 --shard rows

    curl -s localhost:8080/healthz
    curl -s -X POST localhost:8080/explain -d '{
        "dataset": "SO",
        "sql": "SELECT Country, avg(Salary) FROM SO GROUP BY Country",
        "k": 3
    }'
"""

from __future__ import annotations

import argparse
import logging
import sys

from repro.datasets.registry import DATASET_NAMES, load_dataset
from repro.engine.config import MESAConfig
from repro.obs.logs import JsonLogFormatter
from repro.serving.client import LocalClient
from repro.serving.cluster import ClusterClient, ServiceCluster
from repro.serving.http import serve_forever
from repro.serving.service import ExplanationService

_LOG_LEVELS = ("debug", "info", "warning", "error")


def configure_logging(level: str = "info", log_json: bool = False) -> None:
    """Attach a stderr handler to the ``repro`` logger hierarchy.

    Called only from this entry point: the library itself logs under
    ``repro.*`` but never configures handlers or touches the root logger,
    so embedding applications keep full control of their logging setup.
    Idempotent — rerunning replaces the handler instead of stacking one.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(getattr(logging, level.upper()))
    logger.propagate = False
    handler = logging.StreamHandler(sys.stderr)
    if log_json:
        handler.setFormatter(JsonLogFormatter())
    else:
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(levelname)s %(name)s %(message)s"))
    for old in list(logger.handlers):
        logger.removeHandler(old)
    logger.addHandler(handler)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--dataset", choices=DATASET_NAMES, action="append",
                        dest="datasets", default=None,
                        help="Dataset(s) to register (repeatable; default SO)")
    parser.add_argument("--rows", type=int, default=None,
                        help="Row count for the row-parameterised datasets")
    parser.add_argument("--seed", type=int, default=7,
                        help="Generator seed for the synthetic data")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080,
                        help="Listen port (0 picks a free one)")
    parser.add_argument("--workers", type=int, default=1,
                        help="Serving processes: 1 = in-process service, "
                             "N > 1 = sharded worker cluster")
    parser.add_argument("--shard", choices=("keys", "rows"), default="keys",
                        help="Cluster sharding axis: 'keys' replicates the "
                             "data and routes requests by query key; 'rows' "
                             "splits each table into row ranges and "
                             "scatter-gathers partial counts (needs "
                             "--workers > 1)")
    parser.add_argument("--start-method", choices=("fork", "spawn"),
                        default=None,
                        help="Worker start method (default: fork where "
                             "available, else spawn)")
    parser.add_argument("--frame-store", choices=("auto", "on", "off"),
                        default="auto",
                        help="Shared-memory frame store: hold the encoded "
                             "dataset in POSIX shared segments that workers "
                             "map read-only instead of copying ('auto' = on "
                             "for multi-worker clusters when /dev/shm works; "
                             "silently falls back to the copy path otherwise)")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="SQLite path for the durable metastore: "
                             "envelopes survive restarts (warm-start), "
                             "POST /jobs and POST /append_rows come alive, "
                             "and killed jobs resume from their completed "
                             "prefix on the next start")
    parser.add_argument("--hedge", action="store_true",
                        help="Hedge straggling cluster requests: after a "
                             "p99-derived delay re-issue the request to a "
                             "second replica and answer with whichever "
                             "returns first (keys-sharded clusters only)")
    parser.add_argument("--cache-size", type=int, default=4096,
                        help="Bound on the explanation cache (per worker)")
    parser.add_argument("--ttl", type=float, default=None,
                        help="Optional TTL (seconds) for cached explanations")
    parser.add_argument("--coalesce-window", type=float, default=0.005,
                        help="Micro-batching window in seconds "
                             "(single-process mode)")
    parser.add_argument("--n-jobs", type=int, default=1,
                        help="Engine workers per coalesced batch (-1 = all CPUs)")
    parser.add_argument("--log-level", choices=_LOG_LEVELS, default="info",
                        help="Verbosity of the repro.* loggers")
    parser.add_argument("--log-json", action="store_true",
                        help="Emit one JSON object per log line (machine-"
                             "readable; the slow-query log is always "
                             "structured)")
    parser.add_argument("--slow-query-seconds", type=float, default=1.0,
                        help="Log requests slower than this many seconds to "
                             "the structured slow-query log (<= 0 disables)")
    return parser


def main(argv=None) -> None:
    args = build_parser().parse_args(argv)
    configure_logging(args.log_level, log_json=args.log_json)
    log = logging.getLogger("repro.serving")
    datasets = args.datasets or ["SO"]
    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    bundles = [load_dataset(name, seed=args.seed, n_rows=args.rows)
               for name in dict.fromkeys(datasets)]
    configs = {bundle.name: MESAConfig(
        excluded_columns=tuple(bundle.id_columns), n_jobs=args.n_jobs)
        for bundle in bundles}

    if args.workers == 1:
        service = ExplanationService(
            cache_size=args.cache_size, ttl_seconds=args.ttl,
            coalesce_window_seconds=args.coalesce_window,
            store=args.store)
        for bundle in bundles:
            log.info("registering %s (%d rows) and warming the cross-query "
                     "caches", bundle.name, bundle.table.n_rows)
            service.register_bundle(bundle, config=configs[bundle.name])
        if args.store is not None:
            service.enable_jobs()
        client = LocalClient(service)
    else:
        frame_store = {"auto": None, "on": True, "off": False}[
            args.frame_store]
        cluster = ServiceCluster(
            n_workers=args.workers, start_method=args.start_method,
            shard=args.shard, frame_store=frame_store,
            store_path=args.store, hedge_requests=args.hedge,
            service_kwargs={"cache_size": args.cache_size,
                            "ttl_seconds": args.ttl})
        for bundle in bundles:
            cluster.register_bundle(bundle, config=configs[bundle.name])
        topology = ("row-shard" if args.shard == "rows" else "replica")
        log.info("starting %d %s worker processes (%s) for %s",
                 args.workers, topology, cluster.start_method,
                 [bundle.name for bundle in bundles])
        client = ClusterClient(cluster)
    slow = args.slow_query_seconds if args.slow_query_seconds > 0 else None
    serve_forever(client, host=args.host, port=args.port,
                  slow_query_seconds=slow,
                  install_signal_handlers=True)


if __name__ == "__main__":
    main()
