"""``python -m repro.serving`` — serve a registry dataset over HTTP.

Loads one of the evaluation datasets (synthetic table + knowledge graph)
from :mod:`repro.datasets.registry`, registers it on a fresh
:class:`~repro.serving.service.ExplanationService` (warming the cross-query
caches up front) and serves the JSON API until interrupted::

    PYTHONPATH=src python -m repro.serving --dataset SO --port 8080

    curl -s localhost:8080/healthz
    curl -s -X POST localhost:8080/explain -d '{
        "dataset": "SO",
        "sql": "SELECT Country, avg(Salary) FROM SO GROUP BY Country",
        "k": 3
    }'
"""

from __future__ import annotations

import argparse

from repro.datasets.registry import DATASET_NAMES, load_dataset
from repro.engine.config import MESAConfig
from repro.serving.http import serve_forever
from repro.serving.service import ExplanationService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--dataset", choices=DATASET_NAMES, action="append",
                        dest="datasets", default=None,
                        help="Dataset(s) to register (repeatable; default SO)")
    parser.add_argument("--rows", type=int, default=None,
                        help="Row count for the row-parameterised datasets")
    parser.add_argument("--seed", type=int, default=7,
                        help="Generator seed for the synthetic data")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080,
                        help="Listen port (0 picks a free one)")
    parser.add_argument("--cache-size", type=int, default=4096,
                        help="Bound on the explanation cache")
    parser.add_argument("--ttl", type=float, default=None,
                        help="Optional TTL (seconds) for cached explanations")
    parser.add_argument("--coalesce-window", type=float, default=0.005,
                        help="Micro-batching window in seconds")
    parser.add_argument("--n-jobs", type=int, default=1,
                        help="Engine workers per coalesced batch (-1 = all CPUs)")
    return parser


def main(argv=None) -> None:
    args = build_parser().parse_args(argv)
    datasets = args.datasets or ["SO"]
    service = ExplanationService(
        cache_size=args.cache_size, ttl_seconds=args.ttl,
        coalesce_window_seconds=args.coalesce_window)
    for name in dict.fromkeys(datasets):
        bundle = load_dataset(name, seed=args.seed, n_rows=args.rows)
        config = MESAConfig(excluded_columns=tuple(bundle.id_columns),
                            n_jobs=args.n_jobs)
        print(f"Registering {name} ({bundle.table.n_rows} rows) and warming "
              f"the cross-query caches ...")
        service.register_bundle(bundle, config=config)
    serve_forever(service, host=args.host, port=args.port)


if __name__ == "__main__":
    main()
