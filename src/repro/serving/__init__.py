"""The serving layer: explanation-as-a-service over the engine.

This package turns the explanation engine into a long-lived, cache-warm,
concurrency-safe service — the answer to "heavy traffic" workloads where
the same datasets and often the same (or same-context) queries arrive
continuously:

* :class:`ExplanationClient` (:mod:`repro.serving.client`) — the
  **transport-agnostic API** every caller programs against
  (``explain`` / ``explain_batch`` / ``stats`` / ``warm`` / ``close``),
  with three interchangeable implementations: :class:`LocalClient`
  (in-process service), :class:`HTTPClient` (stdlib JSON client for any
  remote deployment) and :class:`ClusterClient` (sharded worker
  processes);
* :class:`ExplanationService` (:mod:`repro.serving.service`) — one warm
  :class:`~repro.engine.context.PipelineContext` per registered dataset, a
  canonical-query-key explanation cache (bounded LRU + optional TTL) that
  serves byte-identical envelopes on repeats, per-dataset request
  coalescing, a background warmer replaying recorded top-K traffic, and
  dataset-versioned keys for coherent invalidation;
* :class:`ServiceCluster` (:mod:`repro.serving.cluster`) — N spawn-safe
  worker processes; requests route by the stable hash of their canonical
  query key, so each worker's explanation/frame/fit caches stay hot for
  its key range; in-flight dedup, merged stats, health checks and
  automatic worker restart live in the thin front tier;
* :class:`MicroBatcher` (:mod:`repro.serving.batcher`) — collects
  concurrent requests within a small window into single
  ``explain_many_envelopes`` calls and deduplicates identical in-flight
  queries down to one execution;
* :class:`TTLCache` (:mod:`repro.serving.cache`) — the bounded, thread-safe
  LRU/TTL store behind the explanation cache;
* the HTTP front end (:mod:`repro.serving.http`) — a stdlib
  ``ThreadingHTTPServer`` JSON API (``POST /explain``,
  ``POST /explain_batch``, ``POST /warm``, ``GET /stats``,
  ``GET /healthz``) that serves **any** client — one process or a whole
  cluster — with strict request validation (:mod:`repro.serving.schema`);
* a CLI — ``python -m repro.serving --dataset SO --workers 4`` loads
  datasets from the registry and serves them from a sharded cluster.

Quick use::

    from repro import load_dataset
    from repro.serving import ClusterClient, ServiceCluster

    cluster = ServiceCluster(n_workers=4)
    cluster.register_bundle(load_dataset("SO"))
    with ClusterClient(cluster) as client:      # starts the workers
        served = client.explain("SO", query)    # ServedExplanation
        served.envelope.to_json()               # canonical result JSON
"""

from repro.serving.batcher import MicroBatcher
from repro.serving.cache import TTLCache
from repro.serving.client import ExplanationClient, HTTPClient, LocalClient
from repro.serving.cluster import (
    ClusterClient,
    DatasetSpec,
    ServiceCluster,
    WorkerDiedError,
    WorkerFaultError,
)
from repro.serving.http import ExplanationHTTPServer, make_server, serve_forever
from repro.serving.schema import (
    API_SCHEMA_VERSION,
    BatchExplainRequest,
    ExplainRequest,
    ExplainResponse,
    context_clauses,
    query_payload,
)
from repro.serving.service import ExplanationService, ServedExplanation

__all__ = [
    "API_SCHEMA_VERSION",
    "BatchExplainRequest",
    "ClusterClient",
    "DatasetSpec",
    "ExplainRequest",
    "ExplainResponse",
    "ExplanationClient",
    "ExplanationHTTPServer",
    "ExplanationService",
    "HTTPClient",
    "LocalClient",
    "MicroBatcher",
    "ServedExplanation",
    "ServiceCluster",
    "TTLCache",
    "WorkerDiedError",
    "WorkerFaultError",
    "context_clauses",
    "make_server",
    "query_payload",
    "serve_forever",
]
