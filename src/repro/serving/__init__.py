"""The serving layer: explanation-as-a-service over the engine.

This package turns the explanation engine into a long-lived, cache-warm,
concurrency-safe service — the answer to "heavy traffic" workloads where
the same datasets and often the same (or same-context) queries arrive
continuously:

* :class:`ExplanationService` (:mod:`repro.serving.service`) — one warm
  :class:`~repro.engine.context.PipelineContext` per registered dataset, a
  canonical-query-key explanation cache (bounded LRU + optional TTL) that
  serves byte-identical envelopes on repeats, and per-dataset request
  coalescing;
* :class:`MicroBatcher` (:mod:`repro.serving.batcher`) — collects
  concurrent requests within a small window into single
  ``explain_many_envelopes`` calls and deduplicates identical in-flight
  queries down to one execution;
* :class:`TTLCache` (:mod:`repro.serving.cache`) — the bounded, thread-safe
  LRU/TTL store behind the explanation cache;
* the HTTP front end (:mod:`repro.serving.http`) — a stdlib
  ``ThreadingHTTPServer`` JSON API (``POST /explain``,
  ``POST /explain_batch``, ``GET /stats``, ``GET /healthz``) with strict
  request validation (:mod:`repro.serving.schema`) mapped to 400s;
* a CLI — ``python -m repro.serving --dataset SO`` loads a dataset from
  the registry, warms the context and serves.

Quick use::

    from repro import load_dataset
    from repro.serving import ExplanationService

    service = ExplanationService(cache_size=4096)
    service.register_bundle(load_dataset("SO"))
    served = service.explain("SO", query)      # ServedExplanation
    served.envelope.to_json()                  # canonical result JSON
"""

from repro.serving.batcher import MicroBatcher
from repro.serving.cache import TTLCache
from repro.serving.http import ExplanationHTTPServer, make_server, serve_forever
from repro.serving.schema import (
    API_SCHEMA_VERSION,
    BatchExplainRequest,
    ExplainRequest,
    ExplainResponse,
)
from repro.serving.service import ExplanationService, ServedExplanation

__all__ = [
    "API_SCHEMA_VERSION",
    "BatchExplainRequest",
    "ExplainRequest",
    "ExplainResponse",
    "ExplanationHTTPServer",
    "ExplanationService",
    "MicroBatcher",
    "ServedExplanation",
    "TTLCache",
    "make_server",
    "serve_forever",
]
