"""Transport-agnostic clients for the explanation serving tier.

Callers should not care *where* explanations are computed — in their own
process, behind an HTTP endpoint, or sharded over a cluster of worker
processes.  :class:`ExplanationClient` is the one surface they program
against:

* ``explain(dataset, query, k)`` / ``explain_batch(dataset, queries, k)``
  serve :class:`~repro.serving.service.ServedExplanation` objects;
* ``stats()`` returns the serving tier's observability snapshot;
* ``warm(dataset, queries=...)`` builds cross-query artefacts and replays
  hot queries into the caches;
* ``clear_cache()`` invalidates every cache layer (dataset versions bump,
  see :meth:`~repro.engine.context.PipelineContext.bump_dataset_version`);
* ``close()`` releases whatever the transport holds (threads, sockets,
  worker processes).

Three interchangeable implementations ship with the package:

* :class:`LocalClient` — wraps an in-process
  :class:`~repro.serving.service.ExplanationService`; zero transport cost,
  one GIL.
* :class:`HTTPClient` — a dependency-free stdlib JSON client for the
  :mod:`repro.serving.http` API; talk to any remote deployment.  Keeps
  one persistent connection per calling thread (HTTP/1.1 keep-alive) and
  retries a request once on a fresh socket when a reused one went stale.
* :class:`~repro.serving.cluster.ClusterClient` — routes requests by the
  stable hash of their canonical query key over N local worker processes
  (:class:`~repro.serving.cluster.ServiceCluster`), scaling beyond one GIL
  while keeping each worker's caches hot for its key range.

Because the HTTP front end (:mod:`repro.serving.http`) itself serves *any*
client, the same handler code exposes a single process or a whole cluster —
pick the topology with ``python -m repro.serving --workers N``.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from abc import ABC, abstractmethod
from typing import Any, Dict, List, Optional, Sequence
from urllib.parse import urlsplit

from repro.engine.envelope import ExplanationEnvelope
from repro.exceptions import (
    ConfigurationError,
    DatasetNotRegisteredError,
    ExplanationError,
    MissingDataError,
    QueryError,
    RequestValidationError,
)
from repro.query.aggregate_query import AggregateQuery
from repro.serving.schema import query_payload
from repro.serving.service import ExplanationService, ServedExplanation
from repro.storage.metastore import JOB_TERMINAL_STATES


class ExplanationClient(ABC):
    """The transport-agnostic serving API (see the module docstring).

    Implementations must be thread-safe: the HTTP front end calls one
    client from many handler threads concurrently.
    """

    @abstractmethod
    def explain(self, dataset: str, query: AggregateQuery,
                k: Optional[int] = None) -> ServedExplanation:
        """Serve one explanation."""

    @abstractmethod
    def explain_batch(self, dataset: str, queries: Sequence[AggregateQuery],
                      k: Optional[int] = None) -> List[ServedExplanation]:
        """Serve a batch of explanations, in request order."""

    @abstractmethod
    def stats(self) -> Dict[str, Any]:
        """The serving tier's observability snapshot (JSON-safe)."""

    @abstractmethod
    def warm(self, dataset: str, queries: Optional[Sequence] = None,
             top: int = 8) -> int:
        """Build cross-query artefacts and replay hot queries; returns count."""

    @abstractmethod
    def close(self) -> None:
        """Release the transport's resources; the client stops serving."""

    # ---- standard extensions every implementation provides ------------- #
    @abstractmethod
    def clear_cache(self) -> None:
        """Invalidate every cache layer (bumps dataset versions)."""

    @abstractmethod
    def health(self) -> Dict[str, Any]:
        """Liveness verdict: ``{"status": "ok" | "degraded" | "down", ...}``."""

    def datasets(self) -> List[str]:
        """Names of the datasets this client can serve, sorted."""
        return sorted(self.health().get("datasets", []))

    # ---- durability extensions (need a store-backed deployment) -------- #
    def _no_jobs(self) -> "ConfigurationError":
        return ConfigurationError(
            "this deployment has no durable job store: construct the "
            "service/cluster with store=<path> (or pass --store to "
            "python -m repro.serving)")

    def submit_job(self, dataset: str, kind: str = "explain_batch",
                   queries: Optional[Sequence] = None,
                   k: Optional[int] = None, top: int = 8) -> str:
        """Submit a resumable background job; returns its id."""
        raise self._no_jobs()

    def job_status(self, job_id: str,
                   include_result: bool = False) -> Dict[str, Any]:
        """One job's public status (progress, state, optional results)."""
        raise self._no_jobs()

    def wait_job(self, job_id: str, timeout: Optional[float] = None,
                 poll_seconds: float = 0.02) -> Dict[str, Any]:
        """Block until the job reaches a terminal state (or time out)."""
        raise self._no_jobs()

    def cancel_job(self, job_id: str) -> Dict[str, Any]:
        """Request cancellation; returns the post-cancel status."""
        raise self._no_jobs()

    def list_jobs(self, dataset: Optional[str] = None,
                  limit: int = 100) -> List[Dict[str, Any]]:
        """Recent jobs, newest first."""
        raise self._no_jobs()

    def append_rows(self, dataset: str, rows: Sequence[Dict[str, Any]],
                    rewarm: bool = True, top: int = 8) -> Dict[str, Any]:
        """Append rows to a served dataset (live update + re-warm)."""
        raise ConfigurationError(
            "this client's deployment does not support live dataset "
            "updates")

    def __enter__(self) -> "ExplanationClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class LocalClient(ExplanationClient):
    """An in-process client over one :class:`ExplanationService`.

    ``close_service=False`` leaves the wrapped service running on close —
    for a service shared with other consumers (e.g. tests driving both the
    service object and a client view of it).
    """

    def __init__(self, service: ExplanationService, close_service: bool = True):
        self.service = service
        self._close_service = close_service

    def explain(self, dataset: str, query: AggregateQuery,
                k: Optional[int] = None) -> ServedExplanation:
        return self.service.explain(dataset, query, k=k)

    def explain_batch(self, dataset: str, queries: Sequence[AggregateQuery],
                      k: Optional[int] = None) -> List[ServedExplanation]:
        return self.service.explain_batch(dataset, queries, k=k)

    def stats(self) -> Dict[str, Any]:
        return self.service.stats()

    def warm(self, dataset: str, queries: Optional[Sequence] = None,
             top: int = 8) -> int:
        return self.service.warm(dataset, queries=queries, top=top)

    def clear_cache(self) -> None:
        self.service.clear_cache()

    def health(self) -> Dict[str, Any]:
        return self.service.health()

    def datasets(self) -> List[str]:
        return self.service.datasets()

    def _jobs(self):
        if self.service.jobs is None:
            self.service.enable_jobs()
        return self.service.jobs

    def submit_job(self, dataset: str, kind: str = "explain_batch",
                   queries: Optional[Sequence] = None,
                   k: Optional[int] = None, top: int = 8) -> str:
        return self._jobs().submit(dataset, kind=kind, queries=queries,
                                   k=k, top=top)

    def job_status(self, job_id: str,
                   include_result: bool = False) -> Dict[str, Any]:
        return self._jobs().status(job_id, include_result=include_result)

    def wait_job(self, job_id: str, timeout: Optional[float] = None,
                 poll_seconds: float = 0.02) -> Dict[str, Any]:
        return self._jobs().wait(job_id, timeout=timeout,
                                 poll_seconds=poll_seconds)

    def cancel_job(self, job_id: str) -> Dict[str, Any]:
        return self._jobs().cancel(job_id)

    def list_jobs(self, dataset: Optional[str] = None,
                  limit: int = 100) -> List[Dict[str, Any]]:
        return self._jobs().list_jobs(dataset, limit)

    def append_rows(self, dataset: str, rows: Sequence[Dict[str, Any]],
                    rewarm: bool = True, top: int = 8) -> Dict[str, Any]:
        return self.service.append_rows(dataset, rows, rewarm=rewarm, top=top)

    def close(self) -> None:
        if self._close_service:
            self.service.close()


def _raise_for_http_error(status: int, body: Dict[str, Any]) -> None:
    """Map an error response back onto the exception the server mapped from."""
    errors = body.get("errors") or [f"HTTP {status}"]
    message = "; ".join(str(error) for error in errors)
    if status == 400:
        raise QueryError(message)
    if status == 404:
        raise DatasetNotRegisteredError(message)
    if status == 422:
        raise MissingDataError(message)
    raise ExplanationError(f"server error (HTTP {status}): {message}")


#: Failures that mean the kept-alive socket went stale between requests —
#: typically the server (or an intermediary) closed an idle connection.
#: ``RemoteDisconnected`` subclasses ``BadStatusLine``, so it is covered.
_STALE_SOCKET_ERRORS = (
    http.client.NotConnected,
    http.client.CannotSendRequest,
    http.client.BadStatusLine,
    ConnectionResetError,
    BrokenPipeError,
)


class HTTPClient(ExplanationClient):
    """A stdlib JSON client for the :mod:`repro.serving.http` API.

    Connections are persistent (HTTP/1.1 keep-alive): each calling thread
    holds one :class:`http.client.HTTPConnection` and reuses it across
    requests, avoiding a TCP handshake per call.  When a reused socket
    turns out to be stale — the server closed it while idle — the request
    is retried exactly once on a fresh connection.  Every server endpoint
    is idempotent (explanations are deterministic and cached), so the
    single retry is safe.  A connection that fails on its *first* request
    is not retried: that is a real connectivity error, not staleness.

    Parameters
    ----------
    base_url:
        Where the server listens, e.g. ``"http://127.0.0.1:8080"``.
    timeout:
        Per-request socket timeout in seconds.  Cold explanations run a
        full engine pipeline, so the default is generous.
    """

    def __init__(self, base_url: str, timeout: float = 300.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        parts = urlsplit(self.base_url)
        if parts.scheme not in ("http", "https") or not parts.hostname:
            raise RequestValidationError(
                f"base_url must be an http(s) URL, got {base_url!r}")
        self._scheme = parts.scheme
        self._host = parts.hostname
        self._port = parts.port
        self._path_prefix = parts.path.rstrip("/")
        self._local = threading.local()
        self._connections: set = set()
        self._connections_lock = threading.Lock()
        #: How many requests were retried on a fresh connection after the
        #: kept-alive socket went stale.  Observability for tests and ops.
        self.stale_retries = 0

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def _connection(self) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            factory = (http.client.HTTPSConnection if self._scheme == "https"
                       else http.client.HTTPConnection)
            connection = factory(self._host, self._port, timeout=self.timeout)
            connection.requests_served = 0
            self._local.connection = connection
            with self._connections_lock:
                self._connections.add(connection)
        return connection

    def _drop_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            return
        self._local.connection = None
        with self._connections_lock:
            self._connections.discard(connection)
        try:
            connection.close()
        except OSError:
            pass

    def _round_trip(self, method: str, path: str,
                    data: Optional[bytes]) -> "tuple[int, bytes]":
        connection = self._connection()
        headers = {"Content-Type": "application/json"} if data else {}
        connection.request(method, self._path_prefix + path,
                           body=data, headers=headers)
        response = connection.getresponse()
        # Drain the body fully so the socket is clean for the next request.
        payload = response.read()
        connection.requests_served += 1
        return response.status, payload

    def _send(self, method: str, path: str,
              data: Optional[bytes]) -> "tuple[int, bytes]":
        try:
            return self._round_trip(method, path, data)
        except _STALE_SOCKET_ERRORS:
            reused = getattr(self._local, "connection", None) is not None and \
                self._local.connection.requests_served > 0
            self._drop_connection()
            if not reused:
                raise
            self.stale_retries += 1
            try:
                return self._round_trip(method, path, data)
            except Exception:
                self._drop_connection()
                raise
        except OSError:
            # Timeouts and hard connect failures: the socket's state is
            # unknown, so never reuse it.
            self._drop_connection()
            raise

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        data = None if body is None else json.dumps(body).encode("utf-8")
        status, payload = self._send(method, path, data)
        try:
            parsed = json.loads(payload) if payload else {}
        except ValueError:
            parsed = {}
        if status >= 400:
            _raise_for_http_error(
                status, parsed if isinstance(parsed, dict) else {})
        return parsed

    @staticmethod
    def _served(body: Dict[str, Any]) -> ServedExplanation:
        return ServedExplanation(
            dataset=body["dataset"],
            envelope=ExplanationEnvelope.from_dict(body["envelope"]),
            cache_hit=bool(body.get("cache_hit", False)),
            coalesced=bool(body.get("coalesced", False)),
            trace_id=body.get("trace_id"))

    # ------------------------------------------------------------------ #
    # the client protocol
    # ------------------------------------------------------------------ #
    def explain(self, dataset: str, query: AggregateQuery,
                k: Optional[int] = None) -> ServedExplanation:
        body = self._request(
            "POST", "/explain", query_payload(query, k=k, dataset=dataset))
        return self._served(body)

    def explain_batch(self, dataset: str, queries: Sequence[AggregateQuery],
                      k: Optional[int] = None) -> List[ServedExplanation]:
        payload: Dict[str, Any] = {
            "dataset": dataset,
            "queries": [query_payload(query) for query in queries],
        }
        if k is not None:
            payload["k"] = k
        body = self._request("POST", "/explain_batch", payload)
        return [self._served(dict(result, dataset=body["dataset"]))
                for result in body["results"]]

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def warm(self, dataset: str, queries: Optional[Sequence] = None,
             top: int = 8) -> int:
        payload: Dict[str, Any] = {"dataset": dataset, "top": top}
        if queries is not None:
            if any(not isinstance(query, AggregateQuery) for query in queries):
                raise RequestValidationError(
                    "warm queries must be AggregateQuery objects")
            payload["queries"] = [query_payload(query) for query in queries]
        return int(self._request("POST", "/warm", payload).get("warmed", 0))

    def clear_cache(self) -> None:
        self._request("POST", "/clear_cache", {})

    def submit_job(self, dataset: str, kind: str = "explain_batch",
                   queries: Optional[Sequence] = None,
                   k: Optional[int] = None, top: int = 8) -> str:
        payload: Dict[str, Any] = {"dataset": dataset, "kind": kind,
                                   "top": top}
        if k is not None:
            payload["k"] = k
        if queries is not None:
            payload["queries"] = [
                query_payload(query) if isinstance(query, AggregateQuery)
                else dict(query) for query in queries]
        return str(self._request("POST", "/jobs", payload)["job_id"])

    def job_status(self, job_id: str,
                   include_result: bool = False) -> Dict[str, Any]:
        suffix = "?result=1" if include_result else ""
        return self._request("GET", f"/jobs/{job_id}{suffix}")

    def wait_job(self, job_id: str, timeout: Optional[float] = None,
                 poll_seconds: float = 0.05) -> Dict[str, Any]:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.job_status(job_id)
            if status.get("state") in JOB_TERMINAL_STATES:
                return status
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still "
                                   f"{status.get('state')} after {timeout}s")
            time.sleep(poll_seconds)

    def cancel_job(self, job_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/jobs/{job_id}")

    def list_jobs(self, dataset: Optional[str] = None,
                  limit: int = 100) -> List[Dict[str, Any]]:
        path = f"/jobs?limit={int(limit)}"
        if dataset is not None:
            from urllib.parse import quote

            path += f"&dataset={quote(dataset)}"
        return list(self._request("GET", path).get("jobs", []))

    def append_rows(self, dataset: str, rows: Sequence[Dict[str, Any]],
                    rewarm: bool = True, top: int = 8) -> Dict[str, Any]:
        payload = {"dataset": dataset, "rows": [dict(row) for row in rows],
                   "rewarm": bool(rewarm), "top": int(top)}
        return self._request("POST", "/append_rows", payload)

    def health(self) -> Dict[str, Any]:
        # /healthz answers 503 with the degraded body; return it rather
        # than raising so callers can inspect worker status.
        status, payload = self._send("GET", "/healthz", None)
        try:
            parsed = json.loads(payload) if payload else {}
        except ValueError:
            parsed = {}
        if isinstance(parsed, dict) and parsed:
            return parsed
        return {"status": "down", "errors": [f"HTTP {status}"]}

    def close(self) -> None:
        """Close every kept-alive connection this client opened."""
        with self._connections_lock:
            connections, self._connections = list(self._connections), set()
        for connection in connections:
            try:
                connection.close()
            except OSError:
                pass
