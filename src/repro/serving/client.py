"""Transport-agnostic clients for the explanation serving tier.

Callers should not care *where* explanations are computed — in their own
process, behind an HTTP endpoint, or sharded over a cluster of worker
processes.  :class:`ExplanationClient` is the one surface they program
against:

* ``explain(dataset, query, k)`` / ``explain_batch(dataset, queries, k)``
  serve :class:`~repro.serving.service.ServedExplanation` objects;
* ``stats()`` returns the serving tier's observability snapshot;
* ``warm(dataset, queries=...)`` builds cross-query artefacts and replays
  hot queries into the caches;
* ``clear_cache()`` invalidates every cache layer (dataset versions bump,
  see :meth:`~repro.engine.context.PipelineContext.bump_dataset_version`);
* ``close()`` releases whatever the transport holds (threads, sockets,
  worker processes).

Three interchangeable implementations ship with the package:

* :class:`LocalClient` — wraps an in-process
  :class:`~repro.serving.service.ExplanationService`; zero transport cost,
  one GIL.
* :class:`HTTPClient` — a dependency-free stdlib JSON client for the
  :mod:`repro.serving.http` API; talk to any remote deployment.
* :class:`~repro.serving.cluster.ClusterClient` — routes requests by the
  stable hash of their canonical query key over N local worker processes
  (:class:`~repro.serving.cluster.ServiceCluster`), scaling beyond one GIL
  while keeping each worker's caches hot for its key range.

Because the HTTP front end (:mod:`repro.serving.http`) itself serves *any*
client, the same handler code exposes a single process or a whole cluster —
pick the topology with ``python -m repro.serving --workers N``.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from abc import ABC, abstractmethod
from typing import Any, Dict, List, Optional, Sequence

from repro.engine.envelope import ExplanationEnvelope
from repro.exceptions import (
    DatasetNotRegisteredError,
    ExplanationError,
    MissingDataError,
    QueryError,
    RequestValidationError,
)
from repro.query.aggregate_query import AggregateQuery
from repro.serving.schema import query_payload
from repro.serving.service import ExplanationService, ServedExplanation


class ExplanationClient(ABC):
    """The transport-agnostic serving API (see the module docstring).

    Implementations must be thread-safe: the HTTP front end calls one
    client from many handler threads concurrently.
    """

    @abstractmethod
    def explain(self, dataset: str, query: AggregateQuery,
                k: Optional[int] = None) -> ServedExplanation:
        """Serve one explanation."""

    @abstractmethod
    def explain_batch(self, dataset: str, queries: Sequence[AggregateQuery],
                      k: Optional[int] = None) -> List[ServedExplanation]:
        """Serve a batch of explanations, in request order."""

    @abstractmethod
    def stats(self) -> Dict[str, Any]:
        """The serving tier's observability snapshot (JSON-safe)."""

    @abstractmethod
    def warm(self, dataset: str, queries: Optional[Sequence] = None,
             top: int = 8) -> int:
        """Build cross-query artefacts and replay hot queries; returns count."""

    @abstractmethod
    def close(self) -> None:
        """Release the transport's resources; the client stops serving."""

    # ---- standard extensions every implementation provides ------------- #
    @abstractmethod
    def clear_cache(self) -> None:
        """Invalidate every cache layer (bumps dataset versions)."""

    @abstractmethod
    def health(self) -> Dict[str, Any]:
        """Liveness verdict: ``{"status": "ok" | "degraded" | "down", ...}``."""

    def datasets(self) -> List[str]:
        """Names of the datasets this client can serve, sorted."""
        return sorted(self.health().get("datasets", []))

    def __enter__(self) -> "ExplanationClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class LocalClient(ExplanationClient):
    """An in-process client over one :class:`ExplanationService`.

    ``close_service=False`` leaves the wrapped service running on close —
    for a service shared with other consumers (e.g. tests driving both the
    service object and a client view of it).
    """

    def __init__(self, service: ExplanationService, close_service: bool = True):
        self.service = service
        self._close_service = close_service

    def explain(self, dataset: str, query: AggregateQuery,
                k: Optional[int] = None) -> ServedExplanation:
        return self.service.explain(dataset, query, k=k)

    def explain_batch(self, dataset: str, queries: Sequence[AggregateQuery],
                      k: Optional[int] = None) -> List[ServedExplanation]:
        return self.service.explain_batch(dataset, queries, k=k)

    def stats(self) -> Dict[str, Any]:
        return self.service.stats()

    def warm(self, dataset: str, queries: Optional[Sequence] = None,
             top: int = 8) -> int:
        return self.service.warm(dataset, queries=queries, top=top)

    def clear_cache(self) -> None:
        self.service.clear_cache()

    def health(self) -> Dict[str, Any]:
        return self.service.health()

    def datasets(self) -> List[str]:
        return self.service.datasets()

    def close(self) -> None:
        if self._close_service:
            self.service.close()


def _raise_for_http_error(status: int, body: Dict[str, Any]) -> None:
    """Map an error response back onto the exception the server mapped from."""
    errors = body.get("errors") or [f"HTTP {status}"]
    message = "; ".join(str(error) for error in errors)
    if status == 400:
        raise QueryError(message)
    if status == 404:
        raise DatasetNotRegisteredError(message)
    if status == 422:
        raise MissingDataError(message)
    raise ExplanationError(f"server error (HTTP {status}): {message}")


class HTTPClient(ExplanationClient):
    """A stdlib JSON client for the :mod:`repro.serving.http` API.

    Parameters
    ----------
    base_url:
        Where the server listens, e.g. ``"http://127.0.0.1:8080"``.
    timeout:
        Per-request socket timeout in seconds.  Cold explanations run a
        full engine pipeline, so the default is generous.
    """

    def __init__(self, base_url: str, timeout: float = 300.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"} if data else {})
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as error:
            try:
                payload = json.loads(error.read())
            except (ValueError, OSError):
                payload = {}
            _raise_for_http_error(error.code, payload)

    @staticmethod
    def _served(body: Dict[str, Any]) -> ServedExplanation:
        return ServedExplanation(
            dataset=body["dataset"],
            envelope=ExplanationEnvelope.from_dict(body["envelope"]),
            cache_hit=bool(body.get("cache_hit", False)),
            coalesced=bool(body.get("coalesced", False)))

    # ------------------------------------------------------------------ #
    # the client protocol
    # ------------------------------------------------------------------ #
    def explain(self, dataset: str, query: AggregateQuery,
                k: Optional[int] = None) -> ServedExplanation:
        body = self._request(
            "POST", "/explain", query_payload(query, k=k, dataset=dataset))
        return self._served(body)

    def explain_batch(self, dataset: str, queries: Sequence[AggregateQuery],
                      k: Optional[int] = None) -> List[ServedExplanation]:
        payload: Dict[str, Any] = {
            "dataset": dataset,
            "queries": [query_payload(query) for query in queries],
        }
        if k is not None:
            payload["k"] = k
        body = self._request("POST", "/explain_batch", payload)
        return [self._served(dict(result, dataset=body["dataset"]))
                for result in body["results"]]

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def warm(self, dataset: str, queries: Optional[Sequence] = None,
             top: int = 8) -> int:
        payload: Dict[str, Any] = {"dataset": dataset, "top": top}
        if queries is not None:
            if any(not isinstance(query, AggregateQuery) for query in queries):
                raise RequestValidationError(
                    "warm queries must be AggregateQuery objects")
            payload["queries"] = [query_payload(query) for query in queries]
        return int(self._request("POST", "/warm", payload).get("warmed", 0))

    def clear_cache(self) -> None:
        self._request("POST", "/clear_cache", {})

    def health(self) -> Dict[str, Any]:
        # /healthz answers 503 with the degraded body; return it rather
        # than raising so callers can inspect worker status.
        request = urllib.request.Request(self.base_url + "/healthz")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as error:
            try:
                return json.loads(error.read())
            except ValueError:
                return {"status": "down", "errors": [f"HTTP {error.code}"]}

    def close(self) -> None:
        """Nothing to release: requests use one-shot stdlib connections."""
