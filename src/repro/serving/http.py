"""JSON-over-HTTP front end for any :class:`ExplanationClient`.

A deliberately dependency-free server on the stdlib's
:class:`~http.server.ThreadingHTTPServer` — one OS thread per connection,
which is exactly the traffic shape the serving layer is built for: threads
hit the explanation caches concurrently and the backend coalesces misses.

The handler is written against the transport-agnostic
:class:`~repro.serving.client.ExplanationClient` protocol, *not* a concrete
service: hand :func:`make_server` an in-process
:class:`~repro.serving.service.ExplanationService` (wrapped in a
:class:`~repro.serving.client.LocalClient` automatically) or a
:class:`~repro.serving.cluster.ClusterClient` over N worker processes and
the same handler code serves every topology —
``python -m repro.serving --workers N`` is exactly that switch.  The
cluster itself shards on either axis (``--shard keys`` replicates data and
routes requests; ``--shard rows`` splits each table into row ranges and
scatter-gathers partial counts), and the HTTP surface is identical in all
modes — only ``GET /stats`` reveals the topology.

Endpoints
---------

``POST /explain``
    Body: ``{"dataset": ..., ...query fields...}`` (see
    :class:`~repro.serving.schema.ExplainRequest`).  Returns the envelope
    JSON wrapped with cache metadata.
``POST /explain_batch``
    Body: ``{"dataset": ..., "queries": [...], "k": ...}``.  Returns
    ``{"results": [...]}`` in request order.
``POST /warm``
    Body: ``{"dataset": ..., "queries": [...]?, "top": ...?}``.  Builds the
    dataset's cross-query artefacts and replays the given (or recorded
    top-K) queries into the caches; returns ``{"warmed": N}``.
``POST /clear_cache``
    Invalidates every cache layer (dataset versions bump on every backend
    process).
``POST /jobs``
    Body: ``{"dataset": ..., "kind": "explain_batch"|"warm", "queries":
    [...]?, "k": ...?, "top": ...?}``.  Creates a durable background job
    (see :class:`~repro.jobs.manager.JobManager`) and returns
    ``{"job_id": ...}`` immediately — the job row is fsynced before the
    response, so a crash after the 200 never loses the submission.
``GET /jobs``
    Recent jobs, newest first: ``{"jobs": [...]}``; ``?limit=N`` and
    ``?dataset=...`` filter.
``GET /jobs/<id>``
    One job's status/progress dict; ``?result=1`` embeds the per-query
    results recorded so far (the completed prefix, even mid-run).
    Unknown ids answer 400.
``DELETE /jobs/<id>``
    Requests cancellation; a RUNNING job stops at its next
    between-queries boundary and keeps its completed prefix durable.
``POST /append_rows``
    Body: ``{"dataset": ..., "rows": [...], "rewarm": bool?, "top": ...?}``.
    Live dataset update: appends the rows under a bumped dataset version,
    invalidates every cache tier coherently, and (by default) kicks off a
    background re-warm job over the top recorded queries.
``GET /stats``
    Serving-tier observability snapshot: cache hit rates and per-dataset
    occupancy, coalescing counters, per-dataset engine counters — and, in
    cluster mode, the merged view plus the per-worker breakdown.
``GET /metrics``
    The same observability snapshot in the Prometheus text exposition
    format (``text/plain; version=0.0.4``): request/stage latency
    histograms with estimated quantiles, cache hit ratios, engine event
    counters — scrapeable from every topology (the cluster merges worker
    registries exactly as ``/stats`` merges counters).
``GET /trace/<id>``
    The finished span tree of one traced request as nested JSON.  Every
    ``/explain`` response carries its ``trace_id``; traces live in a
    bounded in-memory LRU, so old ids age out (404).  Pass
    ``"debug": true`` in an explain request to get the tree inline.
``GET /healthz``
    Liveness probe: ``{"status": "ok", "datasets": [...]}``; answers
    **503** with ``status: "degraded"`` while any cluster worker is down.

Errors map to JSON bodies with an ``errors`` list: 400 for validation and
query errors, 404 for unknown datasets and routes, 422 for missing-data
failures (the request is well-formed but the referenced data cannot support
the analysis — a client-data problem, not a server fault), 500 for engine
failures.
"""

from __future__ import annotations

import json
import logging
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple, Union

from repro import __version__
from urllib.parse import parse_qs

from repro.exceptions import (
    ConfigurationError,
    DatasetNotRegisteredError,
    ExplanationError,
    MissingDataError,
    QueryError,
    RequestValidationError,
)
from repro.obs import trace
from repro.obs.logs import log_slow_query
from repro.obs.metrics import prometheus_text
from repro.serving.client import ExplanationClient, LocalClient
from repro.serving.schema import (
    API_SCHEMA_VERSION,
    AppendRowsRequest,
    BatchExplainRequest,
    ExplainRequest,
    ExplainResponse,
    JobSubmitRequest,
)
from repro.serving.service import ExplanationService, ServedExplanation

#: Request bodies past this size are rejected with 413 before reading.
MAX_BODY_BYTES = 1 << 20


class _HTTPFault(Exception):
    """An error response decided before the request body was consumed.

    ``close`` marks the connection as non-reusable: on HTTP/1.1 keep-alive
    an unread body would otherwise be parsed as the next request line.
    """

    def __init__(self, status: int, message: str, close: bool = False):
        super().__init__(message)
        self.status = status
        self.message = message
        self.close = close


def _served_to_dict(served: ServedExplanation,
                    trace_id: Optional[str] = None,
                    debug: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    return ExplainResponse(
        dataset=served.dataset,
        envelope_dict=served.envelope.to_dict(),
        cache_hit=served.cache_hit,
        coalesced=served.coalesced,
        trace_id=trace_id if trace_id is not None else served.trace_id,
        debug=debug,
    ).to_dict()


class ExplanationRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the server's :class:`ExplanationService`."""

    server_version = f"repro-serving/{__version__}"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - stdlib handler naming
        path = self.path.split("?", 1)[0]
        try:
            if path == "/healthz":
                health = dict(self._client.health())
                health.setdefault("version", __version__)
                status = 200 if health.get("status") == "ok" else 503
                self._respond(status, health)
            elif path == "/stats":
                self._respond(200, self._client.stats())
            elif path == "/metrics":
                self._respond_text(200, prometheus_text(self._client.stats()))
            elif path == "/jobs" or path.startswith("/jobs/"):
                status, body = self._guard(lambda: self._jobs_get(path))
                self._respond(status, body)
            elif path.startswith("/trace/"):
                trace_id = path[len("/trace/"):]
                tree = self.server.tracer.trace_tree(trace_id)  # type: ignore[attr-defined]
                if tree is None:
                    self._respond(404, {"errors": [
                        f"no such trace: {trace_id!r} (traces are kept in a "
                        "bounded in-memory store and age out)"]})
                else:
                    self._respond(200, tree)
            else:
                self._respond(404, {"errors": [f"no such endpoint: GET {path}"]})
        except Exception as exc:  # snapshot failures must answer, not abort
            self._respond(500, {"errors": [f"{type(exc).__name__}: {exc}"]})

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler naming
        path = self.path.split("?", 1)[0]
        if path == "/explain":
            self._handle(self._explain)
        elif path == "/explain_batch":
            self._handle(self._explain_batch)
        elif path == "/warm":
            self._handle(self._warm)
        elif path == "/clear_cache":
            self._handle(self._clear_cache)
        elif path == "/jobs":
            self._handle(self._submit_job)
        elif path == "/append_rows":
            self._handle(self._append_rows)
        else:
            self._respond(404, {"errors": [f"no such endpoint: POST {path}"]})

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib handler naming
        path = self.path.split("?", 1)[0]
        if path.startswith("/jobs/") and len(path) > len("/jobs/"):
            job_id = path[len("/jobs/"):]
            status, body = self._guard(
                lambda: (200, self._client.cancel_job(job_id)))
            self._respond(status, body)
        else:
            self._respond(404, {"errors": [f"no such endpoint: DELETE {path}"]})

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #
    def _explain(self, payload: Any) -> Tuple[int, Dict[str, Any]]:
        dataset, body = self._split_dataset(payload)
        request = ExplainRequest.from_dict(body)
        started = time.perf_counter()
        req_trace = trace.begin_request(
            self.server.tracer, "http.explain",  # type: ignore[attr-defined]
            dataset=dataset, endpoint="/explain")
        try:
            served = self._client.explain(dataset, request.query, k=request.k)
        finally:
            req_trace.finish()
            log_slow_query(
                time.perf_counter() - started,
                self.server.slow_query_seconds,  # type: ignore[attr-defined]
                endpoint="/explain", dataset=dataset,
                trace_id=req_trace.trace_id)
        debug = None
        if request.debug:
            debug = {"trace": self.server.tracer.trace_tree(  # type: ignore[attr-defined]
                req_trace.trace_id)}
        return 200, _served_to_dict(served, trace_id=req_trace.trace_id,
                                    debug=debug)

    def _explain_batch(self, payload: Any) -> Tuple[int, Dict[str, Any]]:
        dataset, body = self._split_dataset(payload)
        batch = BatchExplainRequest.from_dict(body)
        started = time.perf_counter()
        req_trace = trace.begin_request(
            self.server.tracer, "http.explain_batch",  # type: ignore[attr-defined]
            dataset=dataset, endpoint="/explain_batch",
            queries=len(batch.requests))
        # Group by resolved k (the engine batch API applies one k per
        # call) while preserving request order in the response.
        by_k: Dict[Optional[int], List[int]] = {}
        for index, request in enumerate(batch.requests):
            by_k.setdefault(request.k if request.k is not None else batch.k,
                            []).append(index)
        results: List[Optional[Dict[str, Any]]] = [None] * len(batch.requests)
        try:
            for k, indices in by_k.items():
                served = self._client.explain_batch(
                    dataset, [batch.requests[i].query for i in indices], k=k)
                for index, one in zip(indices, served):
                    results[index] = _served_to_dict(
                        one, trace_id=req_trace.trace_id)
        finally:
            req_trace.finish()
            log_slow_query(
                time.perf_counter() - started,
                self.server.slow_query_seconds,  # type: ignore[attr-defined]
                endpoint="/explain_batch", dataset=dataset,
                trace_id=req_trace.trace_id, queries=len(batch.requests))
        response = {"api_schema_version": API_SCHEMA_VERSION,
                    "dataset": dataset, "results": results,
                    "trace_id": req_trace.trace_id}
        if any(request.debug for request in batch.requests):
            response["debug"] = {"trace": self.server.tracer.trace_tree(  # type: ignore[attr-defined]
                req_trace.trace_id)}
        return 200, response

    def _warm(self, payload: Any) -> Tuple[int, Dict[str, Any]]:
        dataset, body = self._split_dataset(payload)
        top = body.pop("top", 8)
        if not isinstance(top, int) or isinstance(top, bool) or top < 0:
            raise RequestValidationError(f"top must be an integer >= 0, got {top!r}")
        raw_queries = body.pop("queries", None)
        if body:
            raise RequestValidationError(
                f"unknown field(s) {sorted(body)} in warm request")
        queries = None
        if raw_queries is not None:
            if not isinstance(raw_queries, (list, tuple)):
                raise RequestValidationError(
                    "queries must be a list of request objects")
            queries = [ExplainRequest.from_dict(raw).query
                       for raw in raw_queries]
        warmed = self._client.warm(dataset, queries=queries, top=top)
        return 200, {"api_schema_version": API_SCHEMA_VERSION,
                     "dataset": dataset, "warmed": int(warmed)}

    def _clear_cache(self, payload: Any) -> Tuple[int, Dict[str, Any]]:
        if payload not in (None, {}, []):
            raise RequestValidationError(
                "clear_cache takes an empty JSON body")
        self._client.clear_cache()
        return 200, {"api_schema_version": API_SCHEMA_VERSION,
                     "status": "cleared"}

    def _submit_job(self, payload: Any) -> Tuple[int, Dict[str, Any]]:
        dataset, body = self._split_dataset(payload)
        request = JobSubmitRequest.from_dict(body)
        job_id = self._client.submit_job(
            dataset, kind=request.kind, queries=request.queries,
            k=request.k, top=request.top)
        return 200, {"api_schema_version": API_SCHEMA_VERSION,
                     "job_id": job_id}

    def _append_rows(self, payload: Any) -> Tuple[int, Dict[str, Any]]:
        dataset, body = self._split_dataset(payload)
        request = AppendRowsRequest.from_dict(body)
        result = self._client.append_rows(
            dataset, list(request.rows), rewarm=request.rewarm,
            top=request.top)
        response = {"api_schema_version": API_SCHEMA_VERSION}
        response.update(result)
        return 200, response

    def _jobs_get(self, path: str) -> Tuple[int, Dict[str, Any]]:
        params = parse_qs(self.path.split("?", 1)[1]) if "?" in self.path \
            else {}
        if path == "/jobs":
            raw_limit = params.get("limit", ["100"])[-1]
            try:
                limit = int(raw_limit)
            except ValueError:
                raise RequestValidationError(
                    f"limit must be an integer, got {raw_limit!r}")
            dataset = params.get("dataset", [None])[-1]
            jobs = self._client.list_jobs(dataset=dataset, limit=limit)
            return 200, {"api_schema_version": API_SCHEMA_VERSION,
                         "jobs": jobs}
        job_id = path[len("/jobs/"):]
        if not job_id or "/" in job_id:
            raise RequestValidationError(f"bad jobs path {path!r}")
        include_result = params.get("result", ["0"])[-1] \
            not in ("", "0", "false")
        return 200, self._client.job_status(
            job_id, include_result=include_result)

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    @property
    def _client(self) -> ExplanationClient:
        return self.server.client  # type: ignore[attr-defined]

    @staticmethod
    def _split_dataset(payload: Any) -> Tuple[str, Dict[str, Any]]:
        """Pop the ``dataset`` field off a request body (strictly)."""
        if not isinstance(payload, dict):
            raise RequestValidationError(
                f"request body must be a JSON object, got {type(payload).__name__}")
        dataset = payload.get("dataset")
        if not isinstance(dataset, str) or not dataset:
            raise RequestValidationError("dataset must be a non-empty string")
        body = {key: value for key, value in payload.items() if key != "dataset"}
        return dataset, body

    def _read_json_body(self) -> Any:
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header or "")
        except ValueError:
            # The body (if any) was not read; this connection cannot be
            # reused for a next request.
            raise _HTTPFault(
                400, "a JSON body with a Content-Length header is required",
                close=True)
        if length > MAX_BODY_BYTES:
            raise _HTTPFault(
                413, f"request body of {length} bytes exceeds the "
                     f"{MAX_BODY_BYTES}-byte limit", close=True)
        if length == 0:
            return None
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RequestValidationError(f"request body is not valid JSON: {exc}")

    def _guard(self, thunk) -> Tuple[int, Dict[str, Any]]:
        """Run a request thunk, mapping exceptions to error responses."""
        try:
            return thunk()
        except _HTTPFault as fault:
            if fault.close:
                self.close_connection = True
            return fault.status, {"errors": [fault.message]}
        except RequestValidationError as exc:
            return 400, {"errors": exc.errors}
        except (QueryError, ExplanationError, ConfigurationError) as exc:
            # On the serving path all three are client-input errors:
            # malformed queries, contexts selecting zero rows, candidate
            # misuse, job APIs on a deployment without a durable store.
            return 400, {"errors": [str(exc)]}
        except MissingDataError as exc:
            # The request was valid but the referenced data cannot support
            # the analysis (e.g. degenerate selection-model inputs): a
            # client-data problem, not a server fault.
            return 422, {"errors": [str(exc)]}
        except DatasetNotRegisteredError as exc:
            return 404, {"errors": [str(exc)]}
        except Exception as exc:  # engine failures must not kill the thread
            return 500, {"errors": [f"{type(exc).__name__}: {exc}"]}

    def _handle(self, endpoint) -> None:
        status, body = self._guard(
            lambda: endpoint(self._read_json_body()))
        self._respond(status, body)

    def _respond(self, status: int, body: Dict[str, Any]) -> None:
        payload = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _respond_text(self, status: int, text: str) -> None:
        """A plain-text response (the Prometheus exposition format)."""
        payload = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type",
                         "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "quiet", False):  # pragma: no cover
            return
        super().log_message(format, *args)


class ExplanationHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ExplanationClient`.

    A bare :class:`ExplanationService` is accepted too (wrapped in a
    :class:`LocalClient`), so existing single-process deployments keep
    working unchanged.
    """

    daemon_threads = True

    def __init__(self, address: Tuple[str, int],
                 backend: Union[ExplanationClient, ExplanationService],
                 quiet: bool = True,
                 slow_query_seconds: Optional[float] = 1.0):
        super().__init__(address, ExplanationRequestHandler)
        if isinstance(backend, ExplanationService):
            backend = LocalClient(backend)
        self.client: ExplanationClient = backend
        self.quiet = quiet
        #: Requests slower than this many seconds are written to the
        #: structured slow-query log (None disables).
        self.slow_query_seconds = slow_query_seconds
        # One trace store per server process.  A local backend's service
        # already owns a tracer — reuse it so `GET /trace/<id>` sees the
        # same store whether a trace was started here or directly on the
        # service; remote backends (cluster workers) ship their spans back
        # over the wire into this tracer.
        service = self.service
        self.tracer: trace.Tracer = (
            service.tracer if service is not None
            else trace.Tracer(tier="front"))

    @property
    def service(self) -> Optional[ExplanationService]:
        """The in-process service, when the backend is local (else None)."""
        return getattr(self.client, "service", None)


def make_server(backend: Union[ExplanationClient, ExplanationService],
                host: str = "127.0.0.1", port: int = 8080,
                quiet: bool = True,
                slow_query_seconds: Optional[float] = 1.0) -> ExplanationHTTPServer:
    """Bind an :class:`ExplanationHTTPServer` (``port=0`` picks a free port)."""
    return ExplanationHTTPServer((host, port), backend, quiet=quiet,
                                 slow_query_seconds=slow_query_seconds)


def serve_forever(backend: Union[ExplanationClient, ExplanationService],
                  host: str = "127.0.0.1", port: int = 8080,
                  quiet: bool = False,
                  slow_query_seconds: Optional[float] = 1.0,
                  install_signal_handlers: bool = False) -> None:
    """Blocking convenience entry point (used by ``python -m repro.serving``).

    With ``install_signal_handlers`` (the ``python -m repro.serving`` path),
    SIGTERM and SIGINT trigger a *graceful* stop: the accept loop drains, the
    backend closes — which checkpoints any RUNNING job back to PENDING and
    flushes the metastore's write-behind queue — and only then does the
    process exit, so a supervisor's ``kill`` never loses durable work.
    ``server.shutdown()`` blocks until ``serve_forever`` returns, so the
    handler hands it to a helper thread instead of calling it inline (a
    signal delivered on the serving thread would deadlock).
    """
    server = make_server(backend, host, port, quiet=quiet,
                         slow_query_seconds=slow_query_seconds)
    log = logging.getLogger("repro.serving.http")
    if install_signal_handlers:
        import signal
        import threading

        def _graceful(signum, _frame):  # pragma: no cover - signal path
            log.info("received %s: draining connections and closing the "
                     "backend (jobs checkpoint, write-behind flushes)",
                     signal.Signals(signum).name)
            threading.Thread(target=server.shutdown,
                             name="repro-shutdown", daemon=True).start()

        signal.signal(signal.SIGTERM, _graceful)
        signal.signal(signal.SIGINT, _graceful)
    bound_host, bound_port = server.server_address[:2]
    datasets = server.client.datasets()
    log.info(
        "serving %s on http://%s:%s (POST /explain, POST /explain_batch, "
        "POST /warm, POST /jobs, POST /append_rows, GET /stats, "
        "GET /metrics, GET /trace/<id>, GET /healthz)",
        datasets, bound_host, bound_port)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.shutdown()
        server.server_close()
        server.client.close()
