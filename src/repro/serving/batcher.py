"""Micro-batching of concurrent explanation requests.

Under concurrent traffic the cheapest query plan is rarely "run each request
the moment it arrives": requests that share a dataset can amortise the
per-batch engine work (`explain_many` runs extraction and offline pruning
once, and fans out over workers), and *identical* concurrent requests
should run once, not N times.  A :class:`MicroBatcher` therefore:

* **coalesces** — requests arriving within a configurable window (a few
  milliseconds) are collected into one batch and executed by a single
  ``explain_many``-shaped runner call;
* **deduplicates in flight** — a request whose canonical key is already
  pending or executing attaches to the existing future instead of enqueuing
  a duplicate, so a thundering herd of the same query costs one execution.

The batcher owns one daemon worker thread, started lazily on the first
submission; ``close()`` drains and stops it.  Results are delivered through
``concurrent.futures.Future`` objects, so callers may block (``result()``)
or compose callbacks.
"""

from __future__ import annotations

import inspect
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.obs import trace

#: runner(queries, k) -> one result per query, in order.  A runner may
#: additionally accept a ``trace_captures`` keyword (one capture per
#: query); the batcher detects this at construction and threads each
#: request's originating trace through, so coalesced engine work is
#: attributed to the right request.
BatchRunner = Callable[[Sequence, Optional[int]], Sequence]


def _accepts_trace_captures(runner) -> bool:
    try:
        return "trace_captures" in inspect.signature(runner).parameters
    except (TypeError, ValueError):  # builtins / C callables
        return False


@dataclass
class _Pending:
    """One enqueued request waiting for its batch to flush."""

    key: Hashable
    query: object
    k: Optional[int]
    future: "Future" = field(default_factory=Future)
    #: The submitting thread's active trace (or None) — re-activated by
    #: the batch worker so spans land in the request's trace.
    capture: object = None
    enqueued_at: float = 0.0


class MicroBatcher:
    """Coalesce concurrent requests into deduplicated engine batches.

    Parameters
    ----------
    runner:
        Executes one batch: ``runner(queries, k)`` must return one result
        per query, in order (the service passes the pipeline's
        ``explain_many``-shaped closure).
    window_seconds:
        How long the worker waits after the first request of a batch for
        more requests to coalesce.  ``0`` still batches whatever arrives
        while a previous batch is executing.
    max_batch:
        Flush early once this many distinct requests are pending.
    clock:
        Monotonic time source; injectable for tests.
    """

    def __init__(self, runner: BatchRunner, window_seconds: float = 0.005,
                 max_batch: int = 64,
                 clock: Callable[[], float] = time.monotonic):
        if window_seconds < 0:
            raise ConfigurationError(
                f"window_seconds must be >= 0, got {window_seconds}")
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
        self._runner = runner
        self._runner_takes_captures = _accepts_trace_captures(runner)
        self.window_seconds = window_seconds
        self.max_batch = max_batch
        self._clock = clock
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._pending: List[_Pending] = []
        self._first_enqueued_at: Optional[float] = None
        self._inflight: Dict[Hashable, Future] = {}
        self._worker: Optional[threading.Thread] = None
        self._closed = False
        self.batches_executed = 0
        self.requests_submitted = 0
        self.requests_deduplicated = 0

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit(self, key: Hashable, query,
               k: Optional[int] = None) -> Tuple[Future, bool]:
        """Enqueue a request; returns ``(future, attached)``.

        ``attached`` is True when an identical request (same ``key``) was
        already pending or executing and this submission joined its future
        instead of enqueuing a duplicate.  The result object behind a
        shared future is therefore shared too — envelopes are immutable,
        so the service serves it as-is.
        """
        with self._lock:
            if self._closed:
                raise ConfigurationError("MicroBatcher is closed")
            self.requests_submitted += 1
            existing = self._inflight.get(key)
            if existing is not None:
                self.requests_deduplicated += 1
                return existing, True
            pending = _Pending(key=key, query=query, k=k,
                               capture=trace.capture(),
                               enqueued_at=self._clock())
            self._inflight[key] = pending.future
            self._pending.append(pending)
            if self._first_enqueued_at is None:
                self._first_enqueued_at = self._clock()
            self._ensure_worker()
            self._wakeup.notify_all()
            return pending.future, False

    # ------------------------------------------------------------------ #
    # worker
    # ------------------------------------------------------------------ #
    def _ensure_worker(self) -> None:
        if self._worker is None or not self._worker.is_alive():
            self._worker = threading.Thread(
                target=self._run, name="repro-serving-batcher", daemon=True)
            self._worker.start()

    def _take_batch(self) -> Optional[List[_Pending]]:
        """Block until a batch is ready (window elapsed / full / closing)."""
        with self._lock:
            while True:
                if self._pending:
                    elapsed = self._clock() - self._first_enqueued_at
                    remaining = self.window_seconds - elapsed
                    if remaining <= 0 or len(self._pending) >= self.max_batch \
                            or self._closed:
                        batch = self._pending
                        self._pending = []
                        self._first_enqueued_at = None
                        return batch
                    self._wakeup.wait(timeout=remaining)
                elif self._closed:
                    return None
                else:
                    self._wakeup.wait()

    def _run(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            self._execute(batch)

    def _execute(self, batch: List[_Pending]) -> None:
        # Queue-wait spans: measured from submit time, attributed to each
        # request's own trace (no-ops for untraced requests).
        flushed_at = self._clock()
        for pending in batch:
            trace.record_span(pending.capture, "batcher.queue_wait",
                              flushed_at - pending.enqueued_at,
                              batch_size=len(batch))
        # Group by k: the engine's batch API applies one k to the whole
        # call, so requests with different explanation-size budgets run as
        # separate sub-batches.
        by_k: Dict[Optional[int], List[_Pending]] = {}
        for pending in batch:
            by_k.setdefault(pending.k, []).append(pending)
        for k, group in by_k.items():
            started = self._clock()
            try:
                results = self._run_group(group, k)
                if len(results) != len(group):  # pragma: no cover - defensive
                    raise ConfigurationError(
                        f"batch runner returned {len(results)} results "
                        f"for {len(group)} queries")
            except BaseException:
                # One bad query aborts the whole engine batch, but the
                # error belongs to *one* request — re-run the group's
                # queries individually so every waiter gets a verdict
                # attributable to its own key.  (The service negative-caches
                # errors under the request's canonical key; propagating a
                # group-mate's failure would poison valid queries that
                # merely coalesced into the wrong batch.)  Failures are the
                # rare path, so the retry cost is acceptable.
                self._execute_individually(group, k)
                continue
            elapsed = self._clock() - started
            for pending in group:
                trace.record_span(pending.capture, "batcher.execute",
                                  elapsed, batch_size=len(group))
            # Unregister before resolving: a submitter observing the
            # resolved future must be able to enqueue a fresh run.
            with self._lock:
                for pending in group:
                    self._inflight.pop(pending.key, None)
            for pending, result in zip(group, results):
                pending.future.set_result(result)
            self.batches_executed += 1

    def _run_group(self, group: List[_Pending],
                   k: Optional[int]) -> Sequence:
        if self._runner_takes_captures:
            return self._runner([pending.query for pending in group], k,
                                trace_captures=[pending.capture
                                                for pending in group])
        return self._runner([pending.query for pending in group], k)

    def _execute_individually(self, group: List[_Pending],
                              k: Optional[int]) -> None:
        """Resolve each request of a failed batch with its own verdict."""
        for pending in group:
            try:
                results = self._run_group([pending], k)
                result = results[0]
            except BaseException as exc:
                with self._lock:
                    self._inflight.pop(pending.key, None)
                pending.future.set_exception(exc)
                continue
            with self._lock:
                self._inflight.pop(pending.key, None)
            pending.future.set_result(result)
        self.batches_executed += 1

    # ------------------------------------------------------------------ #
    # lifecycle and observability
    # ------------------------------------------------------------------ #
    def close(self, timeout: Optional[float] = 5.0) -> None:
        """Flush pending requests and stop the worker thread."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._wakeup.notify_all()
            worker = self._worker
        if worker is not None and worker.is_alive():
            worker.join(timeout=timeout)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def stats(self) -> Dict[str, int]:
        """Submission/dedup/batch counters (point-in-time snapshot)."""
        with self._lock:
            return {
                "requests_submitted": self.requests_submitted,
                "requests_deduplicated": self.requests_deduplicated,
                "batches_executed": self.batches_executed,
                "pending": len(self._pending),
            }
