"""Sharded multi-process serving: a cluster of explanation services.

One :class:`~repro.serving.service.ExplanationService` owns one process —
and therefore one GIL.  A :class:`ServiceCluster` scales past that by
spawning N worker processes, each running a full service (warm context,
explanation cache, negative cache, micro-batcher) over its own copy of the
registered datasets, and routing every request **by the stable hash of its
canonical query key** (:func:`~repro.table.expressions.stable_key_digest`;
the builtin ``hash`` is per-process salted and would scatter keys on every
restart).  Stable routing is what makes the shards *useful*: the key space
partitions deterministically, so each worker's explanation/frame/fit
caches stay hot for exactly its key range and the cluster's aggregate
cache capacity is N times one worker's — repeated traffic that would
thrash a single process's bounded LRUs stays resident.

The front tier stays thin — it owns no engine state:

* **in-flight dedup** — concurrent requests for one canonical key collapse
  to a single worker execution (the same shield the in-process
  micro-batcher provides, lifted above the process boundary);
* **stats merge** — per-worker ``stats()`` snapshots merge into one
  counter view (summed per dataset) with the per-worker breakdown kept;
* **health + restart** — a dead worker (crash, OOM-kill) is detected on
  its next request *or* health probe, respawned from the recorded dataset
  specs (the spawn-safe initializer pattern: the dataset pickles into the
  worker exactly once, at process start), the failed request is retried on
  the fresh worker, and the front tier's recorded top-K history for the
  worker's key range is replayed to re-warm its caches in the background;
* **coherent invalidation** — ``clear_cache()`` broadcasts to every
  worker, bumping each dataset's version so version-keyed caches in all
  processes retire their entries at once.

Workers communicate over :mod:`multiprocessing` pipes with a strict
request/response discipline (the parent serializes requests per worker);
results cross the boundary as compact envelope-JSON blobs, mirroring the
batch executor's IPC shape.  The ``fork`` start method is used where
available (workers inherit nothing mutable they use — each builds its own
service); ``spawn`` is fully supported and exercised by the tests.

:class:`ClusterClient` adapts a cluster to the
:class:`~repro.serving.client.ExplanationClient` protocol, so the HTTP
front end (and any other consumer) serves a cluster with the same code
that serves one process.

Two sharding axes.  ``shard="keys"`` (everything above) splits the *query
key space* across full replicas — N times the cache capacity, each worker
a complete copy of the data.  ``shard="rows"`` splits the *rows*: one
engine in the parent process drives N data-plane workers, each resident
with only its row slice (:class:`~repro.distributed.coordinator.ShardPool`
and the partial-counts contract in :mod:`repro.infotheory.kernel`), which
serves tables no single worker could hold.  The two modes share this one
front-tier class, the pipe transport in :mod:`repro.distributed.ipc`, and
the client surface.
"""

from __future__ import annotations

import copy
import itertools
import json
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.distributed import ipc
from repro.distributed.ipc import (
    PipeWorkerHandle,
    WorkerDiedError,
    WorkerFaultError,
    serve_pipe,
)
from repro.engine.config import MESAConfig
from repro.engine.envelope import ExplanationEnvelope
from repro.exceptions import (
    ConfigurationError,
    DatasetNotRegisteredError,
    QueryError,
)
from repro.obs.metrics import merge_metric_states
from repro.query.aggregate_query import AggregateQuery
from repro.serving.client import ExplanationClient
from repro.serving.service import ExplanationService, ServedExplanation
from repro.storage import MetaStore
from repro.table.expressions import stable_key_digest
from repro.table.table import Table

# The pipe transport — request framing, error reconstruction, the worker
# handle — lives in :mod:`repro.distributed.ipc`, shared with the shard
# pool; these aliases keep this module's historical surface.
_rebuild_error = ipc.rebuild_error
_WorkerHandle = PipeWorkerHandle


@dataclass(frozen=True)
class DatasetSpec:
    """Everything a worker needs to (re)build one dataset's service entry.

    This is the spawn-safe initializer payload: it is pickled into each
    worker exactly once — at process start (and again only on a restart) —
    so per-request messages carry queries, never data.

    With the shared-memory frame store enabled, ``manifest`` (a
    :class:`repro.shm.manifest.TableManifest`) replaces ``table``: the
    spec pickles in O(columns) bytes and the worker attaches read-only
    views over the shared segments instead of re-unpickling O(table).
    """

    name: str
    table: Any
    knowledge_graph: Any = None
    extraction_specs: Tuple = ()
    config: Optional[MESAConfig] = None
    warm: bool = True
    manifest: Any = None

    @property
    def n_rows(self) -> int:
        """Row count, whichever payload carries the data."""
        if self.table is not None:
            return self.table.n_rows
        return self.manifest.n_rows if self.manifest is not None else 0

    def resolve_table(self):
        """The concrete table: shipped directly or attached from shm."""
        if self.table is not None:
            return self.table
        from repro.shm.manifest import table_from_manifest

        return table_from_manifest(self.manifest)


#: Fork-mode spec handoff: the parent stashes the spec list here under a
#: one-shot token immediately before forking, the child pops it from its
#: inherited copy-on-write copy, and the parent deletes its entry as soon
#: as the fork happened.  Nothing is pickled — which is the point: fork
#: children inherit the tables for free, and serialising them per worker
#: was pure redundant cost.
_FORK_SPECS: Dict[int, List[DatasetSpec]] = {}
_fork_spec_tokens = itertools.count()


@dataclass(frozen=True)
class _ForkInheritedSpecs:
    """A token standing in for a spec list that crosses by fork inheritance."""

    token: int


def _worker_safe_config(config: Optional[MESAConfig]) -> MESAConfig:
    """The per-worker engine config: no nested process pools.

    Cluster workers are daemonic processes and may not spawn children, so
    a ``process`` engine backend inside one would fail; the cluster is the
    process-level parallelism, workers keep intra-batch fan-out on
    threads.
    """
    config = config or MESAConfig()
    if config.parallel_backend != "thread":
        config = config.with_overrides(parallel_backend="thread")
    return config


def _cluster_worker_main(conn, specs: Sequence[DatasetSpec],
                         service_kwargs: Dict[str, Any]) -> None:
    """The worker process: one warm service, a request/response loop.

    Replies are ``("ok", payload)`` or ``("error", (type_name, args))``;
    envelopes travel as one compact JSON blob per reply (the pickle cost
    of a flat string beats a tree of small dicts, as in the batch
    executor's IPC path).
    """
    service = ExplanationService(**service_kwargs)
    if isinstance(specs, _ForkInheritedSpecs):
        # Fork mode, frame store off: the spec list (tables included) came
        # along with the address space; nothing was pickled.
        specs = list(_FORK_SPECS.get(specs.token, ()))
    else:
        specs = list(specs)
    for spec in specs:
        service.register_dataset(
            spec.name, spec.resolve_table(), spec.knowledge_graph,
            spec.extraction_specs, config=_worker_safe_config(spec.config),
            warm=spec.warm)

    def serve_one(op: str, payload):
        if op == "explain":
            dataset, query, k = payload
            served = service.explain(dataset, query, k=k)
            return (served.envelope.to_json(), served.cache_hit,
                    served.coalesced)
        if op == "explain_batch":
            dataset, queries, k = payload
            served = service.explain_batch(dataset, queries, k=k)
            blob = json.dumps([one.envelope.to_dict() for one in served],
                              separators=(",", ":"))
            return blob, [(one.cache_hit, one.coalesced) for one in served]
        if op == "stats":
            snapshot = service.stats()
            # Every keys-mode worker is a full replica: it holds a copy of
            # each registered table — or, with the frame store, read-only
            # views over it — so its resident row count is the sum over
            # specs (contrast the row-shard workers, which report
            # O(rows / N) slices).
            snapshot["role"] = "replica"
            snapshot["resident_rows"] = sum(spec.n_rows for spec in specs)
            from repro.shm.segments import attachments

            snapshot["frame_store"] = attachments().stats()
            return snapshot
        if op == "warm":
            dataset, queries, top = payload
            return service.warm(dataset, queries=queries, top=top)
        if op == "clear_cache":
            service.clear_cache()
            return None
        if op == "adopt_frame":
            # An owner-published pre-encoded context frame: install its
            # manifest so the next frame-cache miss attaches read-only
            # views instead of re-encoding (encode-once-per-box).
            dataset, manifest = payload
            if dataset in service.datasets():
                service.pipeline(dataset).context.adopt_shared_frame(manifest)
            return None
        if op == "release_segments":
            # The owner is retiring a generation; drop our handles so it
            # can refcount down to the unlink.  Best-effort by design —
            # live views keep their (already unlinked-safe) mappings.
            from repro.shm.segments import attachments

            return attachments().release(payload or ())
        if op == "register":
            spec = payload
            # Idempotent: a worker respawned after this spec was appended
            # to the cluster's spec list already registered it at start-up,
            # and the broadcast's restart-and-retry path re-sends the op.
            if all(existing.name != spec.name for existing in specs):
                specs.append(spec)
            if spec.name not in service.datasets():
                service.register_dataset(
                    spec.name, spec.resolve_table(), spec.knowledge_graph,
                    spec.extraction_specs,
                    config=_worker_safe_config(spec.config), warm=spec.warm)
            return None
        if op == "append_rows":
            # Copy-path live update: every replica rebuilds the merged
            # table from the same rows, deterministically identical.
            dataset, rows = payload
            result = service.append_rows(dataset, rows, rewarm=False)
            for position, existing in enumerate(specs):
                if existing.name == dataset and existing.table is not None:
                    specs[position] = replace(
                        existing,
                        table=service.pipeline(dataset).context.table)
            return result
        if op == "update_dataset":
            # Frame-store live update: the spec carries a manifest of the
            # owner's freshly published merged table; attach zero-copy.
            spec = payload
            for position, existing in enumerate(specs):
                if existing.name == spec.name:
                    specs[position] = spec
                    break
            else:
                specs.append(spec)
            if spec.name not in service.datasets():
                service.register_dataset(
                    spec.name, spec.resolve_table(), spec.knowledge_graph,
                    spec.extraction_specs,
                    config=_worker_safe_config(spec.config), warm=spec.warm)
                return None
            return service.replace_table(spec.name, spec.resolve_table(),
                                         rewarm=False)
        if op == "ping":
            return "pong"
        raise ConfigurationError(f"unknown cluster op {op!r}")

    try:
        serve_pipe(conn, serve_one)
    finally:
        service.close()
        conn.close()


class ServiceCluster:
    """N worker processes serving one dataset set, sharded by query key.

    Parameters
    ----------
    n_workers:
        How many worker processes to spawn.
    service_kwargs:
        Keyword arguments for each worker's ``ExplanationService`` (cache
        sizes, TTL...).  The coalescing window defaults to 0 inside
        workers — the front tier already serialises per-worker traffic.
    start_method:
        ``"fork"`` / ``"spawn"``; default prefers fork where available
        (cheapest start), spawn is fully supported (and what Windows /
        macOS get).
    request_timeout:
        Seconds to wait for a worker's reply before declaring it dead.
        Cold explanations run full engine pipelines — keep this generous.
    restart_warm_top:
        After a worker restart, how many of the front tier's recorded
        top-K historical queries for that worker's key range to replay
        (in the background) to re-warm its caches; 0 disables.
    shard:
        ``"keys"`` (default) — N full-replica workers, requests routed by
        canonical query key; each worker holds a complete dataset copy.
        ``"rows"`` — ONE engine (in this process) over N *row-shard*
        workers: each worker holds only its contiguous ``O(rows / N)`` row
        slice of the encoded columns, and every count under every estimate
        scatter-gathers across them (see :mod:`repro.distributed`).  Rows
        mode is how a table no single worker could hold gets served; keys
        mode is how a hot key space gets cache capacity.
    frame_store:
        Share the dataset (and ``warm()``-encoded hot-context frames)
        across workers through ``multiprocessing.shared_memory``
        (:mod:`repro.shm`): workers attach read-only views instead of
        holding copies, collapsing per-worker residency from O(table) to
        O(1) and encoding each hot context once per box.  ``None``
        (default) enables it for multi-worker topologies when the
        platform has usable POSIX shared memory; ``True`` requests it
        (still subject to platform support — graceful fallback to the
        copy path, never an error); ``False`` disables it.
    store_path:
        Path of a shared SQLite :class:`~repro.storage.MetaStore`.  The
        front tier opens it for the job table (:attr:`jobs` becomes a
        :class:`~repro.jobs.JobManager` at :meth:`start`), and every
        worker service opens the same file for its durable envelope
        store + recorded history (WAL mode keeps the single-writer-per-
        process discipline safe across processes).  A restarted cluster
        re-queues stale RUNNING jobs and re-warms worker caches from
        disk instead of recomputing.  ``None`` (default) disables
        durability.
    hedge_requests:
        Keys mode only: fire a backup ``explain`` to the next replica
        when the primary worker has not answered within a p99-derived
        hedge delay; first response wins.  Tames tail latency when one
        worker is busy with a cold query.  (Keys-mode replicas can all
        answer any key — the backup just pays a cache miss at worst.)
    hedge_min_seconds:
        Floor of the hedge delay — never hedge faster than this.
    hedge_p99_multiplier:
        The hedge delay is ``max(hedge_min_seconds, multiplier * p99)``
        over a sliding window of recent explain latencies; hedging stays
        dormant until enough samples (20) accumulate.
    """

    def __init__(self, n_workers: int = 2,
                 service_kwargs: Optional[Dict[str, Any]] = None,
                 start_method: Optional[str] = None,
                 request_timeout: float = 600.0,
                 restart_warm_top: int = 8,
                 history_size: int = 1024,
                 shard: str = "keys",
                 frame_store: Optional[bool] = None,
                 store_path: Optional[Union[str, Path]] = None,
                 hedge_requests: bool = False,
                 hedge_min_seconds: float = 0.05,
                 hedge_p99_multiplier: float = 1.5):
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        if shard not in ("keys", "rows"):
            raise ConfigurationError(
                f"shard must be 'keys' or 'rows', got {shard!r}")
        import multiprocessing

        available = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in available else "spawn"
        if start_method not in ("fork", "spawn"):
            raise ConfigurationError(
                f"start_method must be 'fork' or 'spawn', got {start_method!r}")
        self._mp = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self.n_workers = n_workers
        self.shard = shard
        #: Rows mode only: the parent-process service and its shard pool.
        self._service: Optional[ExplanationService] = None
        self._pool = None
        from repro.shm import shm_available

        if frame_store is None:
            frame_store = n_workers > 1
        #: Whether this cluster shares data through :mod:`repro.shm`.
        #: Requested-but-unavailable degrades to the copy path silently —
        #: the serving contract is identical, only the memory profile
        #: differs.
        self.frame_store_enabled = bool(frame_store) and shm_available()
        #: Owner-side segment registry (lazily built at start).
        self._store = None
        #: Keys mode: the per-dataset table manifests shipped to workers.
        self._table_manifests: Dict[str, Any] = {}
        #: Keys mode: published hot-context frame manifests, keyed by
        #: ``(dataset, frame key)``; re-broadcast to restarted workers.
        self._frame_manifests: Dict[Tuple[str, Tuple], Any] = {}
        #: Epoch component of frame generations: bumped by
        #: :meth:`clear_cache`, so a retired generation still draining its
        #: readers never collides with freshly published frames.
        self._frame_epoch = 0
        #: Keys mode: parent-side reference contexts used to encode hot
        #: frames exactly once per box (one per dataset, built lazily).
        self._ref_contexts: Dict[str, Any] = {}
        self.request_timeout = request_timeout
        self.restart_warm_top = restart_warm_top
        self.history_size = history_size
        self.store_path = str(store_path) if store_path is not None else None
        #: Front-tier metastore handle (jobs + crash-recovery epoch); the
        #: workers open the same file themselves via ``service_kwargs``.
        self._meta: Optional[MetaStore] = None
        #: The cluster's :class:`~repro.jobs.JobManager` (built at start
        #: when ``store_path`` is set).
        self.jobs = None
        self.hedge_requests = hedge_requests and shard == "keys"
        self.hedge_min_seconds = hedge_min_seconds
        self.hedge_p99_multiplier = hedge_p99_multiplier
        #: Sliding window of recent keys-mode explain dispatch latencies,
        #: feeding the p99-derived hedge delay.
        self._latencies: "deque[float]" = deque(maxlen=512)
        self._hedge_pool: Optional[ThreadPoolExecutor] = None
        self.hedge_fired = 0
        self.hedge_won = 0
        #: Keys mode: the live shm generation of each dataset's published
        #: table — starts at ``("table", name)``, appends mint successors
        #: so the retired generation can drain readers without colliding.
        self._table_generations: Dict[str, Tuple] = {}
        self._table_epoch = 0
        self.service_kwargs = dict({"coalesce_window_seconds": 0.0},
                                   **(service_kwargs or {}))
        if self.store_path is not None:
            self.service_kwargs.setdefault("store", self.store_path)
        self._specs: List[DatasetSpec] = []
        self._handles: List[_WorkerHandle] = []
        self._lock = threading.Lock()
        #: Monotonic observability folded in from dead workers' last known
        #: snapshots, so the merged lifetime counters in :meth:`stats` do
        #: not deflate when a worker is restarted with fresh (zeroed)
        #: counters.  Point-in-time values (cache sizes, occupancy) are
        #: deliberately *not* kept — they die with the process, exactly as
        #: the replacement worker reports.
        self._stats_base: Dict[str, Any] = {
            "contexts": {}, "cache": {}, "negative_cache": {}, "metrics": []}
        self._inflight: Dict[Tuple, Future] = {}
        #: Front-tier request history per dataset: routing key -> [query, k,
        #: hits]; feeds the post-restart re-warm of a worker's key range.
        self._history: Dict[str, "Dict[Tuple, List]"] = {}
        self._started = False
        self._closed = False
        self.requests_routed = 0
        self.requests_deduplicated = 0
        self.worker_restarts = 0
        self.request_retries = 0
        self.dataset_updates = 0
        #: The most recent post-restart warmer thread (join in tests).
        self.last_restart_warmer: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # registration and lifecycle
    # ------------------------------------------------------------------ #
    def register_dataset(self, name: str, table, knowledge_graph=None,
                         extraction_specs: Sequence = (),
                         config: Optional[MESAConfig] = None,
                         warm: bool = True) -> DatasetSpec:
        """Record (and, once started, broadcast) a dataset to serve."""
        if any(spec.name == name for spec in self._specs):
            raise ConfigurationError(f"dataset {name!r} is already registered")
        spec = DatasetSpec(name=name, table=table,
                           knowledge_graph=knowledge_graph,
                           extraction_specs=tuple(extraction_specs),
                           config=config, warm=warm)
        # Append before broadcasting: a worker that dies mid-broadcast is
        # respawned from the spec list and therefore still learns the
        # dataset (the worker-side op is idempotent for exactly this case).
        self._specs.append(spec)
        self._history.setdefault(name, {})
        if self._started:
            if self._service is not None:
                self._register_rows(spec)
            else:
                payload = self._worker_spec(spec) if self._store is not None \
                    else spec
                for handle in self._handles:
                    self._dispatch(handle.index, "register", payload)
                    if self._store is not None:
                        self._store.attach_reader(
                            self._table_generation(name), handle.index)
        return spec

    def _table_generation(self, name: str) -> Tuple:
        """The live shm generation key of a dataset's published table."""
        return self._table_generations.get(name, ("table", name))

    def register_bundle(self, bundle, config: Optional[MESAConfig] = None,
                        warm: bool = True) -> DatasetSpec:
        """Register a :class:`~repro.datasets.registry.DatasetBundle`."""
        if config is None:
            config = MESAConfig(excluded_columns=tuple(bundle.id_columns))
        return self.register_dataset(
            bundle.name, bundle.table, bundle.knowledge_graph,
            bundle.extraction_specs, config=config, warm=warm)

    def start(self) -> "ServiceCluster":
        """Spawn the worker processes and wait until all serve (idempotent).

        Workers build their services — including the registration warm-up
        of every dataset's cross-query artefacts — concurrently; start
        returns once each has answered a ping, so the first real request
        never queues behind worker initialisation.
        """
        if self._started:
            return self
        if self._closed:
            raise ConfigurationError("ServiceCluster is closed")
        if not self._specs:
            raise ConfigurationError(
                "register at least one dataset before starting the cluster")
        if self.frame_store_enabled:
            from repro.shm import FrameStore

            self._store = FrameStore()
        if self.store_path is not None and self._meta is None:
            # Open before the workers spawn: the schema is created once,
            # and this handle's owner epoch is the one stale RUNNING jobs
            # are recovered against.
            self._meta = MetaStore(self.store_path)
        if self.shard == "rows":
            from repro.distributed.coordinator import ShardPool

            # Rows mode inverts the topology: ONE service in this process
            # owns the engine control plane (caches, batcher, search), and
            # the N workers are row shards of the data plane — each holds
            # O(rows / N) column slices and answers partial-count, permuted
            # -count and IRLS-partial requests.  The engine's intra-batch
            # fan-out must stay on threads (thread workers share the pool's
            # pipes; a forked engine process would not).  With the frame
            # store the pool publishes each context column once and ships
            # O(1) refs; shards attach their row-range as views.
            self._service = ExplanationService(**self.service_kwargs)
            self._pool = ShardPool(n_shards=self.n_workers,
                                   start_method=self.start_method,
                                   request_timeout=self.request_timeout,
                                   frame_store=self._store)
            self._pool.start()
            for spec in self._specs:
                self._register_rows(spec)
            self._started = True
            self._start_jobs()
            return self
        self._handles = [self._spawn_worker(index)
                         for index in range(self.n_workers)]
        for handle in self._handles:
            self._request(handle, "ping", None)
        self._started = True
        self._start_jobs()
        return self

    def _start_jobs(self) -> None:
        """Attach the job manager once the cluster serves (and recover)."""
        if self._meta is None or self.jobs is not None:
            return
        from repro.jobs import JobManager  # deferred: avoids an import cycle

        self.jobs = JobManager(self._meta, self)

    def _register_rows(self, spec: DatasetSpec) -> None:
        """Register one dataset on the rows-mode service + data plane.

        The pool attaches to the pipeline context *before* any warm-up
        query runs, so even the very first explanation scatter-gathers.
        """
        pipeline = self._service.register_dataset(
            spec.name, spec.table, spec.knowledge_graph,
            spec.extraction_specs, config=_worker_safe_config(spec.config),
            warm=False)
        pipeline.context.shard_pool = self._pool
        pipeline.context.shard_label = spec.name
        if spec.warm:
            self._service.warm(spec.name)

    def _worker_spec(self, spec: DatasetSpec) -> DatasetSpec:
        """The spec a worker receives: manifest-backed when the store is on."""
        if self._store is None:
            return spec
        manifest = self._table_manifests.get(spec.name)
        if manifest is None:
            manifest = self._store.put_table(
                self._table_generation(spec.name), spec.name, spec.table)
            self._table_manifests[spec.name] = manifest
        return replace(spec, table=None, manifest=manifest)

    def _specs_payload(self) -> Tuple[Any, Optional[int]]:
        """What crosses into a fresh worker, and how.

        Frame store on: manifest-backed specs (tiny pickles, workers
        attach views).  Fork with the store off: a one-shot token — the
        tables cross by copy-on-write inheritance, never pickled.  Spawn
        with the store off: the classic full-spec pickle.
        """
        if self._store is not None:
            return [self._worker_spec(spec) for spec in self._specs], None
        if self.start_method == "fork":
            token = next(_fork_spec_tokens)
            _FORK_SPECS[token] = list(self._specs)
            return _ForkInheritedSpecs(token), token
        return list(self._specs), None

    def _spawn_worker(self, index: int) -> _WorkerHandle:
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        specs_payload, fork_token = self._specs_payload()
        process = self._mp.Process(
            target=_cluster_worker_main,
            args=(child_conn, specs_payload, self.service_kwargs),
            name=f"repro-serving-worker-{index}", daemon=True)
        try:
            process.start()
        finally:
            if fork_token is not None:
                # The child holds its inherited copy; the parent's stash
                # entry has done its job.
                _FORK_SPECS.pop(fork_token, None)
        child_conn.close()  # the parent keeps only its end
        if self._store is not None:
            for spec in self._specs:
                self._store.attach_reader(self._table_generation(spec.name),
                                          index)
        return _WorkerHandle(index=index, process=process, conn=parent_conn)

    def close(self) -> None:
        """Shut every worker down (gracefully, then firmly).

        The graceful half waits only briefly for each worker's pipe lock —
        a worker mid-way through a long explanation holds it for the whole
        engine run, and shutdown must not stall behind request traffic; an
        unreachable worker is simply terminated below.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._handles)
        if self.jobs is not None:
            # Checkpoint first: an in-flight RUNNING job flips back to
            # PENDING so a restart against the same store resumes it.
            self.jobs.close(checkpoint=True)
        if self._service is not None:
            self._service.close()
        if self._pool is not None:
            self._pool.close()
        if self._hedge_pool is not None:
            self._hedge_pool.shutdown(wait=False)
        for handle in handles:
            if not handle.lock.acquire(timeout=2.0):
                continue  # busy worker: skip graceful, terminate below
            try:
                handle.conn.send(("shutdown", None))
                handle.conn.poll(2.0)
            except (OSError, ValueError, BrokenPipeError):
                pass
            finally:
                handle.lock.release()
        for handle in handles:
            if handle.process is not None:
                handle.process.join(timeout=5.0)
                if handle.process.is_alive():  # pragma: no cover - stuck worker
                    handle.process.terminate()
                    handle.process.join(timeout=2.0)
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        if self._store is not None:
            # After the workers are down: force-unlink every shared
            # segment so /dev/shm is clean the moment the owner returns.
            self._store.close()
        if self._meta is not None:
            self._meta.flush()
            self._meta.close()

    def __enter__(self) -> "ServiceCluster":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    @staticmethod
    def routing_key(dataset: str, query: AggregateQuery,
                    k: Optional[int]) -> Tuple:
        """The front-tier canonical key a request is routed (and deduped) by.

        The dataset-version component is deliberately absent: versions
        live in the workers (the front tier owns no caches to invalidate),
        and routing must not move a key between shards when a version
        bumps — that would cool every cache the bump did not invalidate.
        """
        return ExplanationService.query_key(dataset, query, k)[:-1]

    def _resolve_k(self, dataset: str, k: Optional[int]) -> Optional[int]:
        """The explanation-size budget a worker will actually apply.

        Resolving ``k`` *before* routing means a request with ``k``
        omitted and the same request with ``k`` equal to the dataset's
        configured default share one shard, one in-flight execution and
        one worker cache entry — exactly as they share one canonical key
        inside a worker's service.  Unknown datasets pass through; the
        worker answers with its own ``DatasetNotRegisteredError``.
        """
        if k is not None:
            return k
        for spec in self._specs:
            if spec.name == dataset:
                return (spec.config or MESAConfig()).k
        return None

    def worker_index(self, key: Tuple) -> int:
        """Deterministic shard of a routing key (stable across processes)."""
        return stable_key_digest(key) % self.n_workers

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def explain(self, dataset: str, query: AggregateQuery,
                k: Optional[int] = None) -> ServedExplanation:
        """Serve one explanation from the key's worker (deduped in flight)."""
        self._ensure_serving()
        if self._service is not None:
            # Rows mode: the parent-process service owns dedup, caching and
            # coalescing; the data plane underneath it is already sharded.
            with self._lock:
                self.requests_routed += 1
            return self._service.explain(dataset, query, k=k)
        k = self._resolve_k(dataset, k)
        key = self.routing_key(dataset, query, k)
        with self._lock:
            self.requests_routed += 1
            self._record_history(dataset, key, query, k)
            existing = self._inflight.get(key)
            if existing is None:
                future: Future = Future()
                self._inflight[key] = future
        if existing is not None:
            with self._lock:
                self.requests_deduplicated += 1
            served = existing.result()
            return ServedExplanation(dataset=served.dataset,
                                     envelope=served.envelope,
                                     cache_hit=served.cache_hit,
                                     coalesced=True)
        try:
            envelope_json, cache_hit, coalesced = self._dispatch_explain(
                self.worker_index(key), dataset, query, k)
            served = ServedExplanation(
                dataset=dataset,
                envelope=ExplanationEnvelope.from_json(envelope_json),
                cache_hit=cache_hit, coalesced=coalesced)
        except BaseException as error:
            future.set_exception(error)
            with self._lock:
                self._inflight.pop(key, None)
            # The future's exception was consumed by set_exception; waiters
            # re-raise it, and so do we.
            raise
        future.set_result(served)
        with self._lock:
            self._inflight.pop(key, None)
        return served

    def _hedge_delay(self) -> Optional[float]:
        """Seconds to wait before firing a backup request, or ``None``.

        Derived from the observed p99 of primary latencies so hedges fire
        only on genuine stragglers (~1% of requests), never on the normal
        case.  Requires enough samples for the tail estimate to mean
        anything; until then every request runs unhedged and feeds the
        window.
        """
        if not self.hedge_requests or self.n_workers < 2:
            return None
        with self._lock:
            if len(self._latencies) < 20:
                return None
            ordered = sorted(self._latencies)
        p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
        return max(self.hedge_min_seconds,
                   self.hedge_p99_multiplier * p99)

    def _dispatch_explain(self, index: int, dataset: str,
                          query: AggregateQuery, k: Optional[int]):
        """One explain round-trip, hedged against stragglers when enabled.

        The primary runs on the key's own worker; if it has not answered
        within the p99-derived delay a single backup fires at the *next*
        worker (replicas hold full dataset copies in keys mode, so any
        worker can answer — but each worker's pipe is serialised, so the
        backup must not queue behind the very straggler it is hedging).
        First response wins; the loser is left to finish on its pipe and
        its result is discarded.  Both failing re-raises the primary's
        error.
        """
        payload = (dataset, query, k)
        delay = self._hedge_delay()
        started = time.monotonic()
        try:
            if delay is None:
                return self._dispatch(index, "explain", payload)
            if self._hedge_pool is None:
                with self._lock:
                    if self._hedge_pool is None:
                        self._hedge_pool = ThreadPoolExecutor(
                            max_workers=max(2, self.n_workers),
                            thread_name_prefix="repro-hedge")
            primary = self._hedge_pool.submit(
                self._dispatch, index, "explain", payload)
            try:
                return primary.result(timeout=delay)
            except FuturesTimeoutError:
                pass
            with self._lock:
                self.hedge_fired += 1
            backup = self._hedge_pool.submit(
                self._dispatch, (index + 1) % self.n_workers,
                "explain", payload)
            pending = {primary, backup}
            while pending:
                done, pending = futures_wait(
                    pending, return_when=FIRST_COMPLETED)
                for future in done:
                    if future.exception() is None:
                        if future is backup:
                            with self._lock:
                                self.hedge_won += 1
                        return future.result()
            return primary.result()  # both failed: primary's error
        finally:
            with self._lock:
                self._latencies.append(time.monotonic() - started)

    def explain_batch(self, dataset: str, queries: Sequence[AggregateQuery],
                      k: Optional[int] = None) -> List[ServedExplanation]:
        """Serve a batch: shard, dedupe, fan sub-batches out, reassemble."""
        self._ensure_serving()
        if self._service is not None:
            with self._lock:
                self.requests_routed += len(queries)
            return self._service.explain_batch(dataset, queries, k=k)
        k = self._resolve_k(dataset, k)
        keys: List[Tuple] = []
        owned: Dict[Tuple, Future] = {}
        joined: Dict[Tuple, Future] = {}
        owned_queries: Dict[Tuple, AggregateQuery] = {}
        with self._lock:
            for query in queries:
                key = self.routing_key(dataset, query, k)
                keys.append(key)
                self.requests_routed += 1
                self._record_history(dataset, key, query, k)
                if key in owned or key in joined:
                    self.requests_deduplicated += 1
                    continue
                existing = self._inflight.get(key)
                if existing is not None:
                    self.requests_deduplicated += 1
                    joined[key] = existing
                else:
                    future = Future()
                    self._inflight[key] = future
                    owned[key] = future
                    owned_queries[key] = query
        shards: Dict[int, List[Tuple]] = {}
        for key in owned:
            shards.setdefault(self.worker_index(key), []).append(key)

        def run_shard(index: int, shard_keys: List[Tuple]) -> None:
            shard_queries = [owned_queries[key] for key in shard_keys]
            try:
                blob, flags = self._dispatch(
                    index, "explain_batch", (dataset, shard_queries, k))
                envelopes = [ExplanationEnvelope.from_dict(envelope_dict)
                             for envelope_dict in json.loads(blob)]
            except BaseException as error:
                with self._lock:
                    for key in shard_keys:
                        self._inflight.pop(key, None)
                for key in shard_keys:
                    owned[key].set_exception(error)
                return
            with self._lock:
                for key in shard_keys:
                    self._inflight.pop(key, None)
            for key, envelope, (cache_hit, coalesced) in zip(
                    shard_keys, envelopes, flags):
                owned[key].set_result(ServedExplanation(
                    dataset=dataset, envelope=envelope,
                    cache_hit=cache_hit, coalesced=coalesced))

        if shards:
            with ThreadPoolExecutor(max_workers=len(shards)) as executor:
                for index, shard_keys in shards.items():
                    executor.submit(run_shard, index, shard_keys)
        served: List[ServedExplanation] = []
        first_of: Dict[Tuple, int] = {}
        for position, key in enumerate(keys):
            future = owned.get(key) or joined[key]
            result = future.result()
            duplicate = key in first_of or key in joined
            first_of.setdefault(key, position)
            if duplicate:
                result = ServedExplanation(
                    dataset=result.dataset, envelope=result.envelope,
                    cache_hit=result.cache_hit, coalesced=True)
            served.append(result)
        return served

    # ------------------------------------------------------------------ #
    # broadcast operations
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        """Merged observability: summed counters + per-worker breakdown.

        Every worker entry carries its ``role`` — ``"replica"`` (keys mode:
        a full service over a complete dataset copy) or ``"row-shard"``
        (rows mode: a data-plane worker holding ``O(rows / N)`` column
        slices) — and its resident row count, so capacity planning can read
        the memory topology straight off ``/stats``.
        """
        self._ensure_serving()
        if self._service is not None:
            snapshot = self._service.stats()
            pool_stats = self._pool.stats()
            with self._lock:
                front = {
                    "n_workers": self.n_workers,
                    "start_method": self.start_method,
                    "shard": "rows",
                    "workers_alive": self._pool.alive_workers(),
                    "requests_routed": self.requests_routed,
                    "dataset_updates": self.dataset_updates,
                    "worker_restarts": pool_stats["pool"]["worker_restarts"],
                    "request_retries": pool_stats["pool"]["request_retries"],
                    "data_plane": pool_stats["pool"],
                }
            merged = {
                "mode": "cluster",
                "shard": "rows",
                "datasets": sorted(spec.name for spec in self._specs),
                "cluster": front,
                "cache": snapshot["cache"],
                "negative_cache": snapshot["negative_cache"],
                "contexts": snapshot["contexts"],
                "metrics": snapshot.get("metrics", []),
                "tracing": snapshot.get("tracing", {}),
                "frame_store": self._frame_store_stats(),
                "workers": pool_stats["workers"],
            }
            if "envelope_store" in snapshot:
                merged["envelope_store"] = snapshot["envelope_store"]
            if self.jobs is not None:
                merged["jobs"] = self.jobs.stats()
            return merged

        def probe(handle: _WorkerHandle) -> Dict[str, Any]:
            # A worker busy with a long cold explanation holds its pipe
            # lock for the whole round-trip; observability must answer
            # *now*, so wait briefly and fall back to the worker's last
            # known snapshot (marked stale) instead of queueing behind the
            # request.  Abandoning a sent request mid-pipe is not an
            # option — it would desynchronise the request/response framing
            # — hence the bounded wait happens on the lock, before
            # sending.  Probes run concurrently so the stall is ~2s total,
            # not 2s per busy worker.
            if not handle.lock.acquire(timeout=2.0):
                stale = dict(handle.last_stats or {})
                stale["stale"] = True
                return stale
            try:
                snapshot = self._request_locked(handle, "stats", None)
                handle.last_stats = snapshot
                return snapshot
            except Exception as error:
                return {"error": f"{type(error).__name__}: {error}"}
            finally:
                handle.lock.release()

        with ThreadPoolExecutor(max_workers=len(self._handles)) as executor:
            snapshots = list(executor.map(probe, self._handles))
        workers: Dict[str, Any] = {
            str(handle.index): snapshot
            for handle, snapshot in zip(self._handles, snapshots)}
        # Seed the merge from the retained base of dead workers' counters:
        # a restarted worker reports zeroed tallies, and without the base
        # the merged lifetime counters would move backwards.
        with self._lock:
            base = copy.deepcopy(self._stats_base)
        merged_contexts: Dict[str, Dict[str, Any]] = {}
        cache = {"size": 0, "hits": 0, "misses": 0, "by_dataset": {},
                 "by_worker": {}}
        negative = {"size": 0, "hits": 0, "misses": 0, "by_dataset": {},
                    "by_worker": {}}
        metric_states: List[List[Dict[str, Any]]] = [base.get("metrics", [])]
        for worker_id, snapshot in [(None, base)] + list(workers.items()):
            if "error" in snapshot:
                continue
            for name, context in snapshot.get("contexts", {}).items():
                merged = merged_contexts.setdefault(
                    name, {"counters": {}, "stage_seconds": {},
                           "dataset_version": 0})
                for counter, value in context.get("counters", {}).items():
                    merged["counters"][counter] = \
                        merged["counters"].get(counter, 0) + value
                for stage, seconds in context.get("stage_seconds", {}).items():
                    merged["stage_seconds"][stage] = round(
                        merged["stage_seconds"].get(stage, 0.0) + seconds, 6)
                merged["dataset_version"] = max(
                    merged["dataset_version"],
                    context.get("dataset_version", 0))
            for view, merged_view in ((snapshot.get("cache", {}), cache),
                                      (snapshot.get("negative_cache", {}),
                                       negative)):
                for field_name in ("size", "hits", "misses", "evictions",
                                   "expirations", "sweeps"):
                    if field_name in view or field_name in merged_view:
                        merged_view[field_name] = \
                            merged_view.get(field_name, 0) + \
                            view.get(field_name, 0)
                for name, size in view.get("by_dataset", {}).items():
                    merged_view["by_dataset"][name] = \
                        merged_view["by_dataset"].get(name, 0) + size
                if worker_id is not None:
                    merged_view["by_worker"][worker_id] = view.get("size", 0)
            if worker_id is not None and snapshot.get("metrics"):
                metric_states.append(snapshot["metrics"])
        merged_metrics = merge_metric_states(metric_states)
        with self._lock:
            front = {
                "n_workers": self.n_workers,
                "start_method": self.start_method,
                "workers_alive": sum(handle.alive()
                                     for handle in self._handles),
                "requests_routed": self.requests_routed,
                "requests_deduplicated": self.requests_deduplicated,
                "worker_restarts": self.worker_restarts,
                "request_retries": self.request_retries,
                "dataset_updates": self.dataset_updates,
                "hedge_requests": self.hedge_requests,
                "hedge_fired": self.hedge_fired,
                "hedge_won": self.hedge_won,
                "inflight": len(self._inflight),
            }
        merged = {
            "mode": "cluster",
            "shard": "keys",
            "datasets": sorted(spec.name for spec in self._specs),
            "cluster": front,
            "cache": cache,
            "negative_cache": negative,
            "contexts": merged_contexts,
            "metrics": merged_metrics,
            "frame_store": self._frame_store_stats(),
            "workers": workers,
        }
        if self.jobs is not None:
            merged["jobs"] = self.jobs.stats()
        return merged

    def _frame_store_stats(self) -> Dict[str, Any]:
        """Owner-side segment registry totals for ``/stats`` and gauges."""
        block: Dict[str, Any] = {"enabled": self.frame_store_enabled}
        if self._store is not None:
            block.update(self._store.stats())
        return block

    def warm(self, dataset: str, queries: Optional[Sequence] = None,
             top: int = 8) -> int:
        """Warm every worker (artefacts + replay); returns total replayed.

        With explicit ``queries`` each is replayed only on the worker its
        key routes to — warming a worker with keys it will never serve
        would just evict its useful entries; with ``queries=None`` each
        worker replays the top of its *own* recorded history.  Routing
        resolves ``k`` exactly as :meth:`explain` does, so the warmed
        shard is the shard live traffic will hit.

        With the frame store on, the hot contexts behind the warmed
        queries are encoded **once, here in the owner**, published as
        shared read-only code arrays and adopted by every worker — the
        replay below then runs against pre-encoded frames instead of
        re-factorising the same columns in every process.
        """
        self._ensure_serving()
        if self._service is not None:
            return self._service.warm(dataset, queries=queries, top=top)
        if self._store is not None:
            self._publish_hot_frames(dataset, queries)
        resolved_k = self._resolve_k(dataset, None)
        total = 0
        for handle in self._handles:
            if queries is not None:
                routed = [query for query in queries
                          if self.worker_index(self.routing_key(
                              dataset, query, resolved_k)) == handle.index]
            else:
                routed = None
            total += int(self._dispatch(handle.index, "warm",
                                        (dataset, routed, top)) or 0)
        return total

    def _publish_hot_frames(self, dataset: str,
                            queries: Optional[Sequence]) -> None:
        """Encode the warm set's context frames once and broadcast them.

        ``queries=None`` falls back to the front tier's recorded history
        for the dataset — the same hot set the workers are about to
        replay.  Publication is idempotent per (dataset, frame identity):
        a second warm pass re-broadcasts existing manifests (restarted
        workers need them) without re-encoding or re-publishing segments.
        """
        spec = next((one for one in self._specs if one.name == dataset), None)
        if spec is None:
            return
        if queries is None:
            with self._lock:
                history = list(self._history.get(dataset, {}).values())
            queries = [entry[0] for entry in history]
        if not queries:
            return
        config = _worker_safe_config(spec.config)
        hops, n_bins = config.hops, config.n_bins
        from repro.table.expressions import canonical_predicate_key

        published: List[Tuple[Tuple, Any]] = []
        for query in queries:
            frame_key = (hops, n_bins,
                         canonical_predicate_key(query.context))
            manifest = self._frame_manifests.get((dataset, frame_key))
            if manifest is None:
                context = self._ref_context(spec)
                context_table, frame = context.context_frame(
                    query.context, hops=hops, n_bins=n_bins)
                # Encode every column the engine can ask for up front, so
                # workers never fall back to a local factorise for one the
                # published frame happens not to carry.  Excluded columns
                # are the exception — the engine never factorises them
                # (and on wide tables they are the bulk of the schema), so
                # publishing their codes would cost shm bytes and warm
                # time for arrays nobody reads.  An adopted frame still
                # encodes any unpublished column lazily from its table
                # views, so this is a size choice, not a correctness one.
                excluded = set(config.excluded_columns or ())
                names = [name for name in context_table.column_names
                         if name not in excluded]
                for name in names:
                    frame.codes(name)
                manifest = self._store.put_frame(
                    ("frames", dataset, self._frame_epoch), dataset,
                    frame_key, frame, names)
                self._frame_manifests[(dataset, frame_key)] = manifest
            published.append((frame_key, manifest))
        seen = set()
        for frame_key, manifest in published:
            if frame_key in seen:
                continue
            seen.add(frame_key)
            for handle in self._handles:
                self._dispatch(handle.index, "adopt_frame",
                               (dataset, manifest))
                self._store.attach_reader(
                    ("frames", dataset, self._frame_epoch), handle.index)

    def _ref_context(self, spec: DatasetSpec):
        """The owner's reference context for ``spec`` (lazily built).

        One :class:`~repro.engine.context.PipelineContext` per dataset,
        sharing the spec's table the front tier already holds; it exists
        so hot frames are encoded exactly once per box.
        """
        context = self._ref_contexts.get(spec.name)
        if context is None:
            from repro.engine.context import PipelineContext

            context = PipelineContext(spec.table, spec.knowledge_graph,
                                      spec.extraction_specs)
            self._ref_contexts[spec.name] = context
        return context

    def clear_cache(self) -> None:
        """Invalidate every cache layer on every worker, coherently.

        A worker found dead here is restarted — its replacement starts
        with empty caches, which *is* the invalidated state.
        """
        self._ensure_serving()
        if self._service is not None:
            # The version bump ages the shard contexts out of the pool's
            # LRU on its own; dropping them now frees worker memory
            # immediately instead of at eviction time.
            self._service.clear_cache()
            self._pool.drop_all_contexts()
            return
        for handle in self._handles:
            self._dispatch(handle.index, "clear_cache", None)
        if self._store is not None:
            self._retire_frame_generation()

    def _retire_frame_generation(self) -> None:
        """Retire every published frame generation (refcounted unlink).

        The version bump the workers just performed dropped their adoption
        maps; what remains is the segment lifecycle.  Each worker releases
        its attachments (the ack detaches it as a reader), the epoch
        advances so future publications never collide with a generation
        still draining, and the store unlinks as readers hit zero —
        ``/dev/shm`` is freed even though late readers finish on their old
        (still mapped) views.
        """
        with self._lock:
            manifests = list(self._frame_manifests.values())
            self._frame_manifests.clear()
            epoch = self._frame_epoch
            self._frame_epoch += 1
        segments = sorted({segment for manifest in manifests
                           for segment in manifest.segments})
        frame_generations = [key for key in self._store.generations()
                             if key[0] == "frames" and key[-1] <= epoch]
        for handle in self._handles:
            try:
                self._dispatch(handle.index, "release_segments", segments)
            except WorkerFaultError:  # pragma: no cover - release is total
                pass
            for generation in frame_generations:
                self._store.detach_reader(generation, handle.index)
        for generation in frame_generations:
            self._store.retire(generation)
        # The owner's reference frames hold the published arrays alive via
        # its own cache; drop them with the generation.
        for context in self._ref_contexts.values():
            context.bump_dataset_version()

    # ------------------------------------------------------------------ #
    # live dataset updates
    # ------------------------------------------------------------------ #
    def _merged_table(self, spec: DatasetSpec, rows: Sequence[Mapping]):
        """The deterministic merge every tier agrees on.

        Built exactly as :meth:`ExplanationService.append_rows` builds it
        (same column order, same row order), so a copy-mode worker
        rebuilding the merge from the raw rows and the front tier merging
        locally produce identical tables — and identical envelopes.
        """
        base = spec.table
        appended = Table.from_rows(list(rows),
                                   columns=list(base.column_names),
                                   name=base.name)
        return base.concat_rows(appended)

    def append_rows(self, dataset: str, rows: Sequence[Mapping],
                    rewarm: bool = True, top: int = 8) -> Dict[str, Any]:
        """Append rows to a served dataset, invalidating coherently.

        Rows mode: the parent-process service swaps its pipeline and the
        shard pool re-partitions on first touch (the version bump ages the
        old shard contexts out; dropping them now frees worker memory
        immediately).  Keys mode with the frame store: the owner publishes
        the merged table as a *new* shm generation, workers re-attach
        zero-copy, and the old generation (plus every published hot-frame
        generation — their encodings cover the old rows) drains to the
        unlink.  Keys copy mode: every replica rebuilds the identical
        merged table from the broadcast rows.

        Afterwards the dataset's top recorded queries re-warm in the
        background — as a durable job when the cluster has a store
        (visible and resumable via ``/jobs``), else a plain thread.
        """
        self._ensure_serving()
        rows = [dict(row) for row in rows]
        if not rows:
            raise QueryError("append_rows requires at least one row")
        position = next((index for index, spec in enumerate(self._specs)
                         if spec.name == dataset), None)
        if position is None:
            raise DatasetNotRegisteredError(
                f"dataset {dataset!r} is not registered")
        spec = self._specs[position]
        if self._service is not None:
            result = self._service.append_rows(dataset, rows, rewarm=False)
            self._pool.drop_all_contexts()
            self._specs[position] = replace(
                spec, table=self._service.pipeline(dataset).context.table)
        elif self._store is not None:
            merged = self._merged_table(spec, rows)
            with self._lock:
                self._table_epoch += 1
                new_generation = ("table", dataset, self._table_epoch)
            old_generation = self._table_generation(dataset)
            manifest = self._store.put_table(new_generation, dataset, merged)
            new_spec = replace(spec, table=merged)
            self._specs[position] = new_spec
            self._table_manifests[dataset] = manifest
            self._table_generations[dataset] = new_generation
            result = None
            worker_payload = replace(new_spec, table=None, manifest=manifest)
            for handle in self._handles:
                outcome = self._dispatch(handle.index, "update_dataset",
                                         worker_payload)
                self._store.attach_reader(new_generation, handle.index)
                result = result or outcome
            # Every published hot-frame generation encodes the *old* rows;
            # retire them all (workers re-encode lazily — `_adopt_frame`
            # falls back on any attach failure — and the next warm pass
            # republishes against the merged table).
            self._retire_frame_generation()
            self._ref_contexts.pop(dataset, None)
            for handle in self._handles:
                self._store.detach_reader(old_generation, handle.index)
            self._store.retire(old_generation)
            result = dict(result or {})
        else:
            result = None
            for handle in self._handles:
                outcome = self._dispatch(handle.index, "append_rows",
                                         (dataset, rows))
                result = result or outcome
            self._specs[position] = replace(
                spec, table=self._merged_table(spec, rows))
            result = dict(result or {})
        with self._lock:
            self.dataset_updates += 1
        result = dict(result)
        result["appended"] = len(rows)
        rewarm_job = None
        if rewarm:
            if self.jobs is not None:
                rewarm_job = self.jobs.submit(dataset, kind="warm", top=top)
            else:
                threading.Thread(
                    target=lambda: self.warm(dataset, top=top),
                    name=f"repro-rewarm-{dataset}", daemon=True).start()
        result["rewarm_job"] = rewarm_job
        return result

    def datasets(self) -> List[str]:
        """Names of the registered datasets, sorted."""
        return sorted(spec.name for spec in self._specs)

    def health(self) -> Dict[str, Any]:
        """Cluster liveness: degraded while any worker process is down.

        Uses the cheap non-blocking process check — a ping would queue
        behind an in-progress explanation and stall the probe.
        """
        with self._lock:
            handles = list(self._handles)
            closed = self._closed
        if self._pool is not None:
            alive = 0 if closed else self._pool.alive_workers()
            if closed or not self._started:
                status = "down"
            elif alive == self.n_workers:
                status = "ok"
            else:
                status = "degraded"
            return {
                "status": status,
                "datasets": sorted(spec.name for spec in self._specs),
                "mode": "cluster",
                "shard": "rows",
                "workers_alive": alive,
                "n_workers": self.n_workers,
            }
        worker_health = {
            str(handle.index): {"alive": handle.alive(),
                                "restarts": handle.restarts}
            for handle in handles}
        alive = sum(1 for one in worker_health.values() if one["alive"])
        if closed or not self._started:
            status = "down"
        elif alive == len(handles):
            status = "ok"
        else:
            status = "degraded"
        return {
            "status": status,
            "datasets": sorted(spec.name for spec in self._specs),
            "mode": "cluster",
            "workers_alive": alive,
            "n_workers": len(handles),
            "workers": worker_health,
        }

    # ------------------------------------------------------------------ #
    # internals: request transport, restart, history
    # ------------------------------------------------------------------ #
    def _ensure_serving(self) -> None:
        if not self._started:
            raise ConfigurationError("ServiceCluster.start() has not been called")
        if self._closed:
            raise ConfigurationError("ServiceCluster is closed")

    def _poll_reply(self, handle: _WorkerHandle, op: str) -> None:
        """Wait for a reply, failing fast when the worker process dies."""
        ipc.poll_reply(handle, op, self.request_timeout)

    def _request(self, handle: _WorkerHandle, op: str, payload) -> Any:
        """One request/response round-trip (raises worker-side errors)."""
        return ipc.request(handle, op, payload, self.request_timeout)

    def _request_locked(self, handle: _WorkerHandle, op: str, payload) -> Any:
        """The round-trip body; the caller must hold ``handle.lock``."""
        return ipc.request_locked(handle, op, payload, self.request_timeout)

    def _dispatch(self, index: int, op: str, payload) -> Any:
        """Route an op to a worker; on a dead worker, restart and retry once."""
        handle = self._handles[index]
        generation = handle.generation
        try:
            return self._request(handle, op, payload)
        except WorkerDiedError:
            self._restart_worker(index, observed_generation=generation)
            with self._lock:
                self.request_retries += 1
            return self._request(self._handles[index], op, payload)

    def _absorb_last_stats(self, snapshot: Optional[Dict[str, Any]]) -> None:
        """Fold a dead worker's last known snapshot into the stats base.

        Only monotonic lifetime tallies survive — context counters and
        stage seconds, cache hit/miss/eviction/expiration counts, and the
        counter/histogram entries of the worker's metrics registry.
        Point-in-time values (cache sizes, gauges) are dropped: the
        replacement process genuinely starts empty, and keeping a ghost
        occupancy would overstate capacity.  Caller must hold
        ``handle.lock`` (the restart path does); ``self._lock`` guards the
        base itself.
        """
        if not snapshot or "error" in snapshot:
            return
        with self._lock:
            base = self._stats_base
            for name, context in snapshot.get("contexts", {}).items():
                merged = base["contexts"].setdefault(
                    name, {"counters": {}, "stage_seconds": {},
                           "dataset_version": 0})
                for counter, value in context.get("counters", {}).items():
                    merged["counters"][counter] = \
                        merged["counters"].get(counter, 0) + value
                for stage, seconds in context.get("stage_seconds",
                                                  {}).items():
                    merged["stage_seconds"][stage] = round(
                        merged["stage_seconds"].get(stage, 0.0) + seconds, 6)
                merged["dataset_version"] = max(
                    merged["dataset_version"],
                    context.get("dataset_version", 0))
            for block in ("cache", "negative_cache"):
                view = snapshot.get(block, {})
                merged_view = base[block]
                for field_name in ("hits", "misses", "evictions",
                                   "expirations", "sweeps"):
                    if field_name in view or field_name in merged_view:
                        merged_view[field_name] = \
                            merged_view.get(field_name, 0) + \
                            view.get(field_name, 0)
            monotonic = [entry for entry in snapshot.get("metrics", [])
                         if entry.get("type") in ("counter", "histogram")]
            if monotonic:
                base["metrics"] = merge_metric_states(
                    [base["metrics"], monotonic])

    def _restart_worker(self, index: int, observed_generation: int) -> None:
        """Replace a dead worker's process (once per observed death).

        Before respawning, the dead worker's last known stats snapshot is
        folded into the front tier's base so merged lifetime counters stay
        monotonic across the restart (the fresh process reports zeros).
        """
        handle = self._handles[index]
        with handle.lock:
            if handle.generation != observed_generation:
                return  # another thread already replaced this process
            if self._closed:
                raise WorkerDiedError(
                    f"worker {index} died and the cluster is closed")
            self._absorb_last_stats(handle.last_stats)
            handle.last_stats = None
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            if handle.process is not None and handle.process.is_alive():
                handle.process.terminate()
            if handle.process is not None:
                handle.process.join(timeout=5.0)
            if self._store is not None:
                # The dead process can never ack a release; drop it from
                # every generation so retirements it was party to drain.
                # Before the respawn, which re-attaches it as a reader of
                # whatever it is about to receive.
                self._store.drop_reader(index)
            fresh = self._spawn_worker(index)
            handle.process = fresh.process
            handle.conn = fresh.conn
            handle.generation += 1
            handle.restarts += 1
            if self._store is not None:
                # Re-publish the current frame generation: adoption state
                # died with the process.
                with self._lock:
                    manifests = list(self._frame_manifests.items())
                    epoch = self._frame_epoch
                for (dataset, _frame_key), manifest in manifests:
                    self._request_locked(handle, "adopt_frame",
                                         (dataset, manifest))
                    self._store.attach_reader(("frames", dataset, epoch),
                                              index)
        with self._lock:
            self.worker_restarts += 1
        self._rewarm_worker(index)

    def _rewarm_worker(self, index: int) -> None:
        """Replay the restarted worker's hottest keys in the background."""
        if self.restart_warm_top < 1:
            return
        replay: List[Tuple[str, AggregateQuery, Optional[int]]] = []
        with self._lock:
            for dataset, history in self._history.items():
                mine = [(hits, dataset, query, k)
                        for key, (query, k, hits) in history.items()
                        if self.worker_index(key) == index]
                mine.sort(key=lambda entry: entry[0], reverse=True)
                replay.extend((dataset, query, k) for _, dataset, query, k
                              in mine[:self.restart_warm_top])
        if not replay:
            return

        def run_replay() -> None:
            for dataset, query, k in replay:
                try:
                    self.explain(dataset, query, k=k)
                except Exception:
                    continue

        thread = threading.Thread(target=run_replay, daemon=True,
                                  name=f"repro-cluster-rewarm-{index}")
        self.last_restart_warmer = thread
        thread.start()

    def _record_history(self, dataset: str, key: Tuple,
                        query: AggregateQuery, k: Optional[int]) -> None:
        """Caller must hold ``self._lock``."""
        history = self._history.setdefault(dataset, {})
        entry = history.get(key)
        if entry is None:
            if len(history) >= self.history_size:
                return  # full: keep the established hot set
            history[key] = [query, k, 1]
        else:
            entry[2] += 1


class ClusterClient(ExplanationClient):
    """The :class:`ExplanationClient` face of a :class:`ServiceCluster`.

    Starts the cluster if needed; ``close()`` shuts the workers down
    unless ``close_cluster=False`` (a cluster shared with other views).
    """

    def __init__(self, cluster: ServiceCluster, close_cluster: bool = True):
        self.cluster = cluster.start()
        self._close_cluster = close_cluster

    def explain(self, dataset: str, query: AggregateQuery,
                k: Optional[int] = None) -> ServedExplanation:
        return self.cluster.explain(dataset, query, k=k)

    def explain_batch(self, dataset: str, queries: Sequence[AggregateQuery],
                      k: Optional[int] = None) -> List[ServedExplanation]:
        return self.cluster.explain_batch(dataset, queries, k=k)

    def stats(self) -> Dict[str, Any]:
        return self.cluster.stats()

    def warm(self, dataset: str, queries: Optional[Sequence] = None,
             top: int = 8) -> int:
        return self.cluster.warm(dataset, queries=queries, top=top)

    def clear_cache(self) -> None:
        self.cluster.clear_cache()

    def health(self) -> Dict[str, Any]:
        return self.cluster.health()

    def datasets(self) -> List[str]:
        return self.cluster.datasets()

    def _jobs(self):
        if self.cluster.jobs is None:
            raise self._no_jobs()
        return self.cluster.jobs

    def submit_job(self, dataset: str, kind: str = "explain_batch",
                   queries: Optional[Sequence] = None,
                   k: Optional[int] = None, top: int = 8) -> str:
        return self._jobs().submit(dataset, kind=kind, queries=queries,
                                   k=k, top=top)

    def job_status(self, job_id: str,
                   include_result: bool = False) -> Dict[str, Any]:
        return self._jobs().status(job_id, include_result=include_result)

    def wait_job(self, job_id: str, timeout: Optional[float] = None,
                 poll_seconds: float = 0.02) -> Dict[str, Any]:
        return self._jobs().wait(job_id, timeout=timeout,
                                 poll_seconds=poll_seconds)

    def cancel_job(self, job_id: str) -> Dict[str, Any]:
        return self._jobs().cancel(job_id)

    def list_jobs(self, dataset: Optional[str] = None,
                  limit: int = 100) -> List[Dict[str, Any]]:
        return self._jobs().list_jobs(dataset, limit)

    def append_rows(self, dataset: str, rows: Sequence[Mapping],
                    rewarm: bool = True, top: int = 8) -> Dict[str, Any]:
        return self.cluster.append_rows(dataset, rows, rewarm=rewarm, top=top)

    def close(self) -> None:
        if self._close_cluster:
            self.cluster.close()
