"""Request/response schema of the JSON-over-HTTP serving API.

Requests are plain JSON objects parsed into small dataclasses with *strict*
validation — unknown fields, wrong types and malformed context clauses all
raise :class:`~repro.exceptions.RequestValidationError`, which the HTTP
front end maps to a 400 response listing every problem found.  Responses
reuse the engine's canonical envelope JSON
(:meth:`~repro.engine.envelope.ExplanationEnvelope.to_dict`) wrapped in a
thin metadata layer (dataset, cache verdict).

A query can be stated either as the paper's SQL form (``"sql": "SELECT
Country, avg(Salary) FROM SO GROUP BY Country"``) or structurally::

    {
      "exposure": "Country",
      "outcome": "Salary",
      "aggregate": "avg",
      "context": [{"column": "Continent", "op": "eq", "value": "Europe"}],
      "k": 3
    }

Context clauses are ANDed; supported ops are ``eq``, ``ne``, ``in``,
``gt``, ``ge``, ``lt``, ``le``, ``between``, ``is_null`` and ``not_null``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.exceptions import QueryError, RequestValidationError
from repro.query.aggregate_query import AggregateQuery
from repro.query.parser import parse_query
from repro.table.expressions import (
    And,
    Between,
    Eq,
    Ge,
    Gt,
    In,
    IsNull,
    Le,
    Lt,
    Ne,
    Not,
    NotNull,
    Predicate,
    TRUE,
)

#: Bumped whenever the request/response layout changes incompatibly.
API_SCHEMA_VERSION = 1

_EXPLAIN_FIELDS = frozenset(
    {"sql", "exposure", "outcome", "aggregate", "context", "k", "name",
     "table_name", "debug"})
_BATCH_FIELDS = frozenset({"queries", "k"})

#: op name -> (predicate factory, required value fields)
_COMPARISONS = {
    "eq": Eq, "ne": Ne, "gt": Gt, "ge": Ge, "lt": Lt, "le": Le,
}


def _require_mapping(payload: Any, what: str) -> Mapping:
    if not isinstance(payload, Mapping):
        raise RequestValidationError(
            f"{what} must be a JSON object, got {type(payload).__name__}")
    return payload


def _clause_predicate(clause: Any, errors: List[str], position: int) -> Optional[Predicate]:
    """Parse one context clause dict into a predicate (collecting errors)."""
    label = f"context[{position}]"
    if not isinstance(clause, Mapping):
        errors.append(f"{label} must be an object, got {type(clause).__name__}")
        return None
    column = clause.get("column")
    if not isinstance(column, str) or not column:
        errors.append(f"{label}.column must be a non-empty string")
        return None
    op = clause.get("op", "eq")
    negate = clause.get("negate", False)
    if not isinstance(negate, bool):
        errors.append(f"{label}.negate must be a boolean")
        return None
    known = {"column", "op", "value", "values", "low", "high", "negate"}
    unknown = sorted(set(clause) - known)
    if unknown:
        errors.append(f"{label} has unknown field(s) {unknown}")
        return None
    predicate: Optional[Predicate] = None
    if op in _COMPARISONS:
        if "value" not in clause:
            errors.append(f"{label} with op {op!r} requires a 'value'")
            return None
        value = clause["value"]
        if op != "eq" and op != "ne" and not isinstance(value, (int, float)):
            errors.append(f"{label} with op {op!r} requires a numeric 'value'")
            return None
        predicate = _COMPARISONS[op](column, value)
    elif op == "in":
        values = clause.get("values")
        if not isinstance(values, (list, tuple)) or not values:
            errors.append(f"{label} with op 'in' requires a non-empty 'values' list")
            return None
        predicate = In(column, values)
    elif op == "between":
        low, high = clause.get("low"), clause.get("high")
        if not isinstance(low, (int, float)) or not isinstance(high, (int, float)):
            errors.append(f"{label} with op 'between' requires numeric 'low' and 'high'")
            return None
        predicate = Between(column, low, high)
    elif op == "is_null":
        predicate = IsNull(column)
    elif op == "not_null":
        predicate = NotNull(column)
    else:
        errors.append(
            f"{label}.op {op!r} is not supported; use one of "
            "eq/ne/in/gt/ge/lt/le/between/is_null/not_null")
        return None
    return Not(predicate) if negate else predicate


def _context_predicate(raw: Any, errors: List[str]) -> Predicate:
    """Parse the ``context`` field (a clause list) into an ANDed predicate."""
    if raw is None:
        return TRUE
    if not isinstance(raw, (list, tuple)):
        errors.append(f"context must be a list of clause objects, got {type(raw).__name__}")
        return TRUE
    clauses: List[Predicate] = []
    for position, clause in enumerate(raw):
        predicate = _clause_predicate(clause, errors, position)
        if predicate is not None:
            clauses.append(predicate)
    if not clauses:
        return TRUE
    if len(clauses) == 1:
        return clauses[0]
    return And(*clauses)


def _parse_k(raw: Any, errors: List[str]) -> Optional[int]:
    if raw is None:
        return None
    if isinstance(raw, bool) or not isinstance(raw, int):
        errors.append(f"k must be an integer, got {raw!r}")
        return None
    if raw < 1:
        errors.append(f"k must be >= 1, got {raw}")
        return None
    return raw


def context_clauses(predicate: Predicate) -> List[Dict[str, Any]]:
    """Render a context predicate as the wire format's clause list.

    The inverse of the ``context`` parsing above, used by
    :class:`~repro.serving.client.HTTPClient` to ship an
    :class:`~repro.query.aggregate_query.AggregateQuery` over the JSON API.
    Round-trip guarantee: parsing the returned clauses yields a predicate
    with the same :func:`~repro.table.expressions.canonical_predicate_key`.
    Predicates the wire format cannot express (``OR``, nested ``NOT``)
    raise :class:`RequestValidationError`.
    """
    if predicate is TRUE or isinstance(predicate, And) and not predicate.operands:
        return []
    if isinstance(predicate, And):
        clauses: List[Dict[str, Any]] = []
        for operand in predicate.operands:
            clauses.extend(context_clauses(operand))
        return clauses
    if isinstance(predicate, Not):
        inner = context_clauses(predicate.operand)
        if len(inner) != 1 or inner[0].get("negate"):
            raise RequestValidationError(
                f"cannot serialize predicate {predicate!r}: NOT is only "
                "supported around a single simple clause")
        inner[0]["negate"] = True
        return inner
    for op, factory in _COMPARISONS.items():
        if isinstance(predicate, factory):
            return [{"column": predicate.column, "op": op,
                     "value": predicate.value}]
    if isinstance(predicate, In):
        return [{"column": predicate.column, "op": "in",
                 "values": list(predicate.values)}]
    if isinstance(predicate, Between):
        return [{"column": predicate.column, "op": "between",
                 "low": predicate.low, "high": predicate.high}]
    if isinstance(predicate, IsNull):
        return [{"column": predicate.column, "op": "is_null"}]
    if isinstance(predicate, NotNull):
        return [{"column": predicate.column, "op": "not_null"}]
    raise RequestValidationError(
        f"cannot serialize predicate {predicate!r} into the wire format; "
        "supported: AND of eq/ne/in/gt/ge/lt/le/between/is_null/not_null "
    "clauses (optionally negated)")


def query_payload(query: AggregateQuery, k: Optional[int] = None,
                  dataset: Optional[str] = None) -> Dict[str, Any]:
    """The structural request body for a query (HTTP client's wire form)."""
    payload: Dict[str, Any] = {
        "exposure": query.exposure,
        "outcome": query.outcome,
        "aggregate": query.aggregate,
    }
    clauses = context_clauses(query.context)
    if clauses:
        payload["context"] = clauses
    if query.table_name != "table":
        payload["table_name"] = query.table_name
    if query.name is not None:
        payload["name"] = query.name
    if k is not None:
        payload["k"] = k
    if dataset is not None:
        payload["dataset"] = dataset
    return payload


@dataclass(frozen=True)
class ExplainRequest:
    """One validated explanation request (the body of ``POST /explain``)."""

    query: AggregateQuery
    k: Optional[int] = None
    #: Opt-in diagnostics: when True the HTTP front end embeds the
    #: request's finished span tree in the response (``debug.trace``).
    debug: bool = False

    @classmethod
    def from_dict(cls, payload: Any) -> "ExplainRequest":
        """Strictly parse a request body; raises :class:`RequestValidationError`."""
        payload = _require_mapping(payload, "request body")
        errors: List[str] = []
        unknown = sorted(set(payload) - _EXPLAIN_FIELDS)
        if unknown:
            errors.append(f"unknown field(s) {unknown}")
        k = _parse_k(payload.get("k"), errors)
        debug = payload.get("debug", False)
        if not isinstance(debug, bool):
            errors.append(f"debug must be a boolean, got {debug!r}")
            debug = False
        sql = payload.get("sql")
        if sql is not None:
            if not isinstance(sql, str):
                errors.append(f"sql must be a string, got {type(sql).__name__}")
            overlapping = sorted(
                {"exposure", "outcome", "aggregate", "context"} & set(payload))
            if overlapping:
                errors.append(
                    f"pass either 'sql' or structural fields, not both: {overlapping}")
            if errors:
                raise RequestValidationError(errors)
            try:
                query = parse_query(sql, name=payload.get("name"))
            except QueryError as exc:
                raise RequestValidationError([str(exc)]) from exc
            return cls(query=query, k=k, debug=debug)
        for required in ("exposure", "outcome"):
            value = payload.get(required)
            if not isinstance(value, str) or not value:
                errors.append(f"{required} must be a non-empty string")
        aggregate = payload.get("aggregate", "avg")
        if not isinstance(aggregate, str):
            errors.append(f"aggregate must be a string, got {type(aggregate).__name__}")
        name = payload.get("name")
        if name is not None and not isinstance(name, str):
            errors.append(f"name must be a string, got {type(name).__name__}")
        table_name = payload.get("table_name", "table")
        if not isinstance(table_name, str):
            errors.append(f"table_name must be a string, got {type(table_name).__name__}")
        context = _context_predicate(payload.get("context"), errors)
        if errors:
            raise RequestValidationError(errors)
        try:
            query = AggregateQuery(
                exposure=payload["exposure"], outcome=payload["outcome"],
                aggregate=aggregate, context=context, table_name=table_name,
                name=name,
            )
        except QueryError as exc:
            raise RequestValidationError([str(exc)]) from exc
        return cls(query=query, k=k, debug=debug)


@dataclass(frozen=True)
class BatchExplainRequest:
    """A validated batch request (the body of ``POST /explain_batch``)."""

    requests: Tuple[ExplainRequest, ...]
    k: Optional[int] = None

    @classmethod
    def from_dict(cls, payload: Any) -> "BatchExplainRequest":
        payload = _require_mapping(payload, "request body")
        errors: List[str] = []
        unknown = sorted(set(payload) - _BATCH_FIELDS)
        if unknown:
            errors.append(f"unknown field(s) {unknown}")
        k = _parse_k(payload.get("k"), errors)
        raw_queries = payload.get("queries")
        if not isinstance(raw_queries, (list, tuple)) or not raw_queries:
            errors.append("queries must be a non-empty list of request objects")
            raise RequestValidationError(errors)
        requests: List[ExplainRequest] = []
        for position, raw in enumerate(raw_queries):
            try:
                requests.append(ExplainRequest.from_dict(raw))
            except RequestValidationError as exc:
                errors.extend(f"queries[{position}]: {error}" for error in exc.errors)
        if errors:
            raise RequestValidationError(errors)
        return cls(requests=tuple(requests), k=k)


_JOB_FIELDS = frozenset({"kind", "queries", "k", "top"})
_JOB_KINDS = frozenset({"explain_batch", "warm"})


@dataclass(frozen=True)
class JobSubmitRequest:
    """A validated job submission (the body of ``POST /jobs``).

    ``queries`` are kept in wire form (payload dicts) — the job body is
    stored durably as JSON, so normalising to :class:`AggregateQuery` here
    would only round-trip back through :func:`query_payload`.  Each entry
    is still parsed through :class:`ExplainRequest` so malformed queries
    fail at submission with a 400, not inside the background worker.
    """

    kind: str
    queries: Optional[Tuple[Dict[str, Any], ...]] = None
    k: Optional[int] = None
    top: int = 8

    @classmethod
    def from_dict(cls, payload: Any) -> "JobSubmitRequest":
        payload = _require_mapping(payload, "request body")
        errors: List[str] = []
        unknown = sorted(set(payload) - _JOB_FIELDS)
        if unknown:
            errors.append(f"unknown field(s) {unknown}")
        kind = payload.get("kind", "explain_batch")
        if kind not in _JOB_KINDS:
            errors.append(
                f"kind must be one of {sorted(_JOB_KINDS)}, got {kind!r}")
        k = _parse_k(payload.get("k"), errors)
        top = payload.get("top", 8)
        if not isinstance(top, int) or isinstance(top, bool) or top < 0:
            errors.append(f"top must be an integer >= 0, got {top!r}")
            top = 8
        raw_queries = payload.get("queries")
        queries: Optional[Tuple[Dict[str, Any], ...]] = None
        if raw_queries is not None:
            if not isinstance(raw_queries, (list, tuple)):
                errors.append("queries must be a list of request objects")
            else:
                for position, raw in enumerate(raw_queries):
                    try:
                        ExplainRequest.from_dict(raw)
                    except RequestValidationError as exc:
                        errors.extend(f"queries[{position}]: {error}"
                                      for error in exc.errors)
                queries = tuple(dict(raw) for raw in raw_queries
                                if isinstance(raw, Mapping))
        if kind == "explain_batch" and not queries and not errors:
            errors.append(
                "an explain_batch job needs a non-empty queries list")
        if errors:
            raise RequestValidationError(errors)
        return cls(kind=kind, queries=queries, k=k, top=top)


@dataclass(frozen=True)
class AppendRowsRequest:
    """A validated live-update request (the body of ``POST /append_rows``)."""

    rows: Tuple[Dict[str, Any], ...]
    rewarm: bool = True
    top: int = 8

    @classmethod
    def from_dict(cls, payload: Any) -> "AppendRowsRequest":
        payload = _require_mapping(payload, "request body")
        errors: List[str] = []
        unknown = sorted(set(payload) - {"rows", "rewarm", "top"})
        if unknown:
            errors.append(f"unknown field(s) {unknown}")
        rewarm = payload.get("rewarm", True)
        if not isinstance(rewarm, bool):
            errors.append(f"rewarm must be a boolean, got {rewarm!r}")
            rewarm = True
        top = payload.get("top", 8)
        if not isinstance(top, int) or isinstance(top, bool) or top < 0:
            errors.append(f"top must be an integer >= 0, got {top!r}")
            top = 8
        raw_rows = payload.get("rows")
        if not isinstance(raw_rows, (list, tuple)) or not raw_rows:
            errors.append("rows must be a non-empty list of objects")
            raise RequestValidationError(errors)
        for position, row in enumerate(raw_rows):
            if not isinstance(row, Mapping):
                errors.append(f"rows[{position}] must be an object, "
                              f"got {type(row).__name__}")
        if errors:
            raise RequestValidationError(errors)
        return cls(rows=tuple(dict(row) for row in raw_rows),
                   rewarm=rewarm, top=top)


@dataclass(frozen=True)
class ExplainResponse:
    """The served form of one explanation: envelope JSON + cache metadata."""

    dataset: str
    envelope_dict: Dict[str, Any]
    cache_hit: bool
    coalesced: bool = False
    schema_version: int = API_SCHEMA_VERSION
    #: The distributed trace id this request ran under, when tracing is on.
    trace_id: Optional[str] = None
    #: Opt-in diagnostics block (``{"trace": <span tree>}``), present only
    #: when the request asked for ``"debug": true``.
    debug: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "api_schema_version": self.schema_version,
            "dataset": self.dataset,
            "cache_hit": self.cache_hit,
            "coalesced": self.coalesced,
            "envelope": self.envelope_dict,
        }
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        if self.debug is not None:
            payload["debug"] = self.debug
        return payload
