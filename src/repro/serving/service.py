"""The :class:`ExplanationService` — a long-lived, cache-warm serving tier.

The engine answers one query well; a service answers *millions*.  The
service wraps one warm :class:`~repro.engine.context.PipelineContext` per
registered dataset and layers the serving concerns on top:

* an **explanation cache** — a bounded LRU (optional TTL) keyed by the
  canonical query key ``(dataset, exposure, outcome, aggregate, canonical
  context, k)``; a hit returns the *same*
  :class:`~repro.engine.envelope.ExplanationEnvelope` object, so repeated
  requests serialize byte-identically;
* **request coalescing** — cache misses are funnelled through one
  :class:`~repro.serving.batcher.MicroBatcher` per dataset, which collects
  concurrent requests into single ``explain_many_envelopes`` calls and
  deduplicates identical in-flight queries down to one execution;
* **single-writer concurrency** — the batcher's worker thread is the only
  thread driving a dataset's pipeline, so any number of HTTP threads can
  submit concurrently without racing the engine's per-query memos (engine
  parallelism still applies *inside* a batch via ``config.n_jobs``);
* a **negative cache** — client-input failures (``QueryError`` /
  ``ExplanationError``: malformed contexts, zero-row contexts) are cached
  under the same canonical key, so hostile or buggy clients repeating an
  expensive-to-diagnose bad query never reach the engine again
  (``service.negative_hit`` counts the shield);
* **observability** — cache hit/miss counters fold into the pipeline
  context's counters (``service.cache_hit`` / ``service.cache_miss`` next
  to ``extraction_runs`` and friends) and :meth:`stats` snapshots
  everything for the ``GET /stats`` endpoint.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.engine.config import MESAConfig
from repro.engine.envelope import ExplanationEnvelope
from repro.engine.pipeline import ExplanationPipeline
from repro.exceptions import (
    ConfigurationError,
    DatasetNotRegisteredError,
    ExplanationError,
    QueryError,
    RequestValidationError,
)
from repro.obs import trace
from repro.obs.logs import log_slow_query
from repro.obs.metrics import MetricsRegistry, process_maxrss_kb
from repro.query.aggregate_query import AggregateQuery
from repro.serving.batcher import MicroBatcher
from repro.serving.cache import TTLCache
from repro.serving.schema import ExplainRequest, query_payload
from repro.storage import DurableEnvelopeStore, MetaStore
from repro.table.expressions import canonical_predicate_key
from repro.table.table import Table


def _maxrss_kb() -> int:
    """This process's peak resident set size in KB (0 where unsupported).

    Feeds the ``repro_worker_maxrss_bytes`` gauge: replica workers report
    it through their ``stats`` op, and the single-process service reports
    its own — the number the memory benchmark gates the frame store on.
    Delegates to :func:`repro.obs.metrics.process_maxrss_kb`, which reads
    ``VmHWM`` rather than ``ru_maxrss`` (spawn workers inherit the
    parent's rusage peak on Linux, which would mask any per-worker win).
    """
    return process_maxrss_kb()


@dataclass(frozen=True)
class ServedExplanation:
    """One served result: the envelope plus how it was produced."""

    dataset: str
    envelope: ExplanationEnvelope
    cache_hit: bool
    #: True when this request attached to an identical in-flight request
    #: instead of executing on its own.
    coalesced: bool = False
    #: The id of the request trace this explanation was served under
    #: (``None`` when request tracing is off) — resolvable via the
    #: service tracer / ``GET /trace/<id>``.
    trace_id: Optional[str] = None


class ExplanationService:
    """Serve explanations for registered datasets from warm caches.

    Parameters
    ----------
    cache_size:
        Bound on the explanation cache (entries are envelopes; LRU beyond).
    ttl_seconds:
        Optional expiry of cached explanations; ``None`` caches forever
        (the synthetic datasets are immutable — a mutable deployment should
        set a TTL matched to its ingest cadence).
    coalesce_window_seconds:
        How long the per-dataset batcher waits for concurrent requests to
        coalesce before flushing a batch.  ``0`` disables the wait but
        still batches requests that arrive while a batch is executing.
    max_batch:
        Flush a batch early once this many distinct requests are pending.
    negative_cache_size:
        Bound on the negative cache of client-input error verdicts
        (``QueryError`` / ``ExplanationError``); repeats of a cached bad
        query raise immediately without reaching the engine.  Shares the
        service TTL.
    permutation_early_exit:
        The *serving-path* default for the sequential permutation early
        exit.  An audit of the p-value consumers (recoverability and the
        responsibility stopping criterion read only the boolean
        ``independent`` verdict, which the early exit provably never
        flips; nothing gates on p-value resolution) makes the exit safe to
        enable for served traffic, so pipelines built by
        :meth:`register_dataset` / :meth:`register_bundle` get it switched
        on unless the caller opts out here.  The engine default stays off —
        offline analyses may care about exact permutation counts — and
        pre-built pipelines handed to :meth:`register` are never rewritten.
    speculative_search:
        The serving-path default for the pipelined MCIMR search
        (:mod:`repro.core.speculate`): round ``i + 1``'s candidate scoring
        overlaps round ``i``'s responsibility test on a speculation
        thread.  Explanations are bit-identical to the sequential
        schedule, so served pipelines get it switched on by the same rule
        as the early exit; ``/stats`` surfaces ``speculation_hit`` /
        ``speculation_waste``.  Adaptive permutation budgets
        (``max_responsibility_permutations``) stay caller-opt-in — they
        can revise statistically uncertain verdicts, a policy decision the
        service does not make silently.
    history_size:
        How many distinct historical queries to remember per dataset (for
        the :meth:`warm` replay of top-K traffic).
    clock:
        Monotonic time source shared by the cache and batchers
        (injectable for TTL/window tests).
    tracer:
        The bounded trace store requests record into; defaults to a fresh
        :class:`repro.obs.trace.Tracer`.  A topology owner (the HTTP
        server, a cluster worker loop) may inject a shared one.
    metrics:
        The :class:`repro.obs.metrics.MetricsRegistry` request latency
        histograms land in; snapshots ride :meth:`stats` under
        ``"metrics"`` and merge across workers.
    trace_requests:
        When True (default) every :meth:`explain` / :meth:`explain_batch`
        arriving *without* an active trace starts one of its own, so
        direct service callers get per-request trees too.  Requests that
        already carry a trace (the HTTP layer, a traced worker frame)
        always join it regardless of this flag.
    slow_query_seconds:
        Latency threshold of the slow-query log (structured JSON lines on
        the ``repro.serving.slowlog`` logger, carrying the trace id).
        ``None`` or ``<= 0`` disables it.
    store:
        Durable storage: a :class:`~repro.storage.MetaStore`, a filesystem
        path (a store is opened and owned by this service), or ``None``
        (no durability — the pre-existing behaviour).  With a store, the
        in-memory envelope cache is backed by the disk-resident
        :class:`~repro.storage.DurableEnvelopeStore` (miss -> disk ->
        engine; writes are async write-behind), query history is recorded
        durably so a *restarted* service re-warms its top-K traffic from
        disk instead of recomputing, and dataset versions persist so the
        restarted process mints cache keys matching what it stored.
    """

    def __init__(self, cache_size: int = 1024,
                 ttl_seconds: Optional[float] = None,
                 coalesce_window_seconds: float = 0.005,
                 max_batch: int = 64,
                 negative_cache_size: int = 256,
                 permutation_early_exit: bool = True,
                 speculative_search: bool = True,
                 history_size: int = 256,
                 clock: Callable[[], float] = time.monotonic,
                 tracer: Optional[trace.Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 trace_requests: bool = True,
                 slow_query_seconds: Optional[float] = 1.0,
                 store: Optional[Union[MetaStore, str, Path]] = None):
        self._clock = clock
        self.tracer = tracer if tracer is not None else trace.Tracer(
            tier="service")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace_requests = trace_requests
        self.slow_query_seconds = slow_query_seconds
        self._cache = TTLCache(max_entries=cache_size, ttl_seconds=ttl_seconds,
                               clock=clock)
        self._negative = TTLCache(max_entries=negative_cache_size,
                                  ttl_seconds=ttl_seconds, clock=clock)
        self.coalesce_window_seconds = coalesce_window_seconds
        self.max_batch = max_batch
        self.permutation_early_exit = permutation_early_exit
        self.speculative_search = speculative_search
        self.history_size = history_size
        self._pipelines: Dict[str, ExplanationPipeline] = {}
        self._batchers: Dict[str, MicroBatcher] = {}
        #: Per-dataset request history: canonical key -> [query, k, hits],
        #: most recent last (bounded LRU), feeding the top-K cache warmer.
        self._history: Dict[str, "OrderedDict[Tuple, List]"] = {}
        self._lock = threading.Lock()
        self._started_at = clock()
        self._closed = False
        #: The most recently started background warmer thread (join in tests).
        self.last_warmer: Optional[threading.Thread] = None
        self._owns_meta = False
        self._meta: Optional[MetaStore] = None
        self._envelopes: Optional[DurableEnvelopeStore] = None
        if store is not None:
            if isinstance(store, MetaStore):
                self._meta = store
            else:
                self._meta = MetaStore(store)
                self._owns_meta = True
            self._envelopes = DurableEnvelopeStore(self._meta)
        #: The attached :class:`~repro.jobs.JobManager` (see
        #: :meth:`enable_jobs`); ``None`` until enabled.
        self.jobs = None

    @property
    def meta(self) -> Optional[MetaStore]:
        """The backing metastore (``None`` without durability)."""
        return self._meta

    @property
    def envelope_store(self) -> Optional[DurableEnvelopeStore]:
        """The durable envelope store (``None`` without durability)."""
        return self._envelopes

    def enable_jobs(self, resume: bool = True):
        """Attach a :class:`~repro.jobs.JobManager` running against this
        service; requires a durable store.  Idempotent."""
        if self.jobs is not None:
            return self.jobs
        if self._meta is None:
            raise ConfigurationError(
                "jobs require a durable store: construct the service with "
                "store=<path> (or pass --store to python -m repro.serving)")
        from repro.jobs import JobManager  # deferred: avoids an import cycle
        self.jobs = JobManager(self._meta, self, tracer=self.tracer,
                               resume=resume)
        return self.jobs

    # ------------------------------------------------------------------ #
    # dataset registration
    # ------------------------------------------------------------------ #
    def register(self, name: str, pipeline: ExplanationPipeline,
                 warm: bool = True) -> ExplanationPipeline:
        """Register a pipeline to serve ``name``.

        With ``warm=True`` (default) the cross-query artefacts — the
        augmented table and the offline-pruning verdicts — are built
        immediately, so the first request pays only the per-query cost.
        """
        if not name:
            raise ConfigurationError("dataset name must be a non-empty string")
        with self._lock:
            if self._closed:
                raise ConfigurationError("ExplanationService is closed")
            if name in self._pipelines:
                raise ConfigurationError(f"dataset {name!r} is already registered")
            self._pipelines[name] = pipeline
            self._history.setdefault(name, OrderedDict())
            self._batchers[name] = MicroBatcher(
                runner=self._runner_for(pipeline),
                window_seconds=self.coalesce_window_seconds,
                max_batch=self.max_batch, clock=self._clock)
        # Re-registration of a context that served before (its version
        # moved past the initial 0) bumps the version, so canonical keys
        # minted against the earlier registration can never answer
        # requests for this one.  A first-time registration keeps version
        # 0 — bumping would needlessly invalidate the frame cache of a
        # caller-warmed pipeline.
        if pipeline.context.dataset_version > 0:
            pipeline.context.bump_dataset_version()
        if self._meta is not None:
            # Restore the durably recorded version: a restarted process
            # must mint the same cache keys it stored envelopes under, or
            # every disk lookup would miss.  The fresh context has no
            # version-keyed artefacts yet, so fast-forwarding is safe.
            stored_version = self._meta.dataset_version(name)
            if stored_version is not None \
                    and stored_version > pipeline.context.dataset_version:
                pipeline.context.dataset_version = stored_version
            self._meta.record_dataset_version(
                name, pipeline.context.dataset_version)
        if warm:
            self.warm(name)
        return pipeline

    def register_dataset(self, name: str, table, knowledge_graph=None,
                         extraction_specs: Sequence = (),
                         config: Optional[MESAConfig] = None,
                         warm: bool = True) -> ExplanationPipeline:
        """Build and register a pipeline from dataset parts.

        The pipeline configuration gets the serving-path defaults applied
        (currently ``permutation_early_exit`` and ``speculative_search``,
        see the class docstring).
        """
        config = config or MESAConfig()
        if self.permutation_early_exit and not config.permutation_early_exit:
            config = config.with_overrides(permutation_early_exit=True)
        if self.speculative_search and not config.speculative_search:
            config = config.with_overrides(speculative_search=True)
        pipeline = ExplanationPipeline(table, knowledge_graph, extraction_specs,
                                       config=config)
        return self.register(name, pipeline, warm=warm)

    def register_bundle(self, bundle, config: Optional[MESAConfig] = None,
                        warm: bool = True) -> ExplanationPipeline:
        """Register a :class:`~repro.datasets.registry.DatasetBundle`.

        The bundle's identifier columns are excluded from the candidate set
        unless the caller's config already decides that.
        """
        if config is None:
            config = MESAConfig(excluded_columns=tuple(bundle.id_columns))
        return self.register_dataset(
            bundle.name, bundle.table, bundle.knowledge_graph,
            bundle.extraction_specs, config=config, warm=warm)

    def warm(self, name: str, queries: Optional[Sequence] = None,
             top: int = 8, background: bool = False,
             k: Optional[int] = None) -> int:
        """Build the dataset's cross-query artefacts and replay hot queries.

        The artefact half (augmented table, offline-pruning verdicts) is
        idempotent and always runs synchronously.  The *replay* half then
        pushes explanations back into the result caches: ``queries`` names
        them explicitly, or — with ``queries=None`` — the ``top`` most
        requested queries from the dataset's recorded history are replayed
        (the cold-start cure after :meth:`clear_cache` or a cluster worker
        restart).  Each replay is an ordinary :meth:`explain`, so every
        cache layer (frame, fit, envelope) warms exactly as live traffic
        would; replay failures are swallowed — warming is best-effort.

        With ``background=True`` the replay runs on a daemon thread (the
        thread object is stored on ``self.last_warmer`` for tests to join)
        and the method returns the number of queries *scheduled*; otherwise
        it returns the number successfully replayed.
        """
        pipeline = self.pipeline(name)
        config = pipeline.config
        augmented = pipeline.context.augmented_table(config.hops)
        if config.use_offline_pruning:
            # Lazy per-column verdicts: warm the candidate-eligible columns
            # only; excluded (identifier) columns are never scanned.
            candidates = [column_name for column_name in augmented.column_names
                          if column_name not in config.excluded_columns]
            pipeline.context.offline_pruning(
                candidates, hops=config.hops,
                max_missing_fraction=config.max_missing_fraction,
                high_entropy_unique_ratio=config.high_entropy_unique_ratio)
        if queries is not None:
            replay: List[Tuple] = [(query, k) for query in queries]
        else:
            replay = self.top_queries(name, top)
        if not replay:
            return 0

        def run_replay() -> int:
            warmed = 0
            for query, replay_k in replay:
                try:
                    self.explain(name, query, k=replay_k)
                    warmed += 1
                except Exception:
                    continue
            pipeline.context.count("service.warmed_queries", warmed)
            return warmed

        if background:
            thread = threading.Thread(target=run_replay,
                                      name=f"repro-serving-warmer-{name}",
                                      daemon=True)
            self.last_warmer = thread
            thread.start()
            return len(replay)
        return run_replay()

    def top_queries(self, name: str, top: int) -> List[Tuple]:
        """The ``top`` most requested ``(query, k)`` pairs of a dataset.

        In-memory history first; when it holds fewer than ``top`` entries
        (freshly restarted process) the durably recorded history fills
        the remainder — the mechanism behind restart re-warm: a new
        process replays queries its predecessor recorded, and each replay
        hits the durable envelope store instead of the engine.
        """
        with self._lock:
            history = list(self._history.get(name, {}).values())
        history.sort(key=lambda entry: entry[2], reverse=True)
        replay = [(query, k) for query, k, _hits in history[:max(0, top)]]
        if self._envelopes is not None and len(replay) < max(0, top):
            seen = {self._history_identity(query, k) for query, k in replay}
            for payload, k, _hits in self._envelopes.top_queries(name, top):
                try:
                    parsed = ExplainRequest.from_dict(payload)
                except Exception:
                    continue
                identity = self._history_identity(parsed.query, k)
                if identity in seen:
                    continue
                seen.add(identity)
                replay.append((parsed.query, k))
                if len(replay) >= top:
                    break
        return replay

    @staticmethod
    def _history_identity(query: AggregateQuery, k: Optional[int]) -> Tuple:
        """Version-free identity used to merge durable + live history."""
        return (query.exposure, query.outcome, query.aggregate.lower(),
                canonical_predicate_key(query.context), query.name,
                query.table_name, k)

    def _record_history(self, name: str, key: Tuple, query: AggregateQuery,
                        k: Optional[int]) -> None:
        with self._lock:
            history = self._history.get(name)
            if history is None:
                return
            entry = history.get(key)
            if entry is None:
                history[key] = [query, k, 1]
            else:
                entry[2] += 1
                history.move_to_end(key)
            while len(history) > self.history_size:
                history.popitem(last=False)
        if self._envelopes is not None:
            # Durable history is keyed without the version component
            # (``key`` already is): it must survive version bumps, or the
            # re-warm after an append would find nothing to replay.
            # Best-effort: a predicate the wire format cannot express
            # (OR, nested NOT) is servable but not durably recordable —
            # never let bookkeeping fail the request.
            try:
                payload = query_payload(query, k=k)
            except RequestValidationError:
                return
            self._envelopes.record_query(name, key, payload, k)

    # ------------------------------------------------------------------ #
    # live dataset updates
    # ------------------------------------------------------------------ #
    def append_rows(self, name: str, rows: Sequence[Mapping],
                    rewarm: bool = True, top: int = 8) -> Dict[str, object]:
        """Append rows to a registered dataset, invalidating coherently.

        The appended table replaces the dataset's pipeline under a bumped
        dataset version, so every version-keyed cache — the in-process
        envelope/negative caches, other processes' caches in a cluster,
        the encoded-frame cache — stops serving pre-append artefacts the
        moment the new version appears in freshly minted keys.  With
        ``rewarm`` (default) a background re-warm of the dataset's top-K
        recorded queries follows: as a durable job when a
        :class:`~repro.jobs.JobManager` is attached (see
        :meth:`enable_jobs`), otherwise on a daemon thread.

        Returns a summary dict (``dataset``, ``appended``, ``n_rows``,
        ``dataset_version``, ``rewarm_job``).
        """
        if not rows:
            raise QueryError("append_rows requires a non-empty list of "
                             "row mappings")
        pipeline = self.pipeline(name)
        table = pipeline.context.table
        extra = Table.from_rows(list(rows),
                                columns=list(table.column_names),
                                name=table.name)
        merged = table.concat_rows(extra)
        return self.replace_table(name, merged, rewarm=rewarm, top=top,
                                  appended=len(rows))

    def replace_table(self, name: str, table: Table, rewarm: bool = True,
                      top: int = 8, appended: int = 0) -> Dict[str, object]:
        """Swap a dataset's table for a new one under a bumped version.

        The machinery behind :meth:`append_rows` (and the cluster's
        frame-store update path, which hands workers a zero-copy manifest
        table).  The old pipeline's knowledge graph, extraction specs,
        config and shard-pool attachment carry over; its batcher is torn
        down and rebuilt because the runner closure binds the pipeline.
        """
        old = self.pipeline(name)
        version = old.context.dataset_version + 1
        pipeline = ExplanationPipeline(table, old.context.knowledge_graph,
                                       old.context.extraction_specs,
                                       config=old.config)
        pipeline.context.dataset_version = version
        # Rows-mode serving: the new context keeps feeding the shard pool;
        # the version bump makes it register fresh shard contexts (old
        # ones are the cluster owner's to drop).
        pipeline.context.shard_pool = old.context.shard_pool
        pipeline.context.shard_label = old.context.shard_label
        with self._lock:
            if self._closed:
                raise ConfigurationError("ExplanationService is closed")
            self._pipelines[name] = pipeline
            old_batcher = self._batchers.get(name)
            self._batchers[name] = MicroBatcher(
                runner=self._runner_for(pipeline),
                window_seconds=self.coalesce_window_seconds,
                max_batch=self.max_batch, clock=self._clock)
        if old_batcher is not None:
            old_batcher.close()
        pipeline.context.count("service.dataset_updates")
        if self._meta is not None:
            self._meta.record_dataset_version(name, version)
        rewarm_job = None
        if rewarm:
            if self.jobs is not None:
                rewarm_job = self.jobs.submit(name, kind="warm", top=top)
            else:
                self.warm(name, top=top, background=True)
        return {"dataset": name, "appended": int(appended),
                "n_rows": table.n_rows, "dataset_version": version,
                "rewarm_job": rewarm_job}

    def datasets(self) -> List[str]:
        """Names of the registered datasets, sorted."""
        with self._lock:
            return sorted(self._pipelines)

    def pipeline(self, name: str) -> ExplanationPipeline:
        """The pipeline serving ``name``; raises for unknown datasets."""
        with self._lock:
            pipeline = self._pipelines.get(name)
        if pipeline is None:
            raise DatasetNotRegisteredError(
                f"dataset {name!r} is not registered; "
                f"available: {self.datasets()}")
        return pipeline

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    @staticmethod
    def query_key(dataset: str, query: AggregateQuery, k: int,
                  version: int = 0) -> Tuple:
        """The canonical cache key of a request.

        Two requests that ask the same question — same dataset, exposure,
        outcome, aggregate, ``k`` and a context equal up to clause order —
        share a key, and therefore share a cache entry and an in-flight
        execution.  The client-visible labels (``name``, ``table_name``)
        are part of the key because they are echoed back inside the
        envelope's query descriptor: a client using ``name`` as a
        correlation id must never receive another request's id.

        ``version`` is the dataset version (see
        :meth:`~repro.engine.context.PipelineContext.bump_dataset_version`):
        bumping it on registration or invalidation retires every cached
        envelope and error verdict for the dataset at once — in this
        process and, because the version travels inside the key rather
        than in any one cache's state, in every process serving it.
        """
        return (dataset, query.exposure, query.outcome,
                query.aggregate.lower(), canonical_predicate_key(query.context),
                query.name, query.table_name, k, version)

    def _live_key(self, dataset: str, pipeline: ExplanationPipeline,
                  query: AggregateQuery, k: int) -> Tuple:
        """The canonical key at the dataset's *current* version."""
        return self.query_key(dataset, query, k,
                              pipeline.context.dataset_version)

    def _raise_cached_error(self, pipeline: ExplanationPipeline, error) -> None:
        """Re-raise a negative-cache verdict as a fresh exception."""
        pipeline.context.count("service.negative_hit")
        trace.annotate(negative_hit=True)
        raise type(error)(*error.args)

    def _cache_negative(self, key, error) -> None:
        """Record a client-input failure under the canonical query key.

        Only deterministic client-input verdicts are cached — the query
        itself is bad (zero-row context, candidate misuse), so repeating it
        can never succeed and must not re-run the engine.  Transient engine
        failures keep raising normally.
        """
        if isinstance(error, (QueryError, ExplanationError)):
            self._negative.put(key, error)

    def explain(self, dataset: str, query: AggregateQuery,
                k: Optional[int] = None) -> ServedExplanation:
        """Serve one explanation (cache -> negative cache -> batch -> engine)."""
        started = time.perf_counter()
        request, trace_id = self._join_or_begin_trace("service.request",
                                                      dataset)
        outcome = "error"
        try:
            with trace.span("service.explain", dataset=dataset) as span:
                served = self._explain_inner(dataset, query, k)
                span.set_tag("cache_hit", served.cache_hit)
            outcome = "hit" if served.cache_hit else "miss"
            if trace_id is not None and served.trace_id is None:
                served = ServedExplanation(
                    dataset=served.dataset, envelope=served.envelope,
                    cache_hit=served.cache_hit, coalesced=served.coalesced,
                    trace_id=trace_id)
            return served
        finally:
            if request is not None:
                request.finish()
            self._observe_request("explain", dataset, outcome,
                                  time.perf_counter() - started, trace_id)

    def _join_or_begin_trace(self, name: str, dataset: str):
        """Start a request trace when none is active (and tracing is on)."""
        trace_id = trace.current_trace_id()
        if trace_id is not None:
            return None, trace_id
        if not self.trace_requests:
            return None, None
        request = trace.begin_request(self.tracer, name, dataset=dataset)
        return request, request.trace_id

    def _observe_request(self, endpoint: str, dataset: str, outcome: str,
                         seconds: float, trace_id: Optional[str],
                         queries: int = 1) -> None:
        self.metrics.histogram("repro_request_seconds",
                               {"dataset": dataset,
                                "endpoint": endpoint}).observe(seconds)
        self.metrics.counter("repro_requests_total",
                             {"dataset": dataset, "endpoint": endpoint,
                              "outcome": outcome}).inc()
        log_slow_query(seconds, self.slow_query_seconds, endpoint=endpoint,
                       dataset=dataset, trace_id=trace_id,
                       queries=queries if queries != 1 else None)

    def _explain_inner(self, dataset: str, query: AggregateQuery,
                       k: Optional[int] = None) -> ServedExplanation:
        pipeline = self.pipeline(dataset)
        resolved_k = k if k is not None else pipeline.config.k
        key = self._live_key(dataset, pipeline, query, resolved_k)
        self._record_history(dataset, key[:-1], query, k)
        with trace.span("cache.lookup", cache="envelope") as span:
            envelope = self._cache.get(key)
            span.set_tag("hit", envelope is not None)
        if envelope is not None:
            pipeline.context.count("service.cache_hit")
            return ServedExplanation(dataset=dataset, envelope=envelope,
                                     cache_hit=True)
        with trace.span("cache.lookup", cache="negative") as span:
            cached_error = self._negative.get(key)
            span.set_tag("hit", cached_error is not None)
        if cached_error is not None:
            self._raise_cached_error(pipeline, cached_error)
        stored = self._store_lookup(dataset, pipeline, key)
        if stored is not None:
            return ServedExplanation(dataset=dataset, envelope=stored,
                                     cache_hit=True)
        pipeline.context.count("service.cache_miss")
        future, attached = self._batcher(dataset).submit(key, query, resolved_k)
        try:
            envelope = future.result()
        except Exception as error:
            self._cache_negative(key, error)
            raise
        self._cache.put(key, envelope)
        self._store_put(dataset, key, envelope)
        return ServedExplanation(dataset=dataset, envelope=envelope,
                                 cache_hit=False, coalesced=attached)

    def _store_lookup(self, dataset: str, pipeline: ExplanationPipeline,
                      key: Tuple) -> Optional[ExplanationEnvelope]:
        """Durable-store fall-through on an in-memory miss.

        A hit is promoted into the in-memory cache (so the disk is read
        once per key per process) and served as a cache hit — from the
        client's perspective the answer came from cache, just a colder
        tier.
        """
        if self._envelopes is None:
            return None
        with trace.span("cache.lookup", cache="durable") as span:
            envelope = self._envelopes.get(dataset, key[-1], key)
            span.set_tag("hit", envelope is not None)
        if envelope is None:
            return None
        self._cache.put(key, envelope)
        pipeline.context.count("service.store_hit")
        return envelope

    def _store_put(self, dataset: str, key: Tuple,
                   envelope: ExplanationEnvelope) -> None:
        """Write-behind persist of a freshly computed envelope."""
        if self._envelopes is not None:
            self._envelopes.put(dataset, key[-1], key, envelope)

    def explain_batch(self, dataset: str, queries: Sequence[AggregateQuery],
                      k: Optional[int] = None) -> List[ServedExplanation]:
        """Serve a batch: answer hits from the cache, coalesce the misses.

        Every miss is submitted to the dataset's batcher in one go, so the
        whole miss set (deduplicated against itself *and* against other
        clients' in-flight requests) executes as a single engine batch.
        """
        started = time.perf_counter()
        request, trace_id = self._join_or_begin_trace("service.request",
                                                      dataset)
        outcome = "error"
        try:
            with trace.span("service.explain_batch", dataset=dataset,
                            queries=len(queries)):
                served = self._explain_batch_inner(dataset, queries, k)
            outcome = "ok"
            if trace_id is not None:
                served = [ServedExplanation(
                    dataset=one.dataset, envelope=one.envelope,
                    cache_hit=one.cache_hit, coalesced=one.coalesced,
                    trace_id=trace_id) for one in served]
            return served
        finally:
            if request is not None:
                request.finish()
            self._observe_request("explain_batch", dataset, outcome,
                                  time.perf_counter() - started, trace_id,
                                  queries=len(queries))

    def _explain_batch_inner(self, dataset: str,
                             queries: Sequence[AggregateQuery],
                             k: Optional[int] = None,
                             ) -> List[ServedExplanation]:
        pipeline = self.pipeline(dataset)
        resolved_k = k if k is not None else pipeline.config.k
        served: List[Optional[ServedExplanation]] = [None] * len(queries)
        misses: List[Tuple[int, AggregateQuery, Hashable]] = []
        hits = 0
        for index, query in enumerate(queries):
            key = self._live_key(dataset, pipeline, query, resolved_k)
            self._record_history(dataset, key[:-1], query, k)
            envelope = self._cache.get(key)
            if envelope is not None:
                hits += 1
                served[index] = ServedExplanation(
                    dataset=dataset, envelope=envelope, cache_hit=True)
            else:
                cached_error = self._negative.get(key)
                if cached_error is not None:
                    if hits:
                        pipeline.context.count("service.cache_hit", hits)
                    self._raise_cached_error(pipeline, cached_error)
                stored = self._store_lookup(dataset, pipeline, key)
                if stored is not None:
                    hits += 1
                    served[index] = ServedExplanation(
                        dataset=dataset, envelope=stored, cache_hit=True)
                else:
                    misses.append((index, query, key))
        if hits:
            pipeline.context.count("service.cache_hit", hits)
        if misses:
            pipeline.context.count("service.cache_miss", len(misses))
            batcher = self._batcher(dataset)
            futures = [(index, key,
                        batcher.submit(key, query, resolved_k))
                       for index, query, key in misses]
            for index, key, (future, attached) in futures:
                try:
                    envelope = future.result()
                except Exception as error:
                    self._cache_negative(key, error)
                    raise
                self._cache.put(key, envelope)
                self._store_put(dataset, key, envelope)
                served[index] = ServedExplanation(
                    dataset=dataset, envelope=envelope, cache_hit=False,
                    coalesced=attached)
        return served  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # observability and lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        """A JSON-safe snapshot of cache, batcher and engine counters.

        The shared explanation/negative caches additionally report their
        occupancy *per dataset* (the dataset is the first component of
        every canonical query key), and each dataset context reports its
        current version — what a cluster front tier merges into its
        per-worker stats view.
        """
        with self._lock:
            pipelines = dict(self._pipelines)
            batchers = dict(self._batchers)
        contexts = {}
        for name, pipeline in pipelines.items():
            counters, stage_seconds = pipeline.context.observability_snapshot()
            contexts[name] = {
                "counters": counters,
                "stage_seconds": {stage: round(seconds, 6)
                                  for stage, seconds in stage_seconds.items()},
                "dataset_version": pipeline.context.dataset_version,
            }
        cache_stats = self._cache.stats()
        cache_stats["by_dataset"] = self._cache.sizes_by(lambda key: key[0])
        negative_stats = self._negative.stats()
        negative_stats["by_dataset"] = self._negative.sizes_by(lambda key: key[0])
        snapshot = {
            "uptime_seconds": self._clock() - self._started_at,
            "datasets": sorted(pipelines),
            "cache": cache_stats,
            "negative_cache": negative_stats,
            "batchers": {name: batcher.stats()
                         for name, batcher in batchers.items()},
            "contexts": contexts,
            "metrics": self.metrics.state(),
            "tracing": self.tracer.stats(),
            "memory": {"maxrss_kb": _maxrss_kb()},
        }
        if self._envelopes is not None:
            snapshot["envelope_store"] = self._envelopes.stats()
        if self.jobs is not None:
            snapshot["jobs"] = self.jobs.stats()
        return snapshot

    def health(self) -> Dict[str, object]:
        """Liveness verdict: a single-process service is up iff it is open."""
        with self._lock:
            closed = self._closed
            datasets = sorted(self._pipelines)
        return {"status": "down" if closed else "ok", "datasets": datasets}

    def clear_cache(self) -> None:
        """Invalidate every cache layer for every dataset, coherently.

        Besides dropping the local envelope and error-verdict entries, each
        dataset's version is bumped — so version-keyed caches *anywhere*
        (this process's encoded-frame cache, other processes' envelope
        caches in a cluster once they observe the bump) stop serving
        pre-invalidation artefacts.  Counters and recorded query history
        are kept: :meth:`warm` can replay the top-K history to refill.
        """
        with self._lock:
            pipelines = dict(self._pipelines)
        for name, pipeline in pipelines.items():
            pipeline.context.bump_dataset_version()
            if self._meta is not None:
                # Persist the bump (and prune superseded stored envelopes)
                # so a restart does not resurrect pre-invalidation state.
                self._meta.record_dataset_version(
                    name, pipeline.context.dataset_version)
        self._cache.clear()
        self._negative.clear()

    def close(self) -> None:
        """Stop the per-dataset batcher threads; the service stops serving.

        With durability attached this is the graceful-shutdown path: the
        job worker checkpoints an in-flight RUNNING job back to PENDING
        and the metastore flushes its write-behind queue, so a restart
        against the same store resumes instead of recomputing.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            batchers = list(self._batchers.values())
        if self.jobs is not None:
            self.jobs.close(checkpoint=True)
        for batcher in batchers:
            batcher.close()
        if self._meta is not None:
            self._meta.flush()
            if self._owns_meta:
                self._meta.close()

    def __enter__(self) -> "ExplanationService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _batcher(self, dataset: str) -> MicroBatcher:
        with self._lock:
            batcher = self._batchers.get(dataset)
        if batcher is None:  # pragma: no cover - register() keeps them paired
            raise DatasetNotRegisteredError(f"dataset {dataset!r} is not registered")
        return batcher

    @staticmethod
    def _runner_for(pipeline: ExplanationPipeline):
        def run_batch(queries: Sequence[AggregateQuery],
                      k: Optional[int],
                      trace_captures: Optional[Sequence] = None,
                      ) -> Sequence[ExplanationEnvelope]:
            return pipeline.explain_many_envelopes(
                list(queries), k=k, trace_captures=trace_captures)
        return run_batch
