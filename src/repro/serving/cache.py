"""A bounded, thread-safe LRU cache with optional per-entry TTL.

The serving layer's explanation cache: keys are canonical query keys and
values are :class:`~repro.engine.envelope.ExplanationEnvelope` objects.  The
cache returns the *same* value object on every hit, which is what makes a
repeated request byte-identical — the service serializes the cached envelope
again, not a recomputed one.

The clock is injectable so the TTL behaviour is testable without sleeping.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from repro.exceptions import ConfigurationError


class TTLCache:
    """Bounded LRU mapping with an optional time-to-live per entry.

    Parameters
    ----------
    max_entries:
        Upper bound on the number of live entries; inserting past the bound
        evicts the least recently used entry.
    ttl_seconds:
        Optional expiry: entries older than this many seconds (by the
        injected clock) behave as absent and are evicted on access.
        ``None`` disables expiry.
    clock:
        Monotonic time source; injectable for tests.
    """

    def __init__(self, max_entries: int = 1024,
                 ttl_seconds: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic):
        if max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1, got {max_entries}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ConfigurationError(
                f"ttl_seconds must be positive (or None), got {ttl_seconds}")
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Tuple[float, Any]]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0
        self._sweeps = 0
        self._puts_since_sweep = 0

    #: Amortisation period of the expiry sweep: every this many ``put``
    #: calls the whole store is scanned for dead entries.  Expiry is
    #: otherwise lazy (per key, on ``get``), which under TTL churn leaves
    #: never-touched dead entries holding memory and inflating occupancy.
    SWEEP_EVERY = 64

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return self.get(key) is not None

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value, or ``None`` on a miss or an expired entry."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            stored_at, value = entry
            if self.ttl_seconds is not None and \
                    self._clock() - stored_at > self.ttl_seconds:
                del self._entries[key]
                self._expirations += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) an entry, evicting LRU entries past the bound.

        Every :data:`SWEEP_EVERY` puts an amortised full sweep drops all
        expired entries, so a TTL-churned cache cannot accumulate dead
        entries that no ``get`` ever touches again.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (self._clock(), value)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
            if self.ttl_seconds is not None:
                self._puts_since_sweep += 1
                if self._puts_since_sweep >= self.SWEEP_EVERY:
                    self._sweep_locked()

    def sweep(self) -> int:
        """Drop every expired entry now; returns how many were dropped."""
        if self.ttl_seconds is None:
            return 0
        with self._lock:
            return self._sweep_locked()

    def _sweep_locked(self) -> int:
        self._puts_since_sweep = 0
        self._sweeps += 1
        now = self._clock()
        dead = [key for key, (stored_at, _value) in self._entries.items()
                if now - stored_at > self.ttl_seconds]
        for key in dead:
            del self._entries[key]
        self._expirations += len(dead)
        return len(dead)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def sizes_by(self, selector: Callable[[Hashable], Any]) -> Dict[Any, int]:
        """Live-entry counts grouped by ``selector(key)``.

        The serving layer groups its canonical query keys by their dataset
        component, so ``GET /stats`` can report per-dataset cache
        occupancy from one shared cache.  Entries past their TTL are
        skipped — expiry is otherwise lazy (applied on ``get``), and an
        occupancy report must not count entries that can never be served.
        """
        sizes: Dict[Any, int] = {}
        with self._lock:
            now = self._clock() if self.ttl_seconds is not None else None
            for key, (stored_at, _value) in self._entries.items():
                if now is not None and now - stored_at > self.ttl_seconds:
                    continue
                group = selector(key)
                sizes[group] = sizes.get(group, 0) + 1
        return sizes

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction/expiration counters plus the current size."""
        with self._lock:
            return {
                "size": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "expirations": self._expirations,
                "sweeps": self._sweeps,
            }
