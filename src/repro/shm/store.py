"""The owner-side segment registry: generations, refcounts, unlink.

A :class:`FrameStore` lives in the process that *owns* the data — the
cluster front tier in keys mode, the shard coordinator in rows mode.  It
creates segments, hands out manifests, and answers the one lifecycle
question that matters: *when is it safe to unlink?*

Segments are grouped into **generations**, keyed by whatever identity the
consumer's cache layer already uses (a dataset's registration, a frame
warm-up batch riding a dataset version, a shard context key).  Readers —
worker indices — are attached to a generation when a manifest is shipped
to them and detached when they ack the release (or die; a restart drops
the dead worker from every generation).  ``retire`` marks a generation
dead; its segments unlink as soon as the reader set drains.  POSIX
semantics make the ordering forgiving: an unlinked segment stays mapped
for processes that already attached, so readers racing a retirement
finish on their old views and only the name disappears.

``close()`` force-unlinks everything — and the owner's segments are
resource-tracker-registered, so even an owner SIGKILL leaves ``/dev/shm``
clean.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Set, Tuple

from repro.shm.manifest import (
    FrameColumnManifest,
    FrameManifest,
    TableManifest,
    column_arrays,
    column_manifest,
)
from repro.shm.segments import create_segment


@dataclass
class _Generation:
    key: Any
    segments: List[str] = field(default_factory=list)
    readers: Set[Any] = field(default_factory=set)
    retired: bool = False


class FrameStore:
    """Owner-side registry of shared segments with refcounted retirement."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._segments: Dict[str, Any] = {}
        self._segment_bytes: Dict[str, int] = {}
        self._generations: Dict[Any, _Generation] = {}
        self._closed = False
        #: How many context frames this store encoded and published —
        #: the encode-once-per-box counter the memory benchmark asserts.
        self.frames_published = 0
        self.segments_unlinked = 0

    # ------------------------------------------------------------------ #
    # publication
    # ------------------------------------------------------------------ #
    def put_arrays(self, generation: Any, arrays: Dict[str, Any]) -> Dict[str, Any]:
        """Pack ``arrays`` into one new segment under ``generation``."""
        with self._lock:
            if self._closed:
                raise RuntimeError("FrameStore is closed")
            record = self._generations.get(generation)
            if record is not None and record.retired:
                raise RuntimeError(
                    f"generation {generation!r} is retired; publish under a "
                    f"fresh generation")
            shm, refs, size = create_segment(arrays)
            if record is None:
                record = _Generation(key=generation)
                self._generations[generation] = record
            self._segments[shm.name] = shm
            self._segment_bytes[shm.name] = size
            record.segments.append(shm.name)
            return refs

    def put_table(self, generation: Any, dataset: str, table) -> TableManifest:
        """Publish a whole table as one segment; returns its manifest."""
        arrays: Dict[str, Any] = {}
        columns = [table.column(name) for name in table.column_names]
        for column in columns:
            arrays.update(column_arrays(column))
        refs = self.put_arrays(generation, arrays)
        segment_names = tuple(sorted({ref.segment for ref in refs.values()})) \
            if refs else ()
        nbytes = sum(self._segment_bytes.get(name, 0)
                     for name in segment_names)
        return TableManifest(
            dataset=dataset, table_name=table.name, n_rows=table.n_rows,
            columns=tuple(column_manifest(column, refs)
                          for column in columns),
            segments=segment_names, nbytes=nbytes)

    def put_frame(self, generation: Any, dataset: str, key: Tuple[Any, ...],
                  frame, column_names: Sequence[str]) -> FrameManifest:
        """Publish one encoded frame's code arrays; returns its manifest."""
        arrays = {f"codes:{name}": frame.codes(name) for name in column_names}
        refs = self.put_arrays(generation, arrays)
        segment_names = tuple(sorted({ref.segment for ref in refs.values()})) \
            if refs else ()
        nbytes = sum(self._segment_bytes.get(name, 0)
                     for name in segment_names)
        with self._lock:
            self.frames_published += 1
        return FrameManifest(
            dataset=dataset, key=tuple(key), n_rows=frame.n_rows,
            n_bins=frame.n_bins, strategy=frame.strategy,
            columns=tuple(FrameColumnManifest(
                name=name, codes=refs[f"codes:{name}"],
                categories=tuple(frame.categories(name)))
                for name in column_names),
            segments=segment_names, nbytes=nbytes)

    # ------------------------------------------------------------------ #
    # readers and retirement
    # ------------------------------------------------------------------ #
    def attach_reader(self, generation: Any, reader: Any) -> None:
        """Record that ``reader`` received a manifest of ``generation``."""
        with self._lock:
            record = self._generations.get(generation)
            if record is not None:
                record.readers.add(reader)

    def detach_reader(self, generation: Any, reader: Any) -> None:
        """Drop one reader; unlinks the generation once retired + drained."""
        with self._lock:
            record = self._generations.get(generation)
            if record is None:
                return
            record.readers.discard(reader)
            self._maybe_unlink_locked(record)

    def drop_reader(self, reader: Any) -> None:
        """Drop ``reader`` from every generation (worker died/restarted)."""
        with self._lock:
            for record in list(self._generations.values()):
                record.readers.discard(reader)
                self._maybe_unlink_locked(record)

    def retire(self, generation: Any) -> None:
        """Mark a generation dead; unlink as soon as readers drain."""
        with self._lock:
            record = self._generations.get(generation)
            if record is None:
                return
            record.retired = True
            self._maybe_unlink_locked(record)

    def retire_matching(self, predicate: Callable[[Any], bool]) -> List[Any]:
        """Retire every generation whose key satisfies ``predicate``."""
        with self._lock:
            matched = [record for record in list(self._generations.values())
                       if predicate(record.key)]
            for record in matched:
                record.retired = True
                self._maybe_unlink_locked(record)
            return [record.key for record in matched]

    def generation_segments(self, generation: Any) -> List[str]:
        """Segment names currently held by ``generation`` (empty if gone)."""
        with self._lock:
            record = self._generations.get(generation)
            return list(record.segments) if record is not None else []

    def generations(self) -> List[Any]:
        """Keys of the live (not yet unlinked) generations."""
        with self._lock:
            return list(self._generations)

    # ------------------------------------------------------------------ #
    # teardown and observability
    # ------------------------------------------------------------------ #
    def _maybe_unlink_locked(self, record: _Generation) -> None:
        if not record.retired or record.readers:
            return
        for name in record.segments:
            self._unlink_segment_locked(name)
        self._generations.pop(record.key, None)

    def _unlink_segment_locked(self, name: str) -> None:
        shm = self._segments.pop(name, None)
        self._segment_bytes.pop(name, None)
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:  # pragma: no cover - owner keeps no views
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        self.segments_unlinked += 1

    def close(self) -> None:
        """Force-unlink every segment regardless of readers (idempotent).

        Readers that still hold views keep their mappings (POSIX unlink
        only removes the name); fresh attachments become impossible, which
        is the point — the owner is going away.
        """
        with self._lock:
            self._closed = True
            for record in list(self._generations.values()):
                record.retired = True
                record.readers.clear()
                self._maybe_unlink_locked(record)

    def __del__(self):  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    def stats(self) -> Dict[str, Any]:
        """Segment counts and bytes for ``stats()`` / the /metrics gauges."""
        with self._lock:
            return {
                "segments": len(self._segments),
                "bytes": int(sum(self._segment_bytes.values())),
                "generations": len(self._generations),
                "frames_published": self.frames_published,
                "segments_unlinked": self.segments_unlinked,
            }
