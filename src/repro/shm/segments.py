"""Shared-memory segments: creation, picklable array refs, attachment.

One segment packs several arrays back to back (64-byte aligned), so a
table or an encoded frame costs one ``shm_open`` rather than one per
column.  An :class:`ArrayRef` is the picklable address of one array
inside a segment; :class:`SegmentAttachments` is the per-process cache of
attached segments that turns refs into **read-only** numpy views.

Resource-tracker discipline
---------------------------
CPython's ``multiprocessing.resource_tracker`` unlinks every shared
segment a process registered when that process dies — including segments
the process merely *attached* to (bpo-38119).  A SIGKILLed worker would
therefore tear the shared dataset out from under its siblings.  The
attachment path here never registers: it passes ``track=False`` where
supported (Python 3.13+) and unregisters the fresh registration otherwise.
The **owner** keeps its registration, so an owner crash still cleans
``/dev/shm`` — exactly the asymmetry the ownership model wants.
"""

from __future__ import annotations

import os
import secrets
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

try:  # pragma: no cover - import always succeeds on CPython >= 3.8
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platform without _posixshmem
    _shared_memory = None  # type: ignore[assignment]

#: Per-array alignment inside a segment; matches cache-line size so
#: vectorised kernels never straddle a line because of packing.
_ALIGN = 64

_probe_lock = threading.Lock()
_probe_result: Optional[bool] = None

#: Test hook: force :func:`shm_available` to report False so the
#: copy-path fallback is exercisable on platforms that do have shm.
FORCE_UNAVAILABLE = False


def shm_available() -> bool:
    """Whether POSIX shared memory actually works on this platform.

    Probed once per process by creating (and immediately unlinking) a
    tiny segment — importability of the module does not imply a usable
    ``/dev/shm`` (containers may mount none, or mount it read-only).
    """
    global _probe_result
    if FORCE_UNAVAILABLE or _shared_memory is None:
        return False
    with _probe_lock:
        if _probe_result is None:
            try:
                probe = _shared_memory.SharedMemory(create=True, size=16)
                probe.close()
                probe.unlink()
                _probe_result = True
            except Exception:
                _probe_result = False
        return _probe_result


@dataclass(frozen=True)
class ArrayRef:
    """The picklable address of one array inside a shared segment."""

    segment: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        """Size of the referenced array in bytes."""
        count = 1
        for extent in self.shape:
            count *= int(extent)
        return int(np.dtype(self.dtype).itemsize) * count


def new_segment_name() -> str:
    """A collision-resistant, owner-identifying segment name.

    The ``repro_shm_<pid>`` prefix makes leak audits trivial: any entry
    under ``/dev/shm`` matching it after the owner exited is a bug.
    """
    return f"repro_shm_{os.getpid()}_{secrets.token_hex(6)}"


def create_segment(arrays: Mapping[str, np.ndarray]):
    """Pack ``arrays`` into one fresh shared segment.

    Returns ``(shm, refs, size)``: the owner-side ``SharedMemory`` handle
    (tracked, so an owner crash unlinks it), a dict of
    :class:`ArrayRef` per input key, and the segment size in bytes.
    Object-dtype arrays cannot live in shared memory — callers ship codes
    plus a category list instead.
    """
    if not shm_available():
        raise RuntimeError("POSIX shared memory is not available")
    prepared: Dict[str, np.ndarray] = {}
    offsets: Dict[str, int] = {}
    cursor = 0
    for key, array in arrays.items():
        contiguous = np.ascontiguousarray(array)
        if contiguous.dtype == object:
            raise TypeError(
                f"array {key!r} has object dtype; shared segments hold "
                f"fixed-width arrays only (ship codes + categories instead)")
        prepared[key] = contiguous
        offsets[key] = cursor
        cursor += contiguous.nbytes
        cursor = (cursor + _ALIGN - 1) // _ALIGN * _ALIGN
    size = max(cursor, 1)
    shm = _shared_memory.SharedMemory(name=new_segment_name(), create=True,
                                      size=size)
    refs: Dict[str, ArrayRef] = {}
    for key, contiguous in prepared.items():
        view = np.ndarray(contiguous.shape, dtype=contiguous.dtype,
                          buffer=shm.buf, offset=offsets[key])
        view[...] = contiguous
        refs[key] = ArrayRef(segment=shm.name, dtype=contiguous.dtype.str,
                             shape=tuple(contiguous.shape),
                             offset=offsets[key])
        del view  # keep no buffer exports: the owner must be able to close
    return shm, refs, size


_attach_patch_lock = threading.Lock()


def attach_untracked(name: str):
    """Attach an existing segment WITHOUT registering with the tracker.

    See the module docstring: an attached-only process must never be the
    one whose death unlinks the segment.  On Python < 3.13 (no ``track``
    parameter) registration is *suppressed* during the constructor rather
    than unregistered afterwards: the resource tracker is one process
    shared by the whole process tree and keys its cache by segment name,
    so an unregister from an attacher would silently strip the **owner's**
    registration — exactly the crash-cleanup guarantee being preserved.
    """
    if _shared_memory is None:  # pragma: no cover - guarded by callers
        raise RuntimeError("POSIX shared memory is not available")
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    with _attach_patch_lock:
        original = resource_tracker.register

        def _skip_shared_memory(resource_name, rtype):
            if rtype != "shared_memory":  # pragma: no cover - shm only here
                original(resource_name, rtype)

        resource_tracker.register = _skip_shared_memory
        try:
            return _shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class SegmentAttachments:
    """A per-process cache of attached segments and their views.

    Attaching the same segment for a second array is free; the cache also
    gives observability an honest count of what this process maps.
    ``release`` drops handles best-effort: a handle whose buffer is still
    exported by live views stays mapped (``BufferError``) and is reclaimed
    at process exit — the owner's *unlink* is what frees ``/dev/shm``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._segments: Dict[str, object] = {}
        self.attach_total = 0

    def attach(self, ref: ArrayRef) -> np.ndarray:
        """A read-only numpy view over the referenced shared array.

        Built with :func:`np.frombuffer`, NOT ``np.ndarray(buffer=...)``:
        the latter unwraps the memoryview to the raw mmap and drops the
        buffer export, so nothing stops ``SharedMemory.close`` from
        unmapping under a live view (a use-after-unmap segfault if the
        handle is ever collected first).  ``frombuffer`` keeps a
        memoryview base holding a real export — the view itself pins the
        mapping, whatever happens to this cache.
        """
        with self._lock:
            shm = self._segments.get(ref.segment)
            if shm is None:
                shm = attach_untracked(ref.segment)
                self._segments[ref.segment] = shm
                self.attach_total += 1
        count = 1
        for extent in ref.shape:
            count *= int(extent)
        flat = np.frombuffer(shm.buf, dtype=np.dtype(ref.dtype),
                             count=count, offset=ref.offset)
        flat.flags.writeable = False
        return flat.reshape(ref.shape)

    def release(self, names: Iterable[str]) -> int:
        """Drop the named segment handles (best-effort close)."""
        dropped = 0
        with self._lock:
            for name in list(names):
                shm = self._segments.pop(name, None)
                if shm is None:
                    continue
                try:
                    shm.close()
                except BufferError:
                    # Live views still export the mapping.  Neutralise the
                    # handle so its __del__ cannot retry (and spew
                    # "Exception ignored" noise): the map stays for the
                    # views and is reclaimed at process exit — the owner's
                    # unlink already freed the /dev/shm entry.
                    shm._mmap = None
                dropped += 1
        return dropped

    def release_all(self) -> int:
        """Drop every attached segment handle."""
        with self._lock:
            names = list(self._segments)
        return self.release(names)

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.release_all()
        except Exception:
            pass

    def stats(self) -> Dict[str, int]:
        """Attachment counters for observability."""
        with self._lock:
            attached_bytes = sum(int(getattr(shm, "size", 0))
                                 for shm in self._segments.values())
            return {
                "attached_segments": len(self._segments),
                "attached_bytes": attached_bytes,
                "attach_total": self.attach_total,
            }


_process_attachments = SegmentAttachments()


def attachments() -> SegmentAttachments:
    """The process-wide attachment cache (workers share one per process)."""
    return _process_attachments


def _reset_after_fork() -> None:
    """Fork children start with an empty cache and zeroed counters.

    A forked worker inherits the parent's mappings either way; what it
    must not inherit is the *bookkeeping* — its attach counters describe
    this process, and re-attaching is cheap.
    """
    global _process_attachments
    _process_attachments = SegmentAttachments()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX only
    os.register_at_fork(after_in_child=_reset_after_fork)

