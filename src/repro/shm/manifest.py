"""Picklable manifests and the worker-side zero-copy rebuild.

A manifest is what crosses the process boundary *instead of* the data: a
few hundred bytes of segment names, dtypes, shapes and offsets (plus the
small category lists of string/bool columns).  The rebuild functions turn
a manifest back into the live objects the engine consumes:

* :func:`table_from_manifest` — a :class:`~repro.table.table.Table` whose
  numeric storage arrays and missing masks are **read-only views** over
  the shared segments (zero copy).  String and bool columns cannot live
  in shared memory as objects; they ship as int64 codes plus their
  category list and are rebuilt as an 8-bytes-per-row pointer array whose
  pointees are the shared per-category Python objects — O(categories)
  heap objects instead of O(rows).
* :func:`frame_from_manifest` — an
  :class:`~repro.infotheory.encoding.EncodedFrame` whose per-column code
  arrays are views, pre-filled so the frame never re-encodes what the
  owner already encoded (the ``warm()`` encode-once-per-box path).

Determinism note: the rebuild must be *observationally identical* to the
original table — same values, same dtypes, same missing cells — because
served envelopes are asserted byte-identical to the single-process
engine.  Both column families satisfy this: numeric columns share the
very arrays, and categorical columns reconstruct the exact value objects
the owner factorised (``Column.codes`` is a deterministic sorted
factorisation, so re-encoding the rebuilt column reproduces the owner's
codes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

import numpy as np

from repro.shm.segments import ArrayRef, SegmentAttachments, attachments
from repro.table.column import Column, DType
from repro.table.table import Table


@dataclass(frozen=True)
class ColumnManifest:
    """One column's address: either numeric storage or codes + categories."""

    name: str
    dtype: str
    missing: ArrayRef
    values: Optional[ArrayRef] = None
    codes: Optional[ArrayRef] = None
    categories: Optional[Tuple[Any, ...]] = None


@dataclass(frozen=True)
class TableManifest:
    """The shared-memory address of one registered table."""

    dataset: str
    table_name: str
    n_rows: int
    columns: Tuple[ColumnManifest, ...]
    segments: Tuple[str, ...]
    nbytes: int


@dataclass(frozen=True)
class FrameColumnManifest:
    """One pre-encoded frame column: shared codes + its category list."""

    name: str
    codes: ArrayRef
    categories: Tuple[Any, ...]


@dataclass(frozen=True)
class FrameManifest:
    """The shared-memory address of one pre-encoded context frame.

    ``key`` is the frame-cache identity *without* the dataset version —
    ``(hops, n_bins, canonical context predicate)`` — because adoption is
    version-agnostic: a version bump drops the adoption map wholesale
    (see :meth:`repro.engine.context.PipelineContext.bump_dataset_version`).
    """

    dataset: str
    key: Tuple[Any, ...]
    n_rows: int
    n_bins: int
    strategy: str
    columns: Tuple[FrameColumnManifest, ...]
    segments: Tuple[str, ...]
    nbytes: int


def column_arrays(column: Column) -> dict:
    """The fixed-width arrays a column contributes to its segment.

    Numeric columns ship their float64 storage directly; categorical
    columns ship their factorised int64 codes (the categories stay in the
    manifest — they are O(distinct values), not O(rows)).
    """
    arrays = {f"missing:{column.name}": column.missing_mask}
    if column.dtype.is_numeric:
        arrays[f"values:{column.name}"] = column.values
    else:
        codes, _ = column.codes()
        arrays[f"codes:{column.name}"] = codes
    return arrays


def column_manifest(column: Column, refs: dict) -> ColumnManifest:
    """Assemble one :class:`ColumnManifest` from the segment refs."""
    if column.dtype.is_numeric:
        return ColumnManifest(
            name=column.name, dtype=column.dtype.value,
            missing=refs[f"missing:{column.name}"],
            values=refs[f"values:{column.name}"])
    _, categories = column.codes()
    return ColumnManifest(
        name=column.name, dtype=column.dtype.value,
        missing=refs[f"missing:{column.name}"],
        codes=refs[f"codes:{column.name}"],
        categories=tuple(categories))


def table_from_manifest(manifest: TableManifest,
                        cache: Optional[SegmentAttachments] = None) -> Table:
    """Rebuild a table as read-only views over the shared segments."""
    cache = cache or attachments()
    columns = []
    for entry in manifest.columns:
        dtype = DType(entry.dtype)
        missing = cache.attach(entry.missing)
        if entry.values is not None:
            values = cache.attach(entry.values)
        else:
            codes = cache.attach(entry.codes)
            # ``lookup[-1]`` is None, so the -1 missing sentinel resolves
            # to a missing cell in one vectorised fancy-index pass.
            lookup = np.empty(len(entry.categories) + 1, dtype=object)
            for index, category in enumerate(entry.categories):
                lookup[index] = category
            lookup[-1] = None
            values = lookup[codes]
        columns.append(Column.from_numpy(entry.name, values, dtype, missing))
    return Table(columns, name=manifest.table_name)


def frame_from_manifest(manifest: FrameManifest, context_table: Table,
                        cache: Optional[SegmentAttachments] = None):
    """Rebuild a pre-encoded frame over a locally-built context table.

    The caller supplies the context-restricted table (filtering is cheap
    and deterministic); the expensive part — per-column factorisation —
    arrives as shared views.  A row-count mismatch means the adopter's
    table diverged from the owner's (different dataset state), and the
    caller must fall back to encoding locally.
    """
    from repro.infotheory.encoding import EncodedFrame

    if context_table.n_rows != manifest.n_rows:
        raise ValueError(
            f"context table has {context_table.n_rows} rows but the shared "
            f"frame was encoded over {manifest.n_rows}")
    cache = cache or attachments()
    frame = EncodedFrame(context_table, n_bins=manifest.n_bins,
                         strategy=manifest.strategy)
    for entry in manifest.columns:
        frame.install_encoding(entry.name, cache.attach(entry.codes),
                               list(entry.categories))
    return frame
