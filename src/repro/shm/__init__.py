"""Zero-copy shared-memory frame store.

The serving tier's memory problem is multiplicative: every replica worker
of a :class:`~repro.serving.cluster.ServiceCluster` holds a full copy of
each registered table, and every worker re-encodes the same hot contexts
the others already encoded.  A box that could run 32 workers runs 4.

This package collapses per-worker residency to O(1).  The owner process
packs the dataset's storage arrays — numeric value arrays, missing masks,
integer code arrays and their (small) category lists — into
``multiprocessing.shared_memory`` segments and describes them with a
**manifest**: a tiny picklable record mapping each array to
``(segment name, dtype, shape, offset)``.  Workers receive the manifest
instead of the arrays and attach **read-only numpy views** over the shared
segments — no pickle, no copy, no copy-on-write page faults (the arrays
are never written after creation).

Three layers:

* :mod:`repro.shm.segments` — segment creation and attachment.  The
  attachment path is *resource-tracker-safe*: a worker registers nothing
  with the multiprocessing resource tracker, so a SIGKILLed worker cannot
  drag shared segments down with it, while the owner keeps its
  registration so an owner crash still cleans ``/dev/shm``.
* :mod:`repro.shm.manifest` — picklable manifests plus the worker-side
  rebuild: a :class:`~repro.table.table.Table` whose numeric columns are
  zero-copy views, and pre-encoded
  :class:`~repro.infotheory.encoding.EncodedFrame` instances whose code
  arrays are views (the encode-once-per-box path behind ``warm()``).
* :mod:`repro.shm.store` — the owner-side :class:`FrameStore` registry.
  Segments are grouped into *generations* that ride the dataset-version
  cache key; retiring a generation unlinks its segments only once every
  reader has detached (refcounted unlink), and ``close()`` force-unlinks
  everything.  Unlinking with live maps is safe on POSIX: readers that
  attached before a version bump finish on their old views.

Platforms without POSIX shared memory (or with ``/dev/shm`` unusable)
report :func:`shm_available` as False and every consumer falls back to
the classic copy path.
"""

from repro.shm.manifest import (
    ColumnManifest,
    FrameColumnManifest,
    FrameManifest,
    TableManifest,
    frame_from_manifest,
    table_from_manifest,
)
from repro.shm.segments import (
    ArrayRef,
    SegmentAttachments,
    attachments,
    shm_available,
)
from repro.shm.store import FrameStore

__all__ = [
    "ArrayRef",
    "ColumnManifest",
    "FrameColumnManifest",
    "FrameManifest",
    "FrameStore",
    "SegmentAttachments",
    "TableManifest",
    "attachments",
    "frame_from_manifest",
    "shm_available",
    "table_from_manifest",
]
