"""Durable storage substrate for the serving stack.

Everything in the serving tiers used to die with the process: envelope
caches, recorded query history, in-flight batch work.  This package is
the storage substrate that survives — one SQLite file (WAL mode) behind
a :class:`~repro.storage.metastore.MetaStore`, shared by

* the **durable envelope store** (:mod:`repro.storage.envelopes`)
  backing the in-memory TTL cache: misses fall through to disk before
  the engine, writes are asynchronous write-behind, and a restarted
  service re-warms the top-K recorded queries from its own history;
* the **job table** consumed by :mod:`repro.jobs`: a
  ``PENDING -> RUNNING -> (DONE | FAILED | CANCELLED)`` state machine
  with heartbeats and owner-epoch crash recovery;
* durable **dataset versions**, so a restarted process mints cache keys
  that match what it stored before dying.

All writes funnel through a single writer thread consuming a queue, so
HTTP threads never block on fsync; reads use per-thread connections
(WAL lets them proceed concurrently with the writer).
"""

from repro.storage.metastore import MetaStore
from repro.storage.envelopes import DurableEnvelopeStore

__all__ = ["MetaStore", "DurableEnvelopeStore"]
