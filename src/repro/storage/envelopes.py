"""The durable envelope store: disk tier behind the in-memory TTL cache.

Lookups key on a digest of the canonical query key (minus its trailing
dataset-version component, which is passed separately — the store keeps
the version as a queryable column so superseded generations can be
pruned).  Misses in the in-memory cache fall through here before they
reach the engine; writes are asynchronous write-behind through the
:class:`~repro.storage.metastore.MetaStore` writer thread, so the serving
hot path never waits on fsync.
"""

from __future__ import annotations

import hashlib
import json
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.envelope import ExplanationEnvelope
from repro.storage.metastore import MetaStore


def key_digest(key: Sequence) -> str:
    """Stable hex digest of a canonical query key (or any tuple).

    Mirrors :func:`repro.table.expressions.stable_key_digest` (sha1 over
    ``repr(tuple(key))``) but keeps the full 40-hex-character digest —
    these are persistent primary-key components, not in-memory routing
    hashes, so collision resistance matters more than integer width.
    """
    return hashlib.sha1(repr(tuple(key)).encode("utf-8")).hexdigest()


class DurableEnvelopeStore:
    """Envelope persistence + recorded query history over a MetaStore."""

    def __init__(self, meta: MetaStore):
        self.meta = meta
        self._lock = threading.Lock()
        self._counters = {"hits": 0, "misses": 0, "writes": 0,
                          "queries_recorded": 0}

    # ------------------------------------------------------------------ #
    # envelopes
    # ------------------------------------------------------------------ #
    def get(self, dataset: str, version: int,
            key: Sequence) -> Optional[ExplanationEnvelope]:
        """The stored envelope for a canonical key at ``version``, if any.

        ``key`` is the *full* canonical key (version last); the digest is
        computed over ``key[:-1]`` so it matches what :meth:`put` wrote.
        """
        payload = self.meta.get_envelope(dataset, key_digest(key[:-1]),
                                         version)
        if payload is None:
            with self._lock:
                self._counters["misses"] += 1
            return None
        envelope = ExplanationEnvelope.from_json(payload)
        with self._lock:
            self._counters["hits"] += 1
        return envelope

    def put(self, dataset: str, version: int, key: Sequence,
            envelope: ExplanationEnvelope) -> None:
        """Write-behind persist of one envelope (never blocks)."""
        self.meta.put_envelope(dataset, key_digest(key[:-1]), version,
                               envelope.to_json())
        with self._lock:
            self._counters["writes"] += 1

    # ------------------------------------------------------------------ #
    # recorded query history (restart re-warm)
    # ------------------------------------------------------------------ #
    def record_query(self, dataset: str, key_without_version: Sequence,
                     payload: Dict[str, object], k: Optional[int]) -> None:
        """Record one request for the top-K restart re-warm (write-behind).

        ``payload`` is the wire-form query
        (:func:`repro.serving.schema.query_payload`), i.e. exactly what a
        fresh process can parse back into an ``AggregateQuery`` without
        any live objects surviving the restart.
        """
        self.meta.record_query(dataset, key_digest(key_without_version),
                               json.dumps(payload, sort_keys=True), k)
        with self._lock:
            self._counters["queries_recorded"] += 1

    def top_queries(self, dataset: str,
                    limit: int) -> List[Tuple[Dict[str, object],
                                              Optional[int], int]]:
        """Most-requested recorded queries: (payload_dict, k, hits)."""
        out = []
        for payload_json, k, hits in self.meta.top_queries(dataset, limit):
            try:
                payload = json.loads(payload_json)
            except ValueError:
                continue
            out.append((payload, k, hits))
        return out

    # ------------------------------------------------------------------ #
    # lifecycle / observability
    # ------------------------------------------------------------------ #
    def flush(self, timeout: Optional[float] = None) -> bool:
        return self.meta.flush(timeout)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            counters = dict(self._counters)
        counters["pending_writes"] = self.meta.pending_writes
        counters["meta"] = self.meta.stats()
        return counters
