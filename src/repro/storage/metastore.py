"""The :class:`MetaStore`: one SQLite file behind a single writer thread.

Design constraints, in order:

* **Serving threads never block on fsync.**  Every mutation is an *op*
  enqueued to one writer thread that owns the only write connection;
  hot-path writes (envelope put, history upsert, job progress) are
  fire-and-forget, while job *state transitions* submit the op and wait
  for the commit — a job must not report RUNNING before the row says so.
* **Crash recovery is the common case, not the exception.**  Every open
  bumps a persistent ``owner_epoch``; RUNNING jobs whose ``owner_epoch``
  differs from the current one belonged to a dead process and are
  re-queued by :meth:`requeue_stale_running`.  Completed per-query job
  results live in ``job_results`` keyed by position, so a resumed job
  skips its completed prefix.
* **Multi-process friendly.**  WAL mode plus a busy timeout lets a
  cluster front tier and N worker processes share the file: one write
  connection per process, many read connections, no cross-process
  coordination beyond SQLite's own locking.

The schema (one row per envelope / query / dataset / job):

``meta``         key/value strings (currently just ``owner_epoch``).
``datasets``     name -> last recorded dataset version (monotonic).
``envelopes``    (dataset, digest, version) -> envelope JSON.
``history``      (dataset, digest-without-version) -> query payload JSON
                 + hit count, feeding restart re-warm.
``jobs``         the job state machine (see :mod:`repro.jobs`).
``job_results``  (job_id, position) -> envelope JSON: the completed
                 prefix a resumed job starts after.
"""

from __future__ import annotations

import json
import os
import queue
import sqlite3
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.exceptions import ConfigurationError

#: Terminal job states — jobs in these states are never claimed or resumed.
JOB_TERMINAL_STATES = ("DONE", "FAILED", "CANCELLED")
JOB_STATES = ("PENDING", "RUNNING") + JOB_TERMINAL_STATES

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS datasets (
    name    TEXT PRIMARY KEY,
    version INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS envelopes (
    dataset    TEXT NOT NULL,
    digest     TEXT NOT NULL,
    version    INTEGER NOT NULL,
    envelope   TEXT NOT NULL,
    hits       INTEGER NOT NULL DEFAULT 0,
    updated_at REAL NOT NULL,
    PRIMARY KEY (dataset, digest, version)
);
CREATE TABLE IF NOT EXISTS history (
    dataset    TEXT NOT NULL,
    digest     TEXT NOT NULL,
    payload    TEXT NOT NULL,
    k          INTEGER,
    hits       INTEGER NOT NULL DEFAULT 1,
    updated_at REAL NOT NULL,
    PRIMARY KEY (dataset, digest)
);
CREATE TABLE IF NOT EXISTS jobs (
    id             TEXT PRIMARY KEY,
    kind           TEXT NOT NULL,
    dataset        TEXT NOT NULL,
    payload        TEXT NOT NULL,
    state          TEXT NOT NULL,
    owner_epoch    INTEGER NOT NULL,
    created_at     REAL NOT NULL,
    updated_at     REAL NOT NULL,
    heartbeat_at   REAL,
    progress_done  INTEGER NOT NULL DEFAULT 0,
    progress_total INTEGER NOT NULL DEFAULT 0,
    error          TEXT,
    result         TEXT
);
CREATE TABLE IF NOT EXISTS job_results (
    job_id     TEXT NOT NULL,
    position   INTEGER NOT NULL,
    digest     TEXT,
    envelope   TEXT NOT NULL,
    created_at REAL NOT NULL,
    PRIMARY KEY (job_id, position)
);
"""

_JOB_COLUMNS = ("id", "kind", "dataset", "payload", "state", "owner_epoch",
                "created_at", "updated_at", "heartbeat_at", "progress_done",
                "progress_total", "error", "result")


class _ForkGate:
    """Mutual exclusion between SQLite activity and ``os.fork``.

    SQLite's serialized-mode static mutexes are plain pthread mutexes: a
    ``fork()`` that lands while *any* thread of this process is inside a
    SQLite call copies those mutexes into the child in their locked state,
    with no thread left to unlock them — the child then deadlocks forever
    on its very first ``sqlite3.connect``.  (Observed in practice: the
    metastore writer thread opening its connection while the serving
    cluster forks a worker.)

    Every SQLite touchpoint in this module enters the gate as a *reader*
    (``with _FORK_GATE:``), and an ``os.register_at_fork`` before-handler
    enters it *exclusively* — the fork waits for in-flight SQLite calls to
    drain, and SQLite calls wait out the fork.  Sections must not nest:
    the gate is deliberately non-reentrant so a waiting fork can never be
    starved by a reader re-entering behind it.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active = 0
        self._forking = False

    def __enter__(self) -> "_ForkGate":
        with self._cond:
            while self._forking:
                self._cond.wait()
            self._active += 1
        return self

    def __exit__(self, *_exc) -> None:
        with self._cond:
            self._active -= 1
            if self._active == 0:
                self._cond.notify_all()

    def begin_fork(self) -> None:
        with self._cond:
            while self._forking:  # a concurrent fork: take turns
                self._cond.wait()
            self._forking = True
            while self._active:
                self._cond.wait()

    def end_fork(self) -> None:
        with self._cond:
            self._forking = False
            self._cond.notify_all()

    def reset_in_child(self) -> None:
        # The child starts with one thread (the forker); rebuild the gate
        # outright rather than trusting inherited waiter state.
        self._cond = threading.Condition()
        self._active = 0
        self._forking = False


#: Process-wide: SQLite's static mutexes are process-global, so one gate
#: covers every store (and every future one) in this process.
_FORK_GATE = _ForkGate()

if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX build
    os.register_at_fork(before=_FORK_GATE.begin_fork,
                        after_in_parent=_FORK_GATE.end_fork,
                        after_in_child=_FORK_GATE.reset_in_child)


class _SyncOp:
    """A write op whose submitter waits for the commit (or the error)."""

    __slots__ = ("fn", "event", "result", "error")

    def __init__(self, fn: Callable[[sqlite3.Connection], object]):
        self.fn = fn
        self.event = threading.Event()
        self.result: object = None
        self.error: Optional[BaseException] = None


class MetaStore:
    """Durable metadata store over one SQLite file (WAL, single writer).

    Parameters
    ----------
    path:
        Filesystem path of the database; parent directories are created.
    busy_timeout_ms:
        How long SQLite waits on a cross-process write lock before
        raising — generous by default, the writer thread is the only
        contender within a process.
    """

    def __init__(self, path: Union[str, Path],
                 busy_timeout_ms: int = 10_000):
        self.path = str(path)
        self._busy_timeout_ms = busy_timeout_ms
        Path(self.path).expanduser().resolve().parent.mkdir(
            parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._closed = False
        self._counters = {"writes_enqueued": 0, "writes_committed": 0,
                          "write_errors": 0, "flushes": 0}
        self.last_write_error: Optional[str] = None
        # Bootstrap synchronously: schema + epoch bump must be visible
        # before __init__ returns (callers read immediately after open).
        # BEGIN IMMEDIATE serialises the read-modify-write across
        # concurrent process opens, so two openers never mint one epoch.
        with _FORK_GATE:
            bootstrap = self._connect()
            try:
                bootstrap.executescript(_SCHEMA)
                bootstrap.execute("BEGIN IMMEDIATE")
                row = bootstrap.execute(
                    "SELECT value FROM meta WHERE key = 'owner_epoch'"
                ).fetchone()
                self.epoch = (int(row[0]) if row else 0) + 1
                bootstrap.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES "
                    "('owner_epoch', ?)", (str(self.epoch),))
                bootstrap.commit()
            finally:
                bootstrap.close()
        self._queue: "queue.Queue[object]" = queue.Queue()
        self._read_conns: List[sqlite3.Connection] = []
        self._read_local = threading.local()
        self._writer = threading.Thread(
            target=self._writer_loop, name=f"repro-metastore-{os.getpid()}",
            daemon=True)
        self._writer.start()

    # ------------------------------------------------------------------ #
    # connections and the writer thread
    # ------------------------------------------------------------------ #
    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=self._busy_timeout_ms / 1000)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute(f"PRAGMA busy_timeout={self._busy_timeout_ms}")
        return conn

    def _read_conn(self) -> sqlite3.Connection:
        """Caller must hold ``_FORK_GATE`` (see :meth:`_read_one`)."""
        conn = getattr(self._read_local, "conn", None)
        if conn is None:
            conn = self._connect()
            self._read_local.conn = conn
            with self._lock:
                self._read_conns.append(conn)
        return conn

    def _read_one(self, sql: str, params: Tuple = ()) -> Optional[Tuple]:
        with _FORK_GATE:
            return self._read_conn().execute(sql, params).fetchone()

    def _read_all(self, sql: str, params: Tuple = ()) -> List[Tuple]:
        with _FORK_GATE:
            return self._read_conn().execute(sql, params).fetchall()

    def _writer_loop(self) -> None:
        with _FORK_GATE:
            conn = self._connect()
        try:
            while True:
                op = self._queue.get()
                if op is None:
                    break
                batch = [op]
                # Drain whatever else is already queued (bounded), so one
                # commit — one WAL sync — covers many write-behind ops.
                while len(batch) < 256:
                    try:
                        extra = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    if extra is None:
                        self._queue.put(None)  # re-post the stop sentinel
                        break
                    batch.append(extra)
                with _FORK_GATE:
                    self._apply_batch(conn, batch)
        finally:
            with _FORK_GATE:
                conn.close()

    def _apply_batch(self, conn: sqlite3.Connection, batch: List) -> None:
        try:
            synced = []
            for op in batch:
                if isinstance(op, _SyncOp):
                    synced.append((op, op.fn(conn)))
                else:
                    op(conn)
            conn.commit()
            with self._lock:
                self._counters["writes_committed"] += len(batch)
            # Sync submitters observe their result only *after* the commit.
            for op, result in synced:
                op.result = result
                op.event.set()
        except BaseException as error:
            conn.rollback()
            if len(batch) == 1:
                op = batch[0]
                with self._lock:
                    self._counters["write_errors"] += 1
                    self.last_write_error = repr(error)
                if isinstance(op, _SyncOp):
                    op.error = error  # propagate to the submitter
                    op.event.set()
                # Async write-behind: recorded, never kills the writer.
                return
            # One bad op poisoned the batch; retry individually so the
            # good ones still land and only the bad one reports an error.
            for op in batch:
                self._apply_batch(conn, [op])

    def _submit_async(self, fn: Callable[[sqlite3.Connection], None]) -> None:
        if self._closed:
            return
        with self._lock:
            self._counters["writes_enqueued"] += 1
        self._queue.put(fn)

    def _submit_sync(self, fn: Callable[[sqlite3.Connection], object]) -> object:
        if self._closed:
            raise ConfigurationError(f"MetaStore({self.path!r}) is closed")
        with self._lock:
            self._counters["writes_enqueued"] += 1
        op = _SyncOp(fn)
        self._queue.put(op)
        op.event.wait()
        if op.error is not None:
            raise op.error
        return op.result

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Block until every previously enqueued write has committed."""
        if self._closed:
            return True
        barrier = _SyncOp(lambda conn: None)
        self._queue.put(barrier)
        done = barrier.event.wait(timeout)
        if done:
            with self._lock:
                self._counters["flushes"] += 1
        return done

    @property
    def pending_writes(self) -> int:
        """Approximate number of write ops not yet committed."""
        return self._queue.qsize()

    def close(self) -> None:
        """Flush the write-behind queue and release every connection."""
        if self._closed:
            return
        self.flush()
        self._closed = True
        self._queue.put(None)
        self._writer.join(timeout=10)
        with self._lock:
            read_conns, self._read_conns = self._read_conns, []
        with _FORK_GATE:
            for conn in read_conns:
                try:
                    conn.close()
                except Exception:
                    pass

    def __enter__(self) -> "MetaStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # dataset versions
    # ------------------------------------------------------------------ #
    def dataset_version(self, name: str) -> Optional[int]:
        row = self._read_one(
            "SELECT version FROM datasets WHERE name = ?", (name,))
        return int(row[0]) if row else None

    def record_dataset_version(self, name: str, version: int,
                               prune_envelopes: bool = True) -> None:
        """Record a dataset's version (monotonic max) — async write-behind.

        With ``prune_envelopes`` (default) envelope rows from superseded
        versions are deleted in the same transaction: they can never be
        read again (lookups always use the live version) and would
        otherwise accumulate forever on an appending dataset.
        """
        def op(conn: sqlite3.Connection) -> None:
            conn.execute(
                "INSERT INTO datasets (name, version) VALUES (?, ?) "
                "ON CONFLICT(name) DO UPDATE SET version = "
                "MAX(version, excluded.version)", (name, int(version)))
            if prune_envelopes:
                conn.execute(
                    "DELETE FROM envelopes WHERE dataset = ? AND version < "
                    "(SELECT version FROM datasets WHERE name = ?)",
                    (name, name))
        self._submit_async(op)

    # ------------------------------------------------------------------ #
    # envelopes
    # ------------------------------------------------------------------ #
    def get_envelope(self, dataset: str, digest: str,
                     version: int) -> Optional[str]:
        row = self._read_one(
            "SELECT envelope FROM envelopes WHERE dataset = ? AND digest = ? "
            "AND version = ?", (dataset, digest, int(version)))
        return row[0] if row else None

    def put_envelope(self, dataset: str, digest: str, version: int,
                     envelope_json: str) -> None:
        """Write-behind upsert of one serialized envelope."""
        now = time.time()

        def op(conn: sqlite3.Connection) -> None:
            conn.execute(
                "INSERT OR REPLACE INTO envelopes "
                "(dataset, digest, version, envelope, hits, updated_at) "
                "VALUES (?, ?, ?, ?, COALESCE((SELECT hits FROM envelopes "
                "WHERE dataset = ? AND digest = ? AND version = ?), 0), ?)",
                (dataset, digest, int(version), envelope_json,
                 dataset, digest, int(version), now))
        self._submit_async(op)

    def count_envelopes(self, dataset: Optional[str] = None) -> int:
        if dataset is None:
            row = self._read_one("SELECT COUNT(*) FROM envelopes")
        else:
            row = self._read_one(
                "SELECT COUNT(*) FROM envelopes WHERE dataset = ?",
                (dataset,))
        return int(row[0])

    # ------------------------------------------------------------------ #
    # query history (restart re-warm)
    # ------------------------------------------------------------------ #
    def record_query(self, dataset: str, digest: str, payload_json: str,
                     k: Optional[int]) -> None:
        """Write-behind hit-count upsert of one recorded query.

        ``digest`` must be computed over the canonical key *without* its
        version component: history has to survive version bumps, or the
        re-warm after an ``append_rows`` would find nothing to replay.
        """
        now = time.time()

        def op(conn: sqlite3.Connection) -> None:
            conn.execute(
                "INSERT INTO history (dataset, digest, payload, k, hits, "
                "updated_at) VALUES (?, ?, ?, ?, 1, ?) "
                "ON CONFLICT(dataset, digest) DO UPDATE SET "
                "hits = hits + 1, payload = excluded.payload, "
                "k = excluded.k, updated_at = excluded.updated_at",
                (dataset, digest, payload_json, k, now))
        self._submit_async(op)

    def top_queries(self, dataset: str,
                    limit: int) -> List[Tuple[str, Optional[int], int]]:
        """The most-requested recorded queries: (payload_json, k, hits)."""
        rows = self._read_all(
            "SELECT payload, k, hits FROM history WHERE dataset = ? "
            "ORDER BY hits DESC, updated_at DESC LIMIT ?",
            (dataset, max(0, int(limit))))
        return [(payload, (int(k) if k is not None else None), int(hits))
                for payload, k, hits in rows]

    # ------------------------------------------------------------------ #
    # jobs
    # ------------------------------------------------------------------ #
    def create_job(self, job_id: str, kind: str, dataset: str,
                   payload_json: str, total: int) -> None:
        """Insert a PENDING job row (synchronous: the id is handed out)."""
        now = time.time()

        def op(conn: sqlite3.Connection) -> None:
            conn.execute(
                "INSERT INTO jobs (id, kind, dataset, payload, state, "
                "owner_epoch, created_at, updated_at, progress_done, "
                "progress_total) VALUES (?, ?, ?, ?, 'PENDING', ?, ?, ?, 0, ?)",
                (job_id, kind, dataset, payload_json, self.epoch, now, now,
                 int(total)))
        self._submit_sync(op)

    def claim_job(self, job_id: str, epoch: Optional[int] = None) -> bool:
        """PENDING -> RUNNING under this epoch; False if someone beat us."""
        now = time.time()
        owner = self.epoch if epoch is None else int(epoch)

        def op(conn: sqlite3.Connection) -> bool:
            cursor = conn.execute(
                "UPDATE jobs SET state = 'RUNNING', owner_epoch = ?, "
                "updated_at = ?, heartbeat_at = ? "
                "WHERE id = ? AND state = 'PENDING'",
                (owner, now, now, job_id))
            return cursor.rowcount == 1
        return bool(self._submit_sync(op))

    def set_job_state(self, job_id: str, state: str,
                      error: Optional[str] = None,
                      result_json: Optional[str] = None,
                      expect: Optional[Sequence[str]] = None) -> bool:
        """Synchronous state transition; ``expect`` guards the from-states."""
        if state not in JOB_STATES:
            raise ConfigurationError(f"unknown job state {state!r}")
        now = time.time()
        expected = tuple(expect) if expect else None

        def op(conn: sqlite3.Connection) -> bool:
            sql = ("UPDATE jobs SET state = ?, updated_at = ?, error = ?, "
                   "result = COALESCE(?, result) WHERE id = ?")
            params: Tuple = (state, now, error, result_json, job_id)
            if expected:
                sql += " AND state IN (%s)" % ",".join("?" * len(expected))
                params = params + expected
            return conn.execute(sql, params).rowcount == 1
        return bool(self._submit_sync(op))

    def job_progress(self, job_id: str, done: int,
                     total: Optional[int] = None) -> None:
        """Write-behind progress + heartbeat update."""
        now = time.time()

        def op(conn: sqlite3.Connection) -> None:
            if total is None:
                conn.execute(
                    "UPDATE jobs SET progress_done = ?, heartbeat_at = ?, "
                    "updated_at = ? WHERE id = ?", (int(done), now, now, job_id))
            else:
                conn.execute(
                    "UPDATE jobs SET progress_done = ?, progress_total = ?, "
                    "heartbeat_at = ?, updated_at = ? WHERE id = ?",
                    (int(done), int(total), now, now, job_id))
        self._submit_async(op)

    def get_job(self, job_id: str) -> Optional[Dict[str, object]]:
        row = self._read_one(
            "SELECT %s FROM jobs WHERE id = ?" % ", ".join(_JOB_COLUMNS),
            (job_id,))
        if row is None:
            return None
        return dict(zip(_JOB_COLUMNS, row))

    def job_state(self, job_id: str) -> Optional[str]:
        row = self._read_one(
            "SELECT state FROM jobs WHERE id = ?", (job_id,))
        return row[0] if row else None

    def list_jobs(self, dataset: Optional[str] = None,
                  limit: int = 100) -> List[Dict[str, object]]:
        sql = "SELECT %s FROM jobs" % ", ".join(_JOB_COLUMNS)
        params: Tuple = ()
        if dataset is not None:
            sql += " WHERE dataset = ?"
            params = (dataset,)
        sql += " ORDER BY created_at DESC LIMIT ?"
        rows = self._read_all(sql, params + (max(0, int(limit)),))
        return [dict(zip(_JOB_COLUMNS, row)) for row in rows]

    def jobs_by_state(self) -> Dict[str, int]:
        rows = self._read_all(
            "SELECT state, COUNT(*) FROM jobs GROUP BY state")
        return {state: int(count) for state, count in rows}

    def pending_jobs(self) -> List[str]:
        rows = self._read_all(
            "SELECT id FROM jobs WHERE state = 'PENDING' "
            "ORDER BY created_at ASC")
        return [row[0] for row in rows]

    def requeue_stale_running(self) -> List[str]:
        """Re-queue RUNNING jobs owned by a dead epoch (crash recovery).

        Jobs whose ``owner_epoch`` differs from this store handle's epoch
        were RUNNING in a process that no longer holds the newest epoch —
        i.e. it died (or at least restarted) without checkpointing.  They
        go back to PENDING; their completed prefix in ``job_results``
        stays, so the re-run skips straight past it.
        """
        def op(conn: sqlite3.Connection) -> List[str]:
            rows = conn.execute(
                "SELECT id FROM jobs WHERE state = 'RUNNING' AND "
                "owner_epoch != ?", (self.epoch,)).fetchall()
            stale = [row[0] for row in rows]
            if stale:
                now = time.time()
                conn.executemany(
                    "UPDATE jobs SET state = 'PENDING', updated_at = ? "
                    "WHERE id = ?", [(now, job_id) for job_id in stale])
            return stale
        return list(self._submit_sync(op))

    # ------------------------------------------------------------------ #
    # per-query job results (the resumable completed prefix)
    # ------------------------------------------------------------------ #
    def add_job_result(self, job_id: str, position: int,
                       digest: Optional[str], envelope_json: str) -> None:
        """Write-behind append of one completed query's envelope."""
        now = time.time()

        def op(conn: sqlite3.Connection) -> None:
            conn.execute(
                "INSERT OR REPLACE INTO job_results "
                "(job_id, position, digest, envelope, created_at) "
                "VALUES (?, ?, ?, ?, ?)",
                (job_id, int(position), digest, envelope_json, now))
        self._submit_async(op)

    def job_result_positions(self, job_id: str) -> Set[int]:
        rows = self._read_all(
            "SELECT position FROM job_results WHERE job_id = ?",
            (job_id,))
        return {int(row[0]) for row in rows}

    def job_results(self, job_id: str) -> List[Tuple[int, str]]:
        """All recorded (position, envelope_json) results, in order."""
        rows = self._read_all(
            "SELECT position, envelope FROM job_results WHERE job_id = ? "
            "ORDER BY position ASC", (job_id,))
        return [(int(position), envelope) for position, envelope in rows]

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        with self._lock:
            counters = dict(self._counters)
            last_error = self.last_write_error
        counters.update({
            "path": self.path,
            "epoch": self.epoch,
            "pending_writes": self.pending_writes,
            "last_write_error": last_error,
        })
        return counters


def job_public_dict(job: Dict[str, object]) -> Dict[str, object]:
    """The JSON-safe, client-facing view of a raw ``jobs`` row."""
    result = job.get("result")
    return {
        "id": job["id"],
        "kind": job["kind"],
        "dataset": job["dataset"],
        "state": job["state"],
        "progress": {"done": int(job["progress_done"] or 0),
                     "total": int(job["progress_total"] or 0)},
        "created_at": job["created_at"],
        "updated_at": job["updated_at"],
        "heartbeat_at": job["heartbeat_at"],
        "error": job["error"],
        "summary": json.loads(result) if result else None,
    }
