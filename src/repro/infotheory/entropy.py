"""(Weighted) entropy estimators over integer code arrays.

Estimates use the plug-in (maximum likelihood) estimator by default, with an
optional Miller–Madow bias correction.  All functions accept an optional
per-row ``weights`` array: the inverse-probability weights of Section 3.2
enter the analysis here, by replacing empirical counts with weighted counts.
Rows with a missing code (``-1``) in any involved variable are dropped —
this is exactly the "complete cases" analysis the recoverability analysis
reasons about.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import EstimationError
from repro.infotheory.encoding import joint_codes

_ESTIMATORS = ("plugin", "miller_madow")


def _validate_weights(weights: Optional[np.ndarray], n: int) -> Optional[np.ndarray]:
    if weights is None:
        return None
    weights = np.asarray(weights, dtype=np.float64)
    if len(weights) != n:
        raise EstimationError(f"weights length {len(weights)} != number of rows {n}")
    if (weights < 0).any():
        raise EstimationError("weights must be non-negative")
    return weights


def _complete_mask(code_arrays: Sequence[np.ndarray]) -> np.ndarray:
    mask = np.ones(len(code_arrays[0]), dtype=bool)
    for codes in code_arrays:
        mask &= np.asarray(codes) >= 0
    return mask


def _distribution(codes: np.ndarray, weights: Optional[np.ndarray]) -> np.ndarray:
    """Empirical (weighted) probability distribution over the codes present."""
    if len(codes) == 0:
        return np.array([])
    if weights is None:
        counts = np.bincount(codes)
    else:
        counts = np.bincount(codes, weights=weights)
    total = counts.sum()
    if total <= 0:
        return np.array([])
    return counts[counts > 0] / total


def entropy(codes: np.ndarray, weights: Optional[np.ndarray] = None,
            estimator: str = "plugin", base: float = 2.0) -> float:
    """Shannon entropy H(X) of a coded variable.

    Parameters
    ----------
    codes:
        Integer codes with ``-1`` for missing rows (dropped).
    weights:
        Optional non-negative per-row weights (IPW).
    estimator:
        ``"plugin"`` (maximum likelihood) or ``"miller_madow"``.
    base:
        Logarithm base; the paper reports values in bits (base 2).
    """
    if estimator not in _ESTIMATORS:
        raise EstimationError(f"Unknown estimator {estimator!r}; use one of {_ESTIMATORS}")
    codes = np.asarray(codes, dtype=np.int64)
    weights = _validate_weights(weights, len(codes))
    mask = codes >= 0
    codes = codes[mask]
    if weights is not None:
        weights = weights[mask]
    probabilities = _distribution(codes, weights)
    if probabilities.size == 0:
        return 0.0
    value = float(-(probabilities * (np.log(probabilities) / np.log(base))).sum())
    if estimator == "miller_madow":
        n = len(codes) if weights is None else float(weights.sum())
        if n > 0:
            support = probabilities.size
            value += (support - 1) / (2.0 * n * np.log(base))
    return max(0.0, value)


def joint_entropy(code_arrays: Sequence[np.ndarray], weights: Optional[np.ndarray] = None,
                  estimator: str = "plugin", base: float = 2.0) -> float:
    """Joint entropy H(X1, ..., Xk) of several coded variables."""
    if not code_arrays:
        return 0.0
    joint = joint_codes(list(code_arrays))
    return entropy(joint, weights=weights, estimator=estimator, base=base)


def conditional_entropy(target: np.ndarray, given: Sequence[np.ndarray],
                        weights: Optional[np.ndarray] = None,
                        estimator: str = "plugin", base: float = 2.0) -> float:
    """Conditional entropy H(X | Z1, ..., Zk) = H(X, Z) - H(Z).

    With an empty conditioning set this reduces to the marginal entropy.
    Rows missing in *any* involved variable are dropped from both terms so
    that the two entropies are estimated over the same complete cases.
    """
    target = np.asarray(target, dtype=np.int64)
    given = [np.asarray(codes, dtype=np.int64) for codes in given]
    if not given:
        return entropy(target, weights=weights, estimator=estimator, base=base)
    mask = _complete_mask([target] + given)
    target_c = target[mask]
    given_c = [codes[mask] for codes in given]
    weights_c = None
    if weights is not None:
        weights_c = _validate_weights(weights, len(target))[mask]
    joint_given = joint_codes(given_c) if len(given_c) > 1 else given_c[0]
    h_joint = joint_entropy([target_c, joint_given], weights=weights_c,
                            estimator=estimator, base=base)
    h_given = entropy(joint_given, weights=weights_c, estimator=estimator, base=base)
    return max(0.0, h_joint - h_given)
