"""(Conditional) mutual information and interaction information.

The central quantity of the paper is the conditional mutual information
``I(O; T | E, C)``: the residual dependence between the outcome and the
exposure once the candidate confounders ``E`` are controlled for, within the
query context ``C``.  The context is handled upstream by filtering the table;
here the conditioning set is a list of code arrays.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.infotheory.encoding import joint_codes
from repro.infotheory.entropy import _complete_mask, _validate_weights, entropy


def mutual_information(x: np.ndarray, y: np.ndarray, weights: Optional[np.ndarray] = None,
                       estimator: str = "plugin", base: float = 2.0) -> float:
    """Mutual information I(X; Y) = H(X) + H(Y) - H(X, Y).

    Rows missing in either variable are dropped from all three terms.
    The plug-in estimate is clipped at zero (MI is non-negative but the
    Miller–Madow correction can produce tiny negative values).
    """
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    mask = _complete_mask([x, y])
    x_c, y_c = x[mask], y[mask]
    weights_c = None
    if weights is not None:
        weights_c = _validate_weights(weights, len(x))[mask]
    h_x = entropy(x_c, weights=weights_c, estimator=estimator, base=base)
    h_y = entropy(y_c, weights=weights_c, estimator=estimator, base=base)
    h_xy = entropy(joint_codes([x_c, y_c]), weights=weights_c, estimator=estimator, base=base)
    return max(0.0, h_x + h_y - h_xy)


def conditional_mutual_information(x: np.ndarray, y: np.ndarray,
                                   conditioning: Sequence[np.ndarray] = (),
                                   weights: Optional[np.ndarray] = None,
                                   estimator: str = "plugin", base: float = 2.0) -> float:
    """Conditional mutual information I(X; Y | Z1, ..., Zk).

    Computed with the entropy decomposition
    ``I(X;Y|Z) = H(X,Z) + H(Y,Z) - H(X,Y,Z) - H(Z)`` over the complete cases
    of all involved variables.  With an empty conditioning set this is plain
    mutual information.
    """
    conditioning = [np.asarray(codes, dtype=np.int64) for codes in conditioning]
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    if not conditioning:
        return mutual_information(x, y, weights=weights, estimator=estimator, base=base)
    mask = _complete_mask([x, y] + conditioning)
    x_c, y_c = x[mask], y[mask]
    z_c = joint_codes([codes[mask] for codes in conditioning]) if len(conditioning) > 1 \
        else conditioning[0][mask]
    weights_c = None
    if weights is not None:
        weights_c = _validate_weights(weights, len(x))[mask]
    h_xz = entropy(joint_codes([x_c, z_c]), weights=weights_c, estimator=estimator, base=base)
    h_yz = entropy(joint_codes([y_c, z_c]), weights=weights_c, estimator=estimator, base=base)
    h_xyz = entropy(joint_codes([x_c, y_c, z_c]), weights=weights_c,
                    estimator=estimator, base=base)
    h_z = entropy(z_c, weights=weights_c, estimator=estimator, base=base)
    return max(0.0, h_xz + h_yz - h_xyz - h_z)


def interaction_information(x: np.ndarray, y: np.ndarray, z: np.ndarray,
                            weights: Optional[np.ndarray] = None,
                            estimator: str = "plugin", base: float = 2.0) -> float:
    """Interaction information I(X; Y; Z) = I(X; Y) - I(X; Y | Z).

    A *negative* interaction information means conditioning on ``Z``
    *increases* the dependence between ``X`` and ``Y`` — the situation in
    which an attribute "only harms the explanation" and receives a negative
    responsibility (Example 2.4 in the paper).
    """
    return (mutual_information(x, y, weights=weights, estimator=estimator, base=base)
            - conditional_mutual_information(x, y, [z], weights=weights,
                                             estimator=estimator, base=base))
