"""Conditional-independence testing.

The MCIMR stopping criterion and several pruning rules need a fast test of
``X ⊥ Y | Z`` from data.  The paper cites the "highly efficient independence
test" of HypDB [63], which compares the estimated CMI against a permutation
null distribution.  We implement exactly that: the observed CMI is compared
with the CMIs obtained after randomly permuting ``X`` *within strata of Z*
(so the null preserves the marginal relationships with the conditioning
set), plus a cheap absolute threshold shortcut for the common case where the
observed CMI is essentially zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.infotheory.encoding import joint_codes
from repro.infotheory.mutual_information import conditional_mutual_information
from repro.utils.rng import make_rng

DEFAULT_CMI_THRESHOLD = 0.01


@dataclass(frozen=True)
class IndependenceResult:
    """Outcome of a conditional-independence test.

    Attributes
    ----------
    independent:
        The test's verdict at the requested significance level.
    cmi:
        The observed conditional mutual information.
    p_value:
        Fraction of permutation CMIs at least as large as the observed one
        (1.0 when the threshold shortcut fired).
    n_permutations:
        Number of permutations actually run (0 for the shortcut).
    """

    independent: bool
    cmi: float
    p_value: float
    n_permutations: int


def _permute_within_strata(x: np.ndarray, strata: np.ndarray,
                           rng: np.random.Generator) -> np.ndarray:
    """Permute ``x`` independently inside each stratum of ``strata``."""
    permuted = x.copy()
    for stratum in np.unique(strata):
        indices = np.where(strata == stratum)[0]
        if len(indices) > 1:
            permuted[indices] = x[rng.permutation(indices)]
    return permuted


def conditional_independence_test(x: np.ndarray, y: np.ndarray,
                                  conditioning: Sequence[np.ndarray] = (),
                                  weights: Optional[np.ndarray] = None,
                                  threshold: float = DEFAULT_CMI_THRESHOLD,
                                  n_permutations: int = 30,
                                  alpha: float = 0.05,
                                  dependent_threshold: Optional[float] = None,
                                  seed: Optional[int] = 0) -> IndependenceResult:
    """Test whether ``X ⊥ Y | conditioning`` holds in the data.

    The test first applies two cheap shortcuts: if the observed CMI is below
    ``threshold`` the variables are declared independent, and if it is above
    ``dependent_threshold`` (when given) they are declared dependent — both
    without running permutations.  Otherwise a stratified permutation test
    with ``n_permutations`` permutations is run and independence is declared
    when the permutation p-value exceeds ``alpha``.  Note the smallest
    achievable p-value is ``1/(n_permutations+1)``, so at least 20
    permutations are needed for decisions at ``alpha=0.05``.
    """
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    conditioning = [np.asarray(codes, dtype=np.int64) for codes in conditioning]
    observed = conditional_mutual_information(x, y, conditioning, weights=weights)
    if observed <= threshold:
        return IndependenceResult(independent=True, cmi=observed, p_value=1.0, n_permutations=0)
    if dependent_threshold is not None and observed >= dependent_threshold:
        return IndependenceResult(independent=False, cmi=observed, p_value=0.0, n_permutations=0)
    if n_permutations <= 0:
        return IndependenceResult(independent=False, cmi=observed, p_value=0.0, n_permutations=0)
    rng = make_rng(seed)
    strata = joint_codes(conditioning) if conditioning else np.zeros(len(x), dtype=np.int64)
    exceed = 0
    for _ in range(n_permutations):
        permuted = _permute_within_strata(x, strata, rng)
        null_cmi = conditional_mutual_information(permuted, y, conditioning, weights=weights)
        if null_cmi >= observed:
            exceed += 1
    p_value = (exceed + 1) / (n_permutations + 1)
    return IndependenceResult(independent=p_value > alpha, cmi=observed,
                              p_value=p_value, n_permutations=n_permutations)
