"""Conditional-independence testing.

The MCIMR stopping criterion and several pruning rules need a fast test of
``X ⊥ Y | Z`` from data.  The paper cites the "highly efficient independence
test" of HypDB [63], which compares the estimated CMI against a permutation
null distribution.  We implement exactly that: the observed CMI is compared
with the CMIs obtained after randomly permuting ``X`` *within strata of Z*
(so the null preserves the marginal relationships with the conditioning
set), plus a cheap absolute threshold shortcut for the common case where the
observed CMI is essentially zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.infotheory.encoding import joint_codes
from repro.infotheory.mutual_information import conditional_mutual_information
from repro.infotheory.permutation import (
    PermutationBudget,
    PermutationPlan,
    report_outcome,
    resolve_budget,
    sequential_permutation_test,
)
from repro.utils.rng import make_rng

DEFAULT_CMI_THRESHOLD = 0.01


@dataclass(frozen=True)
class IndependenceResult:
    """Outcome of a conditional-independence test.

    Attributes
    ----------
    independent:
        The test's verdict at the requested significance level.
    cmi:
        The observed conditional mutual information.
    p_value:
        Fraction of permutation CMIs at least as large as the observed one
        (1.0 when the threshold shortcut fired).  After an early exit the
        fraction reflects only the permutations actually run; the verdict
        is still the one the full run would have produced (see
        :mod:`repro.infotheory.permutation`).
    n_permutations:
        Number of permutations actually run (0 for the shortcut).
    early_exit:
        True when the sequential test stopped before exhausting its
        permutation budget.
    budget_extensions:
        How many times an adaptive :class:`~repro.infotheory.permutation.
        PermutationBudget` extended the permutation target because the
        verdict was still statistically uncertain (0 for fixed budgets).
    """

    independent: bool
    cmi: float
    p_value: float
    n_permutations: int
    early_exit: bool = False
    budget_extensions: int = 0


def _permute_within_strata(x: np.ndarray, strata: np.ndarray,
                           rng: np.random.Generator) -> np.ndarray:
    """Permute ``x`` independently inside each stratum of ``strata``."""
    permuted = x.copy()
    for stratum in np.unique(strata):
        indices = np.where(strata == stratum)[0]
        if len(indices) > 1:
            permuted[indices] = x[rng.permutation(indices)]
    return permuted


def conditional_independence_test(x: np.ndarray, y: np.ndarray,
                                  conditioning: Sequence[np.ndarray] = (),
                                  weights: Optional[np.ndarray] = None,
                                  threshold: float = DEFAULT_CMI_THRESHOLD,
                                  n_permutations: int = 30,
                                  alpha: float = 0.05,
                                  dependent_threshold: Optional[float] = None,
                                  seed: Optional[int] = 0,
                                  early_exit: bool = False,
                                  counter_hook=None,
                                  budget: Optional[PermutationBudget] = None,
                                  ) -> IndependenceResult:
    """Test whether ``X ⊥ Y | conditioning`` holds in the data.

    The test first applies two cheap shortcuts: if the observed CMI is below
    ``threshold`` the variables are declared independent, and if it is above
    ``dependent_threshold`` (when given) they are declared dependent — both
    without running permutations.  Otherwise a stratified permutation test
    with ``n_permutations`` permutations is run and independence is declared
    when the permutation p-value exceeds ``alpha``.  Note the smallest
    achievable p-value is ``1/(n_permutations+1)``, so at least 20
    permutations are needed for decisions at ``alpha=0.05``.

    The permutation loop runs on the blocked engine's precomputed strata
    plan (:mod:`repro.infotheory.permutation`) — same RNG stream, same
    p-values, no per-permutation strata re-derivation.  With
    ``early_exit=True`` the sequential decision stops the loop as soon as
    the verdict is determined; an explicit ``budget`` wins over the flag
    and may extend ``n_permutations`` adaptively while the verdict stays
    statistically uncertain.
    """
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    conditioning = [np.asarray(codes, dtype=np.int64) for codes in conditioning]
    observed = conditional_mutual_information(x, y, conditioning, weights=weights)
    if observed <= threshold:
        return IndependenceResult(independent=True, cmi=observed, p_value=1.0, n_permutations=0)
    if dependent_threshold is not None and observed >= dependent_threshold:
        return IndependenceResult(independent=False, cmi=observed, p_value=0.0, n_permutations=0)
    if n_permutations <= 0:
        return IndependenceResult(independent=False, cmi=observed, p_value=0.0, n_permutations=0)
    budget = resolve_budget(budget, early_exit)
    rng = make_rng(seed)
    strata = joint_codes(conditioning) if conditioning else np.zeros(len(x), dtype=np.int64)
    outcome = sequential_permutation_test(
        x, PermutationPlan(strata), rng, observed, n_permutations, alpha,
        lambda permuted: conditional_mutual_information(
            permuted, y, conditioning, weights=weights),
        budget=budget)
    report_outcome(counter_hook, outcome, n_permutations, budget)
    return IndependenceResult(independent=outcome.independent(alpha),
                              cmi=observed,
                              p_value=outcome.p_value,
                              n_permutations=outcome.n_run,
                              early_exit=outcome.verdict is not None,
                              budget_extensions=outcome.extensions)
