"""Fast contingency-count estimation kernel.

The reference estimators in :mod:`repro.infotheory.entropy` and
:mod:`repro.infotheory.mutual_information` compute every CMI term from raw
row arrays: each call re-derives joint codes with a row-wise ``np.unique``
(a lexicographic sort over stacked columns) and evaluates four independent
entropy estimates over masked copies.  The explanation search evaluates
thousands of such terms over the *same* table, so almost all of that work
is redundant.

This module restructures the counting layer:

* **One weighted contingency count per term.**  ``contingency_cmi`` fuses
  the (already encoded) variables into a single code array with place-value
  arithmetic, runs one ``np.bincount``, and reads all four entropies of the
  decomposition ``I(X;Y|Z) = H(X,Z) + H(Y,Z) - H(X,Y,Z) - H(Z)`` off the
  marginals of the resulting count tensor.
* **Incremental joint coding.**  ``fuse_codes`` extends a cached fused code
  array for a conditioning set ``Z`` to ``Z ∪ {a}`` in one ``O(n)`` pass —
  no re-factorisation from scratch.  ``compact_codes`` re-labels a sparse
  fused array to a dense ``0..k-1`` range when the code space grows;
  crucially, compaction assigns labels in sorted fused order, which equals
  the lexicographic tuple order used by
  :func:`repro.infotheory.encoding.joint_codes` — so partitions, labels
  ordering, and therefore every downstream estimate and permutation test
  match the reference implementation exactly.
* **A permutation test that fuses once.**  ``fast_independence_test``
  mirrors :func:`repro.infotheory.independence.conditional_independence_test`
  but reuses the fused conditioning codes across all permutations.

All estimates match the reference estimators to within floating-point
summation error (the property tests assert 1e-9), including IPW weights,
``-1`` missing codes, and both estimators (``plugin``/``miller_madow``).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import EstimationError
from repro.infotheory import permutation
from repro.infotheory.entropy import _ESTIMATORS, _validate_weights, conditional_entropy
from repro.infotheory.independence import (
    DEFAULT_CMI_THRESHOLD,
    IndependenceResult,
    _permute_within_strata,
)
from repro.infotheory.mutual_information import conditional_mutual_information
from repro.utils.rng import make_rng

#: Contingency tensors larger than this fall back to compaction (and, as a
#: last resort, the reference estimator) instead of a dense ``bincount``.
DENSE_CELL_LIMIT = 1 << 22

#: Fused code spaces wider than ``max(_COMPACT_FLOOR, 2 * n_rows)`` are
#: re-labelled to a dense range before being cached or counted.
_COMPACT_FLOOR = 1024


# --------------------------------------------------------------------------- #
# joint coding
# --------------------------------------------------------------------------- #
def code_cardinality(codes: np.ndarray) -> int:
    """The size of the code space ``0..max`` of a code array (>= 1)."""
    if len(codes) == 0:
        return 1
    top = int(codes.max())
    return top + 1 if top >= 0 else 1


def fuse_codes(base: np.ndarray, base_card: int,
               extra: np.ndarray, extra_card: int) -> Tuple[np.ndarray, int]:
    """Extend a fused code array by one more variable in ``O(n)``.

    The fused code of a row is ``base * extra_card + extra`` — an injective
    (and lexicographic-order-preserving) map of the code tuple.  A ``-1``
    in either component makes the fused code ``-1``, matching the missing
    propagation of :func:`repro.infotheory.encoding.joint_codes`.
    """
    base = np.asarray(base, dtype=np.int64)
    extra = np.asarray(extra, dtype=np.int64)
    fused = base * extra_card + extra
    fused[(base < 0) | (extra < 0)] = -1
    return fused, base_card * extra_card


def compact_codes(codes: np.ndarray) -> Tuple[np.ndarray, int]:
    """Re-label present codes to a dense ``0..k-1`` range (``-1`` kept).

    Labels are assigned in sorted code order, so a compacted fused array
    induces the same partition *and* the same label ordering as the
    reference ``joint_codes`` (lexicographic over tuples).
    """
    result = np.full(len(codes), -1, dtype=np.int64)
    present = codes >= 0
    if present.any():
        uniques, inverse = np.unique(codes[present], return_inverse=True)
        result[present] = inverse
        return result, len(uniques)
    return result, 1


def maybe_compact(codes: np.ndarray, card: int,
                  limit: Optional[int] = None) -> Tuple[np.ndarray, int]:
    """Compact a fused array when its code space outgrows its row count."""
    if limit is None:
        limit = max(_COMPACT_FLOOR, 2 * len(codes))
    if card > limit:
        return compact_codes(codes)
    return codes, card


def joint_fused(code_arrays: Sequence[np.ndarray],
                cards: Optional[Sequence[int]] = None) -> Tuple[np.ndarray, int]:
    """Fuse several code arrays left to right (compacting as needed).

    An empty sequence encodes the empty conditioning set: every row fuses
    to ``0`` (cardinality 1) — but callers must supply the row count via a
    non-empty sequence, so the empty case is handled by callers.
    """
    if not code_arrays:
        raise ValueError("joint_fused requires at least one code array; "
                         "handle the empty conditioning set at the call site")
    fused = np.asarray(code_arrays[0], dtype=np.int64)
    card = cards[0] if cards is not None else code_cardinality(fused)
    for position, codes in enumerate(code_arrays[1:], start=1):
        extra_card = cards[position] if cards is not None \
            else code_cardinality(np.asarray(codes, dtype=np.int64))
        fused, card = fuse_codes(fused, card, codes, extra_card)
        fused, card = maybe_compact(fused, card)
    return fused, card


# --------------------------------------------------------------------------- #
# partial counts (the scatter-gather contract)
# --------------------------------------------------------------------------- #
# Every estimate in this module reduces to entropies of one weighted
# contingency count over fused codes — and counts are *additive over row
# partitions*.  ``accumulate`` produces the partial counts of one row
# slice, ``merge_counts`` sums partials, and ``finalize`` /
# ``cmi_from_counts`` / ``conditional_entropy_from_counts`` perform the
# entropy step on the merged totals.  A shard worker that owns a row range
# can therefore return partial count vectors whose sum yields *exactly*
# the whole-table estimate: integer (unweighted) counts merge exactly, and
# weighted counts agree with the single-pass bincount to float summation
# order (the property tests assert 1e-9).
def accumulate(codes: np.ndarray, weights: Optional[np.ndarray] = None,
               minlength: int = 0) -> np.ndarray:
    """Partial contingency counts of one row slice (``-1`` rows dropped).

    The returned vector is additive: summing the ``accumulate`` results of
    any partition of the rows equals the whole-table count vector.  Counts
    are float64 either way — integer counts are exact in float64 far past
    any realistic row count, and a uniform dtype keeps merged partials
    interchangeable with the single-process bincount.
    """
    codes = np.asarray(codes, dtype=np.int64)
    present = codes >= 0
    if weights is None:
        counts = np.bincount(codes[present], minlength=minlength)
        return counts.astype(np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    return np.bincount(codes[present], weights=weights[present],
                       minlength=minlength)


def merge_counts(parts: Sequence[np.ndarray]) -> np.ndarray:
    """Sum per-shard partial count vectors (ragged lengths are padded).

    Shards that never observed the top codes return shorter vectors when
    ``accumulate`` ran without ``minlength``; the merge pads every partial
    to the widest shard's length before summing.
    """
    parts = [np.asarray(part, dtype=np.float64) for part in parts]
    if not parts:
        return np.zeros(0, dtype=np.float64)
    width = max(part.shape[-1] if part.ndim else 0 for part in parts)
    total = np.zeros(width, dtype=np.float64)
    for part in parts:
        total[:len(part)] += part
    return total


def finalize(counts: np.ndarray, estimator: str = "plugin",
             base: float = 2.0) -> float:
    """Entropy of merged partial counts — the gather half of the contract.

    ``finalize(merge_counts(accumulate(part) for part in partition))``
    equals ``contingency_entropy`` over the unpartitioned rows.
    """
    return entropy_from_counts(np.asarray(counts, dtype=np.float64),
                               estimator=estimator, base=base)


def cmi_counts(x: np.ndarray, y: np.ndarray,
               z: Optional[np.ndarray] = None,
               n_x: int = 0, n_y: int = 0, n_z: int = 1,
               weights: Optional[np.ndarray] = None) -> np.ndarray:
    """Partial ``(n_z, n_y, n_x)`` contingency counts of one row slice.

    The cardinalities are *global* (supplied by the coordinator), so every
    shard lays its cells out identically and the partial tensors add.
    Rows with a missing component are dropped, matching the complete-case
    restriction of :func:`contingency_cmi`; the global cardinalities may
    be the unmasked code spaces — padding cells that the masked whole-table
    pass would not allocate stay zero and entropies ignore empty cells, so
    the merged estimate is unchanged.
    """
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    if z is None:
        z = np.zeros(len(x), dtype=np.int64)
    else:
        z = np.asarray(z, dtype=np.int64)
    mask = (x >= 0) & (y >= 0) & (z >= 0)
    fused = (z[mask] * n_y + y[mask]) * n_x + x[mask]
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)[mask]
        counts = np.bincount(fused, weights=weights, minlength=n_x * n_y * n_z)
    else:
        counts = np.bincount(fused, minlength=n_x * n_y * n_z).astype(np.float64)
    return counts.reshape(n_z, n_y, n_x)


def cmi_from_counts(counts: np.ndarray, estimator: str = "plugin",
                    base: float = 2.0) -> float:
    """``I(X;Y|Z)`` from a merged ``(n_z, n_y, n_x)`` count tensor."""
    counts = np.asarray(counts, dtype=np.float64)
    h_xyz = entropy_from_counts(counts.ravel(), estimator=estimator, base=base)
    h_xz = entropy_from_counts(counts.sum(axis=1).ravel(),
                               estimator=estimator, base=base)
    h_yz = entropy_from_counts(counts.sum(axis=2).ravel(),
                               estimator=estimator, base=base)
    h_z = entropy_from_counts(counts.sum(axis=(1, 2)),
                              estimator=estimator, base=base)
    return max(0.0, h_xz + h_yz - h_xyz - h_z)


def joint_counts(target: np.ndarray, given: Optional[np.ndarray] = None,
                 n_target: int = 0, n_given: int = 1,
                 weights: Optional[np.ndarray] = None) -> np.ndarray:
    """Partial ``(n_given, n_target)`` counts for conditional entropies."""
    target = np.asarray(target, dtype=np.int64)
    if given is None:
        given = np.zeros(len(target), dtype=np.int64)
    else:
        given = np.asarray(given, dtype=np.int64)
    mask = (target >= 0) & (given >= 0)
    fused = given[mask] * n_target + target[mask]
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)[mask]
        counts = np.bincount(fused, weights=weights,
                             minlength=n_target * n_given)
    else:
        counts = np.bincount(fused, minlength=n_target * n_given) \
            .astype(np.float64)
    return counts.reshape(n_given, n_target)


def conditional_entropy_from_counts(counts: np.ndarray,
                                    estimator: str = "plugin",
                                    base: float = 2.0) -> float:
    """``H(target | given)`` from a merged ``(n_given, n_target)`` tensor."""
    counts = np.asarray(counts, dtype=np.float64)
    h_joint = entropy_from_counts(counts.ravel(), estimator=estimator, base=base)
    h_given = entropy_from_counts(counts.sum(axis=1),
                                  estimator=estimator, base=base)
    return max(0.0, h_joint - h_given)


# --------------------------------------------------------------------------- #
# entropies from counts
# --------------------------------------------------------------------------- #
def entropy_from_counts(counts: np.ndarray, estimator: str = "plugin",
                        base: float = 2.0) -> float:
    """Entropy of the distribution given by (possibly weighted) cell counts.

    Mirrors :func:`repro.infotheory.entropy.entropy` over the same counts:
    empty cells are excluded from the support, the plug-in value is clipped
    at zero, and Miller–Madow adds ``(support - 1) / (2 n ln(base))`` with
    ``n`` the total (weighted) count.
    """
    if estimator not in _ESTIMATORS:
        raise EstimationError(
            f"Unknown estimator {estimator!r}; use one of {_ESTIMATORS}")
    counts = counts[counts > 0]
    total = counts.sum()
    if counts.size == 0 or total <= 0:
        return 0.0
    probabilities = counts / total
    log_base = np.log(base)
    value = float(-(probabilities * (np.log(probabilities) / log_base)).sum())
    if estimator == "miller_madow":
        value += (probabilities.size - 1) / (2.0 * float(total) * log_base)
    return max(0.0, value)


def _masked(arrays: Sequence[np.ndarray],
            weights: Optional[np.ndarray]) -> Tuple[list, Optional[np.ndarray]]:
    """Complete-case restriction of several aligned code arrays."""
    mask = arrays[0] >= 0
    for codes in arrays[1:]:
        mask = mask & (codes >= 0)
    restricted = [codes[mask] for codes in arrays]
    if weights is not None:
        weights = weights[mask]
    return restricted, weights


def contingency_entropy(codes: np.ndarray, weights: Optional[np.ndarray] = None,
                        estimator: str = "plugin", base: float = 2.0) -> float:
    """``H(X)`` from one bincount (``-1`` rows dropped, weights applied)."""
    codes = np.asarray(codes, dtype=np.int64)
    weights = _validate_weights(weights, len(codes))
    (present,), weights = _masked([codes], weights)
    if len(present) == 0:
        return 0.0
    counts = np.bincount(present, weights=weights)
    return entropy_from_counts(counts, estimator=estimator, base=base)


def contingency_cmi(x: np.ndarray, y: np.ndarray,
                    z: Optional[np.ndarray] = None, n_z: Optional[int] = None,
                    weights: Optional[np.ndarray] = None,
                    estimator: str = "plugin", base: float = 2.0) -> float:
    """``I(X;Y|Z)`` from a single weighted contingency count.

    ``z`` is a *fused* conditioning code array (``None`` or all-zeros for
    the empty set); ``n_z`` is its cardinality (inferred when omitted).
    Complete-case and clipping semantics match
    :func:`repro.infotheory.mutual_information.conditional_mutual_information`.
    """
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    weights = _validate_weights(weights, len(x))
    if z is None:
        z = np.zeros(len(x), dtype=np.int64)
        n_z = 1
    else:
        z = np.asarray(z, dtype=np.int64)
    (x_c, y_c, z_c), weights_c = _masked([x, y, z], weights)
    if len(x_c) == 0:
        return 0.0
    n_x = code_cardinality(x_c)
    n_y = code_cardinality(y_c)
    if n_z is None:
        n_z = code_cardinality(z_c)
    if n_x * n_y * n_z > DENSE_CELL_LIMIT:
        z_c, n_z = compact_codes(z_c)
        if n_x * n_y * n_z > DENSE_CELL_LIMIT:
            # Pathologically wide code spaces: defer to the reference
            # estimator rather than materialise the tensor.
            return conditional_mutual_information(x, y, [z], weights=weights,
                                                  estimator=estimator, base=base)
    fused = (z_c * n_y + y_c) * n_x + x_c
    counts = np.bincount(fused, weights=weights_c,
                         minlength=n_x * n_y * n_z).reshape(n_z, n_y, n_x)
    return cmi_from_counts(counts, estimator=estimator, base=base)


def contingency_mi(x: np.ndarray, y: np.ndarray,
                   weights: Optional[np.ndarray] = None,
                   estimator: str = "plugin", base: float = 2.0) -> float:
    """``I(X;Y)`` — the empty-conditioning special case of the CMI kernel.

    ``H(X,Z)+H(Y,Z)-H(X,Y,Z)-H(Z)`` with constant ``Z`` degenerates to
    ``H(X)+H(Y)-H(X,Y)``: the same value as the reference
    :func:`~repro.infotheory.mutual_information.mutual_information`
    (including the Miller–Madow correction, whose ``H(Z)`` term is zero).
    """
    return contingency_cmi(x, y, None, weights=weights,
                           estimator=estimator, base=base)


def contingency_conditional_entropy(target: np.ndarray,
                                    given: Optional[np.ndarray] = None,
                                    n_given: Optional[int] = None,
                                    weights: Optional[np.ndarray] = None,
                                    estimator: str = "plugin",
                                    base: float = 2.0) -> float:
    """``H(target | given)`` from one count tensor (``given`` pre-fused)."""
    target = np.asarray(target, dtype=np.int64)
    weights = _validate_weights(weights, len(target))
    if given is None:
        return contingency_entropy(target, weights=weights,
                                   estimator=estimator, base=base)
    given = np.asarray(given, dtype=np.int64)
    (t_c, g_c), weights_c = _masked([target, given], weights)
    if len(t_c) == 0:
        return 0.0
    n_t = code_cardinality(t_c)
    if n_given is None:
        n_given = code_cardinality(g_c)
    if n_t * n_given > DENSE_CELL_LIMIT:
        g_c, n_given = compact_codes(g_c)
        if n_t * n_given > DENSE_CELL_LIMIT:
            # Compaction only relabels the conditioning side; a huge target
            # code space still cannot be materialised densely — defer to
            # the reference estimator instead.
            return conditional_entropy(target, [given], weights=weights,
                                       estimator=estimator, base=base)
    counts = np.bincount(g_c * n_t + t_c, weights=weights_c,
                         minlength=n_t * n_given).reshape(n_given, n_t)
    return conditional_entropy_from_counts(counts, estimator=estimator,
                                           base=base)


# --------------------------------------------------------------------------- #
# independence testing on fused codes
# --------------------------------------------------------------------------- #
def fast_independence_test(x: np.ndarray, y: np.ndarray,
                           z: Optional[np.ndarray] = None,
                           n_z: Optional[int] = None,
                           weights: Optional[np.ndarray] = None,
                           threshold: float = DEFAULT_CMI_THRESHOLD,
                           n_permutations: int = 30,
                           alpha: float = 0.05,
                           dependent_threshold: Optional[float] = None,
                           seed: Optional[int] = 0,
                           use_blocked: bool = True,
                           early_exit: bool = False,
                           block_size: Optional[int] = None,
                           counter_hook=None,
                           budget=None) -> IndependenceResult:
    """Kernel-backed drop-in for ``conditional_independence_test``.

    The conditioning set arrives pre-fused (``z``/``n_z``) and is reused
    across every permutation.  With ``use_blocked=True`` (default) the
    permutation phase runs on the blocked engine
    (:func:`repro.infotheory.permutation.blocked_permutation_test`):
    permutations are sampled in blocks as one fancy-index, all their
    contingency counts accumulate in one shared ``bincount``, and — because
    the engine consumes the RNG exactly as the historical loop did — the
    p-values stay bit-identical (``early_exit=False``).  The permutation
    strata are the fused codes themselves: they induce the same partition,
    in the same sorted order, as the reference ``joint_codes`` strata, so
    verdicts also match the reference test exactly.

    ``early_exit=True`` stops the sequential test as soon as the verdict is
    determined (see :mod:`repro.infotheory.permutation`); ``counter_hook``
    (a ``(name, increment)`` callable) observes ``perm_early_exit`` /
    ``perm_saved`` when that happens.  An explicit ``budget``
    (:class:`repro.infotheory.permutation.PermutationBudget`) wins over
    the ``early_exit`` flag wholesale and may additionally extend
    ``n_permutations`` adaptively (``perm_budget_extended`` /
    ``perm_budget_saved`` counters) and select the vectorised ``argsort``
    sampling stream.
    """
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    observed = contingency_cmi(x, y, z, n_z=n_z, weights=weights)
    if observed <= threshold:
        return IndependenceResult(independent=True, cmi=observed,
                                  p_value=1.0, n_permutations=0)
    if dependent_threshold is not None and observed >= dependent_threshold:
        return IndependenceResult(independent=False, cmi=observed,
                                  p_value=0.0, n_permutations=0)
    if n_permutations <= 0:
        return IndependenceResult(independent=False, cmi=observed,
                                  p_value=0.0, n_permutations=0)
    budget = permutation.resolve_budget(budget, early_exit)
    rng = make_rng(seed)
    strata = z if z is not None else np.zeros(len(x), dtype=np.int64)
    if use_blocked:
        fused_z = np.asarray(strata, dtype=np.int64)
        card_z = n_z if z is not None and n_z is not None \
            else code_cardinality(fused_z)
        outcome = permutation.blocked_permutation_test(
            x, y, fused_z, card_z, weights, observed, n_permutations, alpha,
            rng, block_size=block_size, budget=budget)
        # Savings are counted against the permutations actually scored
        # (the block look-ahead is paid work, not a saving).
        permutation.report_outcome(counter_hook, outcome, n_permutations,
                                   budget)
        return IndependenceResult(independent=outcome.independent(alpha),
                                  cmi=observed,
                                  p_value=outcome.p_value,
                                  n_permutations=outcome.n_run,
                                  early_exit=outcome.verdict is not None,
                                  budget_extensions=outcome.extensions)
    # Historical per-permutation loop (use_blocked=False) — kept as the
    # benchmark's pre-blocked reference; the budgeted sequential decision
    # still applies so the config flags mean the same thing on every path.
    state = permutation.BudgetedSequentialTest(n_permutations, alpha, budget)
    verdict = None
    while state.want_more:
        permuted = _permute_within_strata(x, strata, rng)
        null_cmi = contingency_cmi(permuted, y, z, n_z=n_z, weights=weights)
        verdict = state.update(null_cmi >= observed)
        if verdict is not None:
            break
    outcome = state.outcome(verdict, state.done)
    permutation.report_outcome(counter_hook, outcome, n_permutations, budget)
    return IndependenceResult(independent=outcome.independent(alpha),
                              cmi=observed,
                              p_value=outcome.p_value,
                              n_permutations=outcome.n_run,
                              early_exit=outcome.verdict is not None,
                              budget_extensions=outcome.extensions)
