"""Blocked permutation engine with a sequential early-exit test.

Both independence tests (:func:`repro.infotheory.independence.
conditional_independence_test` and :func:`repro.infotheory.kernel.
fast_independence_test`) estimate a permutation p-value by re-computing the
CMI after permuting ``X`` within strata of the conditioning set.  The
historical loops paid three avoidable costs *per permutation*:

* re-deriving the strata (``np.unique`` + one ``np.where`` per stratum —
  ``O(n · n_strata)``) although the strata never change;
* one full Python round-trip through the estimator per permutation;
* on the kernel path, one independent ``bincount`` per permutation although
  the conditioning codes are already fused.

This module restructures the permutation layer:

* :class:`PermutationPlan` precomputes the stratum index lists once.  Its
  :meth:`~PermutationPlan.permute` draws ``rng.permutation`` per stratum in
  exactly the order (sorted stratum values, ascending row indices) of the
  historical ``_permute_within_strata``, so the RNG stream — and therefore
  every permutation, p-value and verdict — is bit-for-bit identical.
* :func:`blocked_permutation_test` samples permutations in blocks: one
  ``(B, n)`` permuted-code matrix, one shared ``np.bincount`` over
  per-permutation offset fused codes, then the per-permutation entropies are
  read off prefix-trimmed views of the count tensor with the *same*
  arithmetic as :func:`repro.infotheory.kernel.contingency_cmi` — the null
  CMIs (and hence the p-values) are bit-identical to the per-permutation
  kernel loop while paying one ``bincount`` per block instead of per
  permutation.
* :func:`sequential_permutation_test` drives an arbitrary per-permutation
  statistic (the reference estimators use this) through the same plan and
  early-exit decision.

Early exit (``early_exit=True``) is a *sequential* test on the exceedance
count.  Two deterministic bounds never flip the fixed-``N`` verdict: with
``k`` exceedances after ``m`` of ``N`` permutations the final p-value
``(K + 1) / (N + 1)`` is bracketed by ``k <= K <= k + (N - m)``, so the test
stops as soon as the bracket lies entirely above or below ``alpha``
(in the common "truly independent" case the very first exceedance already
decides the verdict at ``alpha >= 1 / (N + 1)``).  For large permutation
budgets a Clopper–Pearson interval on the true exceedance probability
additionally stops the test once the interval clears ``alpha`` at
confidence ``CP_CONFIDENCE`` — this bound can in principle differ from the
full run (probability below ``1 - CP_CONFIDENCE``) and only engages after
:data:`CP_MIN_PERMUTATIONS` draws, so small-budget tests (the pipeline
default of 20–30) are decided purely by the verdict-preserving bounds.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

#: Upper bound on the number of cells materialised per blocked bincount;
#: blocks are chunked so ``block * cells_per_permutation`` stays below it.
BLOCK_CELL_BUDGET = 1 << 22

#: Upper bound on ``block * n_rows`` — the blocked path materialises a
#: handful of ``(block, n)`` temporaries, so small contingency spaces with
#: huge permutation budgets must not translate into unbounded blocks
#: (~16 MB per int64 temporary at this budget).
BLOCK_ROW_BUDGET = 1 << 21

#: First-block size when early exit is enabled.  A whole block is permuted
#: and scored before the sequential decision sees its exceedances, so the
#: common first-exceedance exit must not pay for a full-budget block;
#: blocks ramp geometrically from here up to the memory-bounded size.
EARLY_EXIT_INITIAL_BLOCK = 8

#: Confidence of the Clopper–Pearson early-exit bound (two-sided).
CP_CONFIDENCE = 0.9999

#: The Clopper–Pearson bound only engages after this many permutations, so
#: small permutation budgets are decided purely by the deterministic
#: (verdict-preserving) bracket.
CP_MIN_PERMUTATIONS = 100


# --------------------------------------------------------------------------- #
# stratified permutation plan
# --------------------------------------------------------------------------- #
class PermutationPlan:
    """Precomputed strata of a conditioning code array.

    The plan derives, once, the row-index lists of every stratum with more
    than one member — the only strata that consume randomness.  Iteration
    order matches the historical per-permutation derivation exactly:
    strata sorted by code value, indices ascending within a stratum.
    """

    __slots__ = ("n_rows", "groups")

    def __init__(self, strata: np.ndarray):
        strata = np.asarray(strata)
        self.n_rows = len(strata)
        groups: List[np.ndarray] = []
        if self.n_rows:
            order = np.argsort(strata, kind="stable").astype(np.int64)
            sorted_strata = strata[order]
            boundaries = np.flatnonzero(sorted_strata[1:] != sorted_strata[:-1]) + 1
            groups = [group for group in np.split(order, boundaries)
                      if len(group) > 1]
        self.groups = groups

    def permute(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """One stratified permutation of ``x`` (same RNG stream as legacy)."""
        permuted = x.copy()
        for indices in self.groups:
            permuted[indices] = x[rng.permutation(indices)]
        return permuted

    def permute_block(self, x: np.ndarray, rng: np.random.Generator,
                      count: int) -> np.ndarray:
        """A ``(count, n)`` matrix of stratified permutations of ``x``.

        Row ``b`` equals the ``b``-th sequential :meth:`permute` draw, so a
        block of ``count`` permutations consumes the RNG exactly as
        ``count`` scalar draws would.
        """
        block = np.tile(np.asarray(x), (count, 1))
        for row in block:
            for indices in self.groups:
                row[indices] = x[rng.permutation(indices)]
        return block


# --------------------------------------------------------------------------- #
# sequential early-exit decision
# --------------------------------------------------------------------------- #
def clopper_pearson_interval(successes: int, trials: int,
                             confidence: float = CP_CONFIDENCE,
                             ) -> Tuple[float, float]:
    """Two-sided Clopper–Pearson interval for a binomial proportion.

    Falls back to the trivial ``(0, 1)`` interval when SciPy is not
    available — the deterministic bracket then remains the only early-exit
    rule, which is always verdict-preserving.
    """
    if trials <= 0:
        return 0.0, 1.0
    try:
        from scipy.stats import beta
    except ImportError:  # pragma: no cover - scipy is an optional accelerator
        return 0.0, 1.0
    tail = (1.0 - confidence) / 2.0
    lower = 0.0 if successes == 0 else float(
        beta.ppf(tail, successes, trials - successes + 1))
    upper = 1.0 if successes == trials else float(
        beta.ppf(1.0 - tail, successes + 1, trials - successes))
    return lower, upper


def sequential_verdict(exceed: int, done: int, total: int,
                       alpha: float) -> Optional[bool]:
    """Early verdict (``True`` = independent) after ``done`` permutations.

    ``None`` means undecided.  The deterministic bracket on the final
    p-value never contradicts the full ``total``-permutation run; the
    Clopper–Pearson rule (large ``done`` only) bounds the true exceedance
    probability instead and is correct with probability ``CP_CONFIDENCE``.
    """
    if done >= total:
        return None
    # Final p = (K + 1) / (total + 1) with exceed <= K <= exceed + remaining.
    if (exceed + 1) / (total + 1) > alpha:
        return True
    if (exceed + (total - done) + 1) / (total + 1) <= alpha:
        return False
    if done >= CP_MIN_PERMUTATIONS:
        lower, upper = clopper_pearson_interval(exceed, done)
        if lower > alpha:
            return True
        if upper < alpha:
            return False
    return None


# --------------------------------------------------------------------------- #
# generic (estimator-agnostic) sequential driver
# --------------------------------------------------------------------------- #
def sequential_permutation_test(
        x: np.ndarray, plan: PermutationPlan, rng: np.random.Generator,
        observed: float, n_permutations: int, alpha: float,
        null_statistic: Callable[[np.ndarray], float],
        early_exit: bool = False) -> Tuple[int, int, Optional[bool], int]:
    """Drive a per-permutation statistic through the plan.

    Returns ``(exceed, n_run, verdict, computed)`` where ``verdict`` is
    the early decision (``None`` when the test ran to completion — the
    caller then derives the verdict from the p-value as before) and
    ``computed`` is the number of null statistics actually evaluated
    (equal to ``n_run`` here; the blocked driver may look ahead).  With
    ``early_exit=False`` this is a bit-identical restructuring of the
    historical loop: same permutations, same statistics, same counts.
    """
    exceed = 0
    for done in range(1, n_permutations + 1):
        permuted = plan.permute(x, rng)
        if null_statistic(permuted) >= observed:
            exceed += 1
        if early_exit:
            verdict = sequential_verdict(exceed, done, n_permutations, alpha)
            if verdict is not None:
                return exceed, done, verdict, done
    return exceed, n_permutations, None, n_permutations


# --------------------------------------------------------------------------- #
# blocked kernel driver (fused conditioning codes)
# --------------------------------------------------------------------------- #
def _block_null_cmis(x_block: np.ndarray, y: np.ndarray, z: np.ndarray,
                     n_z: int, weights: Optional[np.ndarray],
                     estimator: str, base: float) -> np.ndarray:
    """Null CMIs of every permutation row of ``x_block`` in one bincount.

    Bit-identical to calling :func:`repro.infotheory.kernel.contingency_cmi`
    per row: cells accumulate in the same row order, and the entropies are
    read off per-permutation *prefix-trimmed* views of the count tensor so
    every reduction runs over exactly the array the scalar kernel builds.
    """
    from repro.infotheory.kernel import entropy_from_counts

    n_block, n_rows = x_block.shape
    base_mask = (y >= 0) & (z >= 0)
    valid = base_mask[None, :] & (x_block >= 0)
    # Per-permutation cardinalities: the scalar kernel derives n_x / n_y
    # from each permutation's complete cases (n_z arrives precomputed).
    masked_x = np.where(valid, x_block, -1)
    masked_y = np.where(valid, y[None, :], -1)
    n_x_rows = masked_x.max(axis=1) + 1
    n_y_rows = masked_y.max(axis=1) + 1
    n_x = int(n_x_rows.max()) if n_block else 0
    n_y = int(n_y_rows.max()) if n_block else 0
    cmis = np.zeros(n_block, dtype=np.float64)
    if n_x <= 0 or n_y <= 0:
        return cmis
    cells = n_x * n_y * n_z
    fused = (z[None, :] * n_y + y[None, :]) * n_x + masked_x
    fused += np.arange(n_block, dtype=np.int64)[:, None] * cells
    flat_valid = valid.ravel()
    flat_fused = fused.ravel()[flat_valid]
    if weights is not None:
        flat_weights = np.broadcast_to(weights, (n_block, n_rows)).ravel()[flat_valid]
        counts = np.bincount(flat_fused, weights=flat_weights,
                             minlength=n_block * cells)
    else:
        counts = np.bincount(flat_fused, minlength=n_block * cells).astype(np.float64)
    counts = counts.reshape(n_block, n_z, n_y, n_x)
    for index in range(n_block):
        if not valid[index].any():
            continue
        # Prefix-trim to this permutation's (n_z, n_y_b, n_x_b) shape — and
        # make it contiguous — so the marginal reductions run over the exact
        # arrays the scalar kernel would reduce (identical layouts and
        # therefore identical pairwise-summation trees).
        tensor = np.ascontiguousarray(
            counts[index, :, :int(n_y_rows[index]), :int(n_x_rows[index])])
        h_xyz = entropy_from_counts(tensor.ravel(), estimator=estimator, base=base)
        h_xz = entropy_from_counts(tensor.sum(axis=1).ravel(),
                                   estimator=estimator, base=base)
        h_yz = entropy_from_counts(tensor.sum(axis=2).ravel(),
                                   estimator=estimator, base=base)
        h_z = entropy_from_counts(tensor.sum(axis=(1, 2)),
                                  estimator=estimator, base=base)
        cmis[index] = max(0.0, h_xz + h_yz - h_xyz - h_z)
    return cmis


def blocked_permutation_test(
        x: np.ndarray, y: np.ndarray, z: np.ndarray, n_z: int,
        weights: Optional[np.ndarray], observed: float,
        n_permutations: int, alpha: float, rng: np.random.Generator,
        estimator: str = "plugin", base: float = 2.0,
        early_exit: bool = False, block_size: Optional[int] = None,
        ) -> Tuple[int, int, Optional[bool], int]:
    """Blocked permutation p-value machinery over fused conditioning codes.

    Samples permutations in blocks (one fancy-index + one shared bincount
    per block) and feeds the exceedance count through the sequential
    decision.  Returns ``(exceed, n_run, verdict, computed)`` like
    :func:`sequential_permutation_test` — ``computed`` counts the null
    CMIs actually evaluated, which on an early exit includes the current
    block's look-ahead beyond ``n_run`` (the decision only sees a block
    after it is scored), so callers reporting savings use ``computed``,
    not ``n_run``.  With ``early_exit=False`` the exceedance count — and
    therefore the p-value — is bit-identical to the per-permutation
    kernel loop over the same RNG stream.
    """
    from repro.infotheory import kernel

    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    z = np.asarray(z, dtype=np.int64)
    plan = PermutationPlan(z)
    present_x = x[x >= 0]
    present_y = y[y >= 0]
    n_x_bound = int(present_x.max()) + 1 if present_x.size else 1
    n_y_bound = int(present_y.max()) + 1 if present_y.size else 1
    cells_bound = n_x_bound * n_y_bound * max(1, n_z)
    if cells_bound > kernel.DENSE_CELL_LIMIT:
        # Pathologically wide code spaces take the scalar kernel per
        # permutation (which compacts / falls back as needed); the plan
        # still removes the per-permutation strata re-derivation.
        return sequential_permutation_test(
            x, plan, rng, observed, n_permutations, alpha,
            lambda permuted: kernel.contingency_cmi(
                permuted, y, z, n_z=n_z, weights=weights,
                estimator=estimator, base=base),
            early_exit=early_exit)
    if block_size is None:
        block_size = max(1, min(n_permutations,
                                BLOCK_CELL_BUDGET // cells_bound,
                                BLOCK_ROW_BUDGET // max(1, len(x))))
    exceed = 0
    done = 0
    computed = 0
    # Blocking never changes the RNG stream (permutations are drawn
    # sequentially regardless of block boundaries), so the early-exit ramp
    # below only trades batching width against wasted look-ahead.
    ramp = EARLY_EXIT_INITIAL_BLOCK if early_exit else block_size
    while done < n_permutations:
        count = min(ramp, block_size, n_permutations - done)
        ramp = min(ramp * 4, block_size)
        block = plan.permute_block(x, rng, count)
        null_cmis = _block_null_cmis(block, y, z, n_z, weights, estimator, base)
        computed += count
        for value in null_cmis:
            done += 1
            if value >= observed:
                exceed += 1
            if early_exit:
                verdict = sequential_verdict(exceed, done, n_permutations, alpha)
                if verdict is not None:
                    return exceed, done, verdict, computed
    return exceed, n_permutations, None, computed


# --------------------------------------------------------------------------- #
# sharded permutation partials (scatter-gather data plane)
# --------------------------------------------------------------------------- #
def block_partial_counts(x: np.ndarray, y: np.ndarray,
                         z: Optional[np.ndarray],
                         n_x: int, n_y: int, n_z: int,
                         weights: Optional[np.ndarray],
                         rng: np.random.Generator,
                         count: int) -> np.ndarray:
    """Partial permutation-null count tensors of one row shard.

    Permutes ``x`` within the strata of this shard's ``z`` slice — a
    *finer* stratification than whole-table strata (shard × stratum), which
    is equally valid under the permutation null — and returns a
    ``(count, n_z * n_y * n_x)`` matrix of partial contingency counts.
    All cardinalities are global, so summing the matrices of every shard
    yields, per permutation, a full count tensor ready for
    :func:`repro.infotheory.kernel.cmi_from_counts`.  Each shard draws from
    its own generator, keeping the null distribution deterministic for any
    shard count without coordinating RNG state.
    """
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    if z is None:
        z = np.zeros(len(x), dtype=np.int64)
    else:
        z = np.asarray(z, dtype=np.int64)
    cells = n_x * n_y * max(1, n_z)
    if len(x) == 0 or count <= 0:
        return np.zeros((max(0, count), cells), dtype=np.float64)
    plan = PermutationPlan(z)
    block = plan.permute_block(x, rng, count)
    valid = (y >= 0)[None, :] & (z >= 0)[None, :] & (block >= 0)
    masked_x = np.where(valid, block, 0)
    fused = (z[None, :] * n_y + y[None, :]) * n_x + masked_x
    fused += np.arange(count, dtype=np.int64)[:, None] * cells
    flat_valid = valid.ravel()
    flat_fused = fused.ravel()[flat_valid]
    if weights is not None:
        flat_weights = np.broadcast_to(
            np.asarray(weights, dtype=np.float64),
            (count, len(x))).ravel()[flat_valid]
        counts = np.bincount(flat_fused, weights=flat_weights,
                             minlength=count * cells)
    else:
        counts = np.bincount(flat_fused,
                             minlength=count * cells).astype(np.float64)
    return counts.reshape(count, cells)


def null_cmis_from_counts(counts: np.ndarray, n_x: int, n_y: int, n_z: int,
                          estimator: str = "plugin",
                          base: float = 2.0) -> np.ndarray:
    """Null CMIs from merged ``(count, cells)`` permutation partials.

    The tensors keep their global (untrimmed) dimensions; padding cells are
    empty and entropies ignore empty cells, so each value equals the CMI of
    the corresponding whole-table permutation counts.
    """
    from repro.infotheory.kernel import cmi_from_counts

    counts = np.asarray(counts, dtype=np.float64)
    cmis = np.zeros(counts.shape[0], dtype=np.float64)
    for index in range(counts.shape[0]):
        tensor = counts[index].reshape(max(1, n_z), n_y, n_x)
        cmis[index] = cmi_from_counts(tensor, estimator=estimator, base=base)
    return cmis
