"""Blocked permutation engine with a sequential early-exit test.

Both independence tests (:func:`repro.infotheory.independence.
conditional_independence_test` and :func:`repro.infotheory.kernel.
fast_independence_test`) estimate a permutation p-value by re-computing the
CMI after permuting ``X`` within strata of the conditioning set.  The
historical loops paid three avoidable costs *per permutation*:

* re-deriving the strata (``np.unique`` + one ``np.where`` per stratum —
  ``O(n · n_strata)``) although the strata never change;
* one full Python round-trip through the estimator per permutation;
* on the kernel path, one independent ``bincount`` per permutation although
  the conditioning codes are already fused.

This module restructures the permutation layer:

* :class:`PermutationPlan` precomputes the stratum index lists once.  Its
  :meth:`~PermutationPlan.permute` draws ``rng.permutation`` per stratum in
  exactly the order (sorted stratum values, ascending row indices) of the
  historical ``_permute_within_strata``, so the RNG stream — and therefore
  every permutation, p-value and verdict — is bit-for-bit identical.
* :func:`blocked_permutation_test` samples permutations in blocks: one
  ``(B, n)`` permuted-code matrix, one shared ``np.bincount`` over
  per-permutation offset fused codes, then the per-permutation entropies are
  read off prefix-trimmed views of the count tensor with the *same*
  arithmetic as :func:`repro.infotheory.kernel.contingency_cmi` — the null
  CMIs (and hence the p-values) are bit-identical to the per-permutation
  kernel loop while paying one ``bincount`` per block instead of per
  permutation.
* :func:`sequential_permutation_test` drives an arbitrary per-permutation
  statistic (the reference estimators use this) through the same plan and
  early-exit decision.

Early exit (``early_exit=True``) is a *sequential* test on the exceedance
count.  Two deterministic bounds never flip the fixed-``N`` verdict: with
``k`` exceedances after ``m`` of ``N`` permutations the final p-value
``(K + 1) / (N + 1)`` is bracketed by ``k <= K <= k + (N - m)``, so the test
stops as soon as the bracket lies entirely above or below ``alpha``
(in the common "truly independent" case the very first exceedance already
decides the verdict at ``alpha >= 1 / (N + 1)``).  For large permutation
budgets a Clopper–Pearson interval on the true exceedance probability
additionally stops the test once the interval clears ``alpha`` at
confidence ``CP_CONFIDENCE`` — this bound can in principle differ from the
full run (probability below ``1 - CP_CONFIDENCE``) and only engages after
:data:`CP_MIN_PERMUTATIONS` draws, so small-budget tests (the pipeline
default of 20–30) are decided purely by the verdict-preserving bounds.

Adaptive budgets (:class:`PermutationBudget` with ``max_permutations``
set) invert the spend: instead of every test paying one fixed budget, a
test whose exceedance count still *straddles* ``alpha`` when its current
target is exhausted — the Clopper–Pearson interval on the exceedance
probability contains ``alpha`` — **extends** its target geometrically
(``growth``) up to ``max_permutations``, while clear-cut tests exit early
through the sequential decision.  A test that never extends exits exactly
as the fixed-budget sequential test would (same bracket, same verdict); a
test that does extend was, by construction, statistically uncertain at
the base budget, and its final verdict rests on a strictly larger sample.
:class:`BudgetedSequentialTest` is the one decision object shared by
every driver — the scalar loop, the blocked kernel driver, the legacy
per-permutation loop in :func:`repro.infotheory.kernel.
fast_independence_test`, and the row-sharded coordinator
(:meth:`repro.distributed.coordinator.ShardPool.permutation_rounds`,
whose chunk-aligned per-shard RNG streams make extension deterministic
and resume-safe).

RNG streams: ``rng_stream="legacy"`` (default) draws one Fisher–Yates
permutation per stratum per permutation — bit-identical to the
historical loop.  ``rng_stream="argsort"`` instead draws one ``(B, n)``
uniform block and stably argsorts random keys within strata — a
*different but documented* stream producing exchangeable stratified
permutations from the same generator, acceptable wherever the
exact-count contract already does not apply (early-exit and adaptive
modes) and several times faster on many-strata plans.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.obs import trace

#: Upper bound on the number of cells materialised per blocked bincount;
#: blocks are chunked so ``block * cells_per_permutation`` stays below it.
BLOCK_CELL_BUDGET = 1 << 22

#: Upper bound on ``block * n_rows`` — the blocked path materialises a
#: handful of ``(block, n)`` temporaries, so small contingency spaces with
#: huge permutation budgets must not translate into unbounded blocks
#: (~16 MB per int64 temporary at this budget).
BLOCK_ROW_BUDGET = 1 << 21

#: First-block size when early exit is enabled.  A whole block is permuted
#: and scored before the sequential decision sees its exceedances, so the
#: common first-exceedance exit must not pay for a full-budget block;
#: blocks ramp geometrically from here up to the memory-bounded size.
EARLY_EXIT_INITIAL_BLOCK = 8

#: Confidence of the Clopper–Pearson early-exit bound (two-sided).
CP_CONFIDENCE = 0.9999

#: The Clopper–Pearson bound only engages after this many permutations, so
#: small permutation budgets are decided purely by the deterministic
#: (verdict-preserving) bracket.
CP_MIN_PERMUTATIONS = 100

#: Per-stratum Fisher–Yates draws — bit-identical to the historical loop.
RNG_STREAM_LEGACY = "legacy"

#: One uniform ``(B, n)`` draw + segmented stable argsort — a different
#: but documented stream (see the module docstring).
RNG_STREAM_ARGSORT = "argsort"

#: The streams :meth:`PermutationPlan.permute_block` understands.
RNG_STREAMS = (RNG_STREAM_LEGACY, RNG_STREAM_ARGSORT)


# --------------------------------------------------------------------------- #
# stratified permutation plan
# --------------------------------------------------------------------------- #
class PermutationPlan:
    """Precomputed strata of a conditioning code array.

    The plan derives, once, the row-index lists of every stratum with more
    than one member — the only strata that consume randomness.  Iteration
    order matches the historical per-permutation derivation exactly:
    strata sorted by code value, indices ascending within a stratum.
    """

    __slots__ = ("n_rows", "groups", "_argsort_rows", "_argsort_segments")

    def __init__(self, strata: np.ndarray):
        strata = np.asarray(strata)
        self.n_rows = len(strata)
        groups: List[np.ndarray] = []
        if self.n_rows:
            order = np.argsort(strata, kind="stable").astype(np.int64)
            sorted_strata = strata[order]
            boundaries = np.flatnonzero(sorted_strata[1:] != sorted_strata[:-1]) + 1
            groups = [group for group in np.split(order, boundaries)
                      if len(group) > 1]
        self.groups = groups
        self._argsort_rows: Optional[np.ndarray] = None
        self._argsort_segments: Optional[np.ndarray] = None

    def _argsort_layout(self) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenated multi-member stratum rows + float segment offsets.

        Adding segment index ``s`` to uniform keys in ``[0, 1)`` keeps
        every stratum's keys in a disjoint band, so one stable argsort of
        the whole row axis permutes each stratum independently.
        """
        if self._argsort_rows is None:
            if self.groups:
                self._argsort_rows = np.concatenate(self.groups)
                self._argsort_segments = np.repeat(
                    np.arange(len(self.groups), dtype=np.float64),
                    [len(group) for group in self.groups])
            else:
                self._argsort_rows = np.zeros(0, dtype=np.int64)
                self._argsort_segments = np.zeros(0, dtype=np.float64)
        return self._argsort_rows, self._argsort_segments

    def permute(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """One stratified permutation of ``x`` (same RNG stream as legacy)."""
        permuted = x.copy()
        for indices in self.groups:
            permuted[indices] = x[rng.permutation(indices)]
        return permuted

    def permute_block(self, x: np.ndarray, rng: np.random.Generator,
                      count: int,
                      rng_stream: str = RNG_STREAM_LEGACY) -> np.ndarray:
        """A ``(count, n)`` matrix of stratified permutations of ``x``.

        With the default legacy stream, row ``b`` equals the ``b``-th
        sequential :meth:`permute` draw, so a block of ``count``
        permutations consumes the RNG exactly as ``count`` scalar draws
        would.  With ``rng_stream="argsort"`` the block is sampled as one
        uniform ``(count, m)`` draw over the multi-member stratum rows
        followed by a segmented stable argsort — exchangeable within every
        stratum, but a *different* (documented) stream: the same seed no
        longer reproduces the legacy permutations.
        """
        x = np.asarray(x)
        if rng_stream == RNG_STREAM_ARGSORT:
            rows, segments = self._argsort_layout()
            block = np.tile(x, (count, 1))
            if rows.size:
                keys = segments[None, :] + rng.random((count, rows.size))
                order = np.argsort(keys, axis=1, kind="stable")
                block[:, rows] = x[rows[order]]
            return block
        if rng_stream != RNG_STREAM_LEGACY:
            raise ValueError(
                f"unknown rng_stream {rng_stream!r}; expected one of "
                f"{RNG_STREAMS}")
        block = np.tile(x, (count, 1))
        for row in block:
            for indices in self.groups:
                row[indices] = x[rng.permutation(indices)]
        return block


# --------------------------------------------------------------------------- #
# beta quantiles (SciPy when available, pure python otherwise)
# --------------------------------------------------------------------------- #
def _betacf(a: float, b: float, x: float,
            max_iter: int = 300, eps: float = 3e-14) -> float:
    """Continued fraction of the incomplete beta (Lentz's method)."""
    tiny = 1e-300
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, max_iter + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < eps:
            break
    return h


def _regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """``I_x(a, b)`` — the beta distribution's CDF at ``x``."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
                + a * math.log(x) + b * math.log1p(-x))
    front = math.exp(ln_front)
    # The continued fraction converges fast on one side of the mean;
    # use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) for the other.
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def _beta_ppf_bisect(q: float, a: float, b: float,
                     tol: float = 1e-12, max_iter: int = 200) -> float:
    """Beta quantile by bisection on the regularized incomplete beta.

    ~40 CDF evaluations per call — plenty fast for the once-per-decision
    Clopper–Pearson bounds, and accurate to ``tol`` in ``x`` (the interval
    comparisons against ``alpha`` tolerate far more).
    """
    if q <= 0.0:
        return 0.0
    if q >= 1.0:
        return 1.0
    lower, upper = 0.0, 1.0
    for _ in range(max_iter):
        mid = 0.5 * (lower + upper)
        if _regularized_incomplete_beta(a, b, mid) < q:
            lower = mid
        else:
            upper = mid
        if upper - lower < tol:
            break
    return 0.5 * (lower + upper)


_BETA_PPF: Optional[Callable[[float, float, float], float]] = None


def _resolve_beta_ppf() -> Callable[[float, float, float], float]:
    """The beta quantile function, resolved once per process.

    SciPy's vectorised implementation when importable, the pure-python
    bisection otherwise — either way the import cost leaves the per-call
    path, and the Clopper–Pearson interval never degrades to the trivial
    ``(0, 1)`` bounds.
    """
    global _BETA_PPF
    if _BETA_PPF is None:
        try:
            from scipy.stats import beta as _scipy_beta
        except ImportError:  # pragma: no cover - exercised via monkeypatch
            _BETA_PPF = _beta_ppf_bisect
        else:
            _BETA_PPF = lambda q, a, b: float(_scipy_beta.ppf(q, a, b))
    return _BETA_PPF


# --------------------------------------------------------------------------- #
# sequential early-exit decision
# --------------------------------------------------------------------------- #
def clopper_pearson_interval(successes: int, trials: int,
                             confidence: float = CP_CONFIDENCE,
                             ) -> Tuple[float, float]:
    """Two-sided Clopper–Pearson interval for a binomial proportion."""
    if trials <= 0:
        return 0.0, 1.0
    beta_ppf = _resolve_beta_ppf()
    tail = (1.0 - confidence) / 2.0
    lower = 0.0 if successes == 0 else float(
        beta_ppf(tail, successes, trials - successes + 1))
    upper = 1.0 if successes == trials else float(
        beta_ppf(1.0 - tail, successes + 1, trials - successes))
    return lower, upper


def sequential_verdict(exceed: int, done: int, total: int,
                       alpha: float) -> Optional[bool]:
    """Early verdict (``True`` = independent) after ``done`` permutations.

    ``None`` means undecided.  The deterministic bracket on the final
    p-value never contradicts the full ``total``-permutation run; the
    Clopper–Pearson rule (large ``done`` only) bounds the true exceedance
    probability instead and is correct with probability ``CP_CONFIDENCE``.
    """
    if done >= total:
        return None
    # Final p = (K + 1) / (total + 1) with exceed <= K <= exceed + remaining.
    if (exceed + 1) / (total + 1) > alpha:
        return True
    if (exceed + (total - done) + 1) / (total + 1) <= alpha:
        return False
    if done >= CP_MIN_PERMUTATIONS:
        lower, upper = clopper_pearson_interval(exceed, done)
        if lower > alpha:
            return True
        if upper < alpha:
            return False
    return None


# --------------------------------------------------------------------------- #
# adaptive permutation budgets
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class PermutationBudget:
    """Policy of one permutation test's budget spend.

    Attributes
    ----------
    max_permutations:
        Adaptive cap: a test whose Clopper–Pearson interval still straddles
        ``alpha`` when its current target is exhausted extends the target
        geometrically up to this many permutations.  ``None`` (default)
        disables extension — the call-site ``n_permutations`` is final.
    growth:
        Geometric extension factor (new target =
        ``min(cap, ceil(target * growth))``).
    early_exit:
        Apply the sequential verdict between draws so clear-cut tests stop
        before exhausting the target (during an extension phase the verdict
        is always applied — an extended test is by definition past the
        base budget the caller asked for).
    rng_stream:
        ``"legacy"`` (bit-identical Fisher–Yates stream, default) or
        ``"argsort"`` (vectorised random-key sampling, different documented
        stream) — see :meth:`PermutationPlan.permute_block`.
    """

    max_permutations: Optional[int] = None
    growth: float = 2.0
    early_exit: bool = False
    rng_stream: str = RNG_STREAM_LEGACY

    def __post_init__(self) -> None:
        if self.max_permutations is not None and self.max_permutations < 1:
            raise ValueError(
                f"max_permutations must be >= 1 or None, "
                f"got {self.max_permutations}")
        if self.growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {self.growth}")
        if self.rng_stream not in RNG_STREAMS:
            raise ValueError(
                f"rng_stream must be one of {RNG_STREAMS}, "
                f"got {self.rng_stream!r}")

    @property
    def adaptive(self) -> bool:
        """Whether this budget may extend past the call-site permutations."""
        return self.max_permutations is not None

    def cap(self, base: int) -> int:
        """The hard permutation ceiling for a base budget of ``base``."""
        if self.max_permutations is None:
            return base
        return max(base, self.max_permutations)


def resolve_budget(budget: Optional[PermutationBudget],
                   early_exit: bool) -> PermutationBudget:
    """The effective budget: an explicit policy wins wholesale, otherwise
    the legacy ``early_exit`` flag maps onto a fixed-budget policy."""
    if budget is not None:
        return budget
    return PermutationBudget(early_exit=early_exit)


class PermutationOutcome:
    """Result of one (possibly budget-extended) permutation run.

    Iterates as the historical ``(exceed, n_run, verdict, computed)``
    tuple, so existing unpacking call sites keep working; ``extensions``
    and ``target`` additionally record how often the budget grew and the
    final permutation target.
    """

    __slots__ = ("exceed", "n_run", "verdict", "computed", "extensions",
                 "target")

    def __init__(self, exceed: int, n_run: int, verdict: Optional[bool],
                 computed: int, extensions: int = 0,
                 target: Optional[int] = None):
        self.exceed = exceed
        self.n_run = n_run
        self.verdict = verdict
        self.computed = computed
        self.extensions = extensions
        self.target = n_run if target is None else target

    def __iter__(self):
        return iter((self.exceed, self.n_run, self.verdict, self.computed))

    def __eq__(self, other) -> bool:
        if isinstance(other, PermutationOutcome):
            return (tuple(self) == tuple(other)
                    and self.extensions == other.extensions
                    and self.target == other.target)
        return tuple(self) == tuple(other)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PermutationOutcome(exceed={self.exceed}, "
                f"n_run={self.n_run}, verdict={self.verdict}, "
                f"computed={self.computed}, extensions={self.extensions}, "
                f"target={self.target})")

    @property
    def p_value(self) -> float:
        return (self.exceed + 1) / (self.n_run + 1)

    def independent(self, alpha: float) -> bool:
        """The final verdict (early decision, else p-value vs ``alpha``)."""
        if self.verdict is not None:
            return self.verdict
        return self.p_value > alpha


class BudgetedSequentialTest:
    """Mutable decision state of one budgeted sequential permutation test.

    Every driver (scalar, blocked, legacy loop, sharded coordinator) feeds
    exceedance outcomes through :meth:`update` one permutation at a time;
    the object owns the early-exit decision *and* the extension decision,
    so the four drivers cannot drift apart:

    * while ``done < target`` the sequential verdict applies whenever
      ``early_exit`` is set, or unconditionally once the test is past its
      base budget (an extension phase);
    * when the target is exhausted undecided, the budget extends iff the
      Clopper–Pearson interval on the exceedance probability still
      contains ``alpha`` and the cap allows it — otherwise the run ends
      and the caller derives the verdict from the p-value over all draws.

    A test that never extends therefore behaves exactly like the
    fixed-budget sequential test: flips relative to a fixed run can only
    come from extensions, and extensions only happen when the fixed
    verdict was statistically uncertain at confidence ``CP_CONFIDENCE``.
    """

    __slots__ = ("base", "alpha", "budget", "cap", "target", "exceed",
                 "done", "extensions")

    def __init__(self, n_permutations: int, alpha: float,
                 budget: Optional[PermutationBudget] = None):
        self.base = n_permutations
        self.alpha = alpha
        self.budget = budget if budget is not None else PermutationBudget()
        self.cap = self.budget.cap(n_permutations)
        self.target = n_permutations
        self.exceed = 0
        self.done = 0
        self.extensions = 0

    @property
    def want_more(self) -> bool:
        return self.done < self.target

    @property
    def remaining(self) -> int:
        return self.target - self.done

    def _straddles_alpha(self) -> bool:
        lower, upper = clopper_pearson_interval(self.exceed, self.done)
        return lower <= self.alpha <= upper

    def update(self, exceeded: bool) -> Optional[bool]:
        """Record one permutation; a non-``None`` return ends the test."""
        self.done += 1
        if exceeded:
            self.exceed += 1
        if self.done >= self.target:
            if self.target < self.cap and self._straddles_alpha():
                grown = int(math.ceil(self.target * self.budget.growth))
                self.target = min(self.cap, max(self.done + 1, grown))
                self.extensions += 1
            return None
        if self.budget.early_exit or self.done > self.base:
            return sequential_verdict(self.exceed, self.done, self.target,
                                      self.alpha)
        return None

    def outcome(self, verdict: Optional[bool],
                computed: int) -> PermutationOutcome:
        return PermutationOutcome(self.exceed, self.done, verdict, computed,
                                  self.extensions, self.target)


def report_outcome(counter_hook, outcome: PermutationOutcome,
                   n_permutations: int,
                   budget: PermutationBudget) -> None:
    """Emit the standard permutation counters for one finished test.

    ``perm_early_exit`` / ``perm_saved`` keep their historical meaning
    (sequential decision fired / permutations the base budget did not
    score); adaptive budgets add ``perm_budget_extended`` (tests that grew
    past the base) and ``perm_budget_saved`` (permutations saved relative
    to always paying the base budget — early exits under an adaptive
    policy).  Savings count ``computed`` (scored work including block
    look-ahead), not ``n_run``.

    Also tags the innermost open trace span (the per-test
    ``permutation_test`` span) with the outcome, so every driver —
    scalar, blocked, legacy loop, sharded — reports identically.
    """
    trace.annotate(
        permutations_run=outcome.n_run,
        permutations_computed=outcome.computed,
        early_exit=outcome.verdict is not None,
        budget_extensions=outcome.extensions,
        budget_target=outcome.target,
    )
    if counter_hook is None:
        return
    saved = n_permutations - outcome.computed
    if outcome.verdict is not None:
        counter_hook("perm_early_exit", 1)
        counter_hook("perm_saved", max(0, saved))
    if budget.adaptive:
        if outcome.extensions:
            counter_hook("perm_budget_extended", 1)
        if saved > 0:
            counter_hook("perm_budget_saved", saved)


# --------------------------------------------------------------------------- #
# generic (estimator-agnostic) sequential driver
# --------------------------------------------------------------------------- #
def sequential_permutation_test(
        x: np.ndarray, plan: PermutationPlan, rng: np.random.Generator,
        observed: float, n_permutations: int, alpha: float,
        null_statistic: Callable[[np.ndarray], float],
        early_exit: bool = False,
        budget: Optional[PermutationBudget] = None) -> PermutationOutcome:
    """Drive a per-permutation statistic through the plan.

    Returns a :class:`PermutationOutcome` — unpackable as the historical
    ``(exceed, n_run, verdict, computed)`` tuple, where ``verdict`` is the
    early decision (``None`` when the test ran to completion — the caller
    then derives the verdict from the p-value as before) and ``computed``
    is the number of null statistics actually evaluated (equal to
    ``n_run`` here; the blocked driver may look ahead).  With a
    non-adaptive budget and ``early_exit=False`` this is a bit-identical
    restructuring of the historical loop: same permutations, same
    statistics, same counts.  An adaptive ``budget`` may extend
    ``n_permutations`` geometrically while the verdict stays uncertain
    (always on the legacy scalar RNG stream — this driver never batches).
    """
    budget = resolve_budget(budget, early_exit)
    state = BudgetedSequentialTest(n_permutations, alpha, budget)
    verdict: Optional[bool] = None
    while state.want_more:
        permuted = plan.permute(x, rng)
        verdict = state.update(null_statistic(permuted) >= observed)
        if verdict is not None:
            break
    return state.outcome(verdict, state.done)


# --------------------------------------------------------------------------- #
# blocked kernel driver (fused conditioning codes)
# --------------------------------------------------------------------------- #
def _block_null_cmis(x_block: np.ndarray, y: np.ndarray, z: np.ndarray,
                     n_z: int, weights: Optional[np.ndarray],
                     estimator: str, base: float) -> np.ndarray:
    """Null CMIs of every permutation row of ``x_block`` in one bincount.

    Bit-identical to calling :func:`repro.infotheory.kernel.contingency_cmi`
    per row: cells accumulate in the same row order, and the entropies are
    read off per-permutation *prefix-trimmed* views of the count tensor so
    every reduction runs over exactly the array the scalar kernel builds.
    """
    from repro.infotheory.kernel import entropy_from_counts

    n_block, n_rows = x_block.shape
    base_mask = (y >= 0) & (z >= 0)
    valid = base_mask[None, :] & (x_block >= 0)
    # Per-permutation cardinalities: the scalar kernel derives n_x / n_y
    # from each permutation's complete cases (n_z arrives precomputed).
    masked_x = np.where(valid, x_block, -1)
    masked_y = np.where(valid, y[None, :], -1)
    n_x_rows = masked_x.max(axis=1) + 1
    n_y_rows = masked_y.max(axis=1) + 1
    n_x = int(n_x_rows.max()) if n_block else 0
    n_y = int(n_y_rows.max()) if n_block else 0
    cmis = np.zeros(n_block, dtype=np.float64)
    if n_x <= 0 or n_y <= 0:
        return cmis
    cells = n_x * n_y * n_z
    fused = (z[None, :] * n_y + y[None, :]) * n_x + masked_x
    fused += np.arange(n_block, dtype=np.int64)[:, None] * cells
    flat_valid = valid.ravel()
    flat_fused = fused.ravel()[flat_valid]
    if weights is not None:
        flat_weights = np.broadcast_to(weights, (n_block, n_rows)).ravel()[flat_valid]
        counts = np.bincount(flat_fused, weights=flat_weights,
                             minlength=n_block * cells)
    else:
        counts = np.bincount(flat_fused, minlength=n_block * cells).astype(np.float64)
    counts = counts.reshape(n_block, n_z, n_y, n_x)
    for index in range(n_block):
        if not valid[index].any():
            continue
        # Prefix-trim to this permutation's (n_z, n_y_b, n_x_b) shape — and
        # make it contiguous — so the marginal reductions run over the exact
        # arrays the scalar kernel would reduce (identical layouts and
        # therefore identical pairwise-summation trees).
        tensor = np.ascontiguousarray(
            counts[index, :, :int(n_y_rows[index]), :int(n_x_rows[index])])
        h_xyz = entropy_from_counts(tensor.ravel(), estimator=estimator, base=base)
        h_xz = entropy_from_counts(tensor.sum(axis=1).ravel(),
                                   estimator=estimator, base=base)
        h_yz = entropy_from_counts(tensor.sum(axis=2).ravel(),
                                   estimator=estimator, base=base)
        h_z = entropy_from_counts(tensor.sum(axis=(1, 2)),
                                  estimator=estimator, base=base)
        cmis[index] = max(0.0, h_xz + h_yz - h_xyz - h_z)
    return cmis


def blocked_permutation_test(
        x: np.ndarray, y: np.ndarray, z: np.ndarray, n_z: int,
        weights: Optional[np.ndarray], observed: float,
        n_permutations: int, alpha: float, rng: np.random.Generator,
        estimator: str = "plugin", base: float = 2.0,
        early_exit: bool = False, block_size: Optional[int] = None,
        budget: Optional[PermutationBudget] = None) -> PermutationOutcome:
    """Blocked permutation p-value machinery over fused conditioning codes.

    Samples permutations in blocks (one fancy-index + one shared bincount
    per block) and feeds the exceedance count through the sequential
    decision.  Returns a :class:`PermutationOutcome` (unpackable as the
    historical ``(exceed, n_run, verdict, computed)``) like
    :func:`sequential_permutation_test` — ``computed`` counts the null
    CMIs actually evaluated, which on an early exit includes the current
    block's look-ahead beyond ``n_run`` (the decision only sees a block
    after it is scored), so callers reporting savings use ``computed``,
    not ``n_run``.  With a non-adaptive budget, ``early_exit=False`` and
    the legacy RNG stream, the exceedance count — and therefore the
    p-value — is bit-identical to the per-permutation kernel loop over
    the same RNG stream.  An adaptive ``budget`` extends the target
    geometrically while the Clopper–Pearson interval straddles ``alpha``;
    look-ahead permutations already scored when an extension fires are
    consumed, not re-drawn.
    """
    from repro.infotheory import kernel

    budget = resolve_budget(budget, early_exit)
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    z = np.asarray(z, dtype=np.int64)
    plan = PermutationPlan(z)
    present_x = x[x >= 0]
    present_y = y[y >= 0]
    n_x_bound = int(present_x.max()) + 1 if present_x.size else 1
    n_y_bound = int(present_y.max()) + 1 if present_y.size else 1
    cells_bound = n_x_bound * n_y_bound * max(1, n_z)
    if cells_bound > kernel.DENSE_CELL_LIMIT:
        # Pathologically wide code spaces take the scalar kernel per
        # permutation (which compacts / falls back as needed); the plan
        # still removes the per-permutation strata re-derivation.  The
        # scalar driver always draws the legacy stream.
        return sequential_permutation_test(
            x, plan, rng, observed, n_permutations, alpha,
            lambda permuted: kernel.contingency_cmi(
                permuted, y, z, n_z=n_z, weights=weights,
                estimator=estimator, base=base),
            early_exit=early_exit, budget=budget)
    state = BudgetedSequentialTest(n_permutations, alpha, budget)
    if block_size is None:
        block_size = max(1, min(state.cap,
                                BLOCK_CELL_BUDGET // cells_bound,
                                BLOCK_ROW_BUDGET // max(1, len(x))))
    computed = 0
    # Blocking never changes the legacy RNG stream (permutations are drawn
    # sequentially regardless of block boundaries), so the early-exit ramp
    # below only trades batching width against wasted look-ahead.  The
    # ramp restarts small whenever an extension begins: extension phases
    # check the verdict after every draw, so the first-draw exit must not
    # pay for a full-width block.
    sequential = budget.early_exit or budget.adaptive
    ramp = EARLY_EXIT_INITIAL_BLOCK if sequential else block_size
    extensions_seen = 0
    while state.want_more:
        if state.extensions != extensions_seen:
            extensions_seen = state.extensions
            ramp = EARLY_EXIT_INITIAL_BLOCK
        count = min(ramp, block_size, state.remaining)
        ramp = min(ramp * 4, block_size)
        block = plan.permute_block(x, rng, count,
                                   rng_stream=budget.rng_stream)
        null_cmis = _block_null_cmis(block, y, z, n_z, weights, estimator, base)
        computed += count
        for value in null_cmis:
            if not state.want_more:
                break
            verdict = state.update(value >= observed)
            if verdict is not None:
                return state.outcome(verdict, computed)
    return state.outcome(None, computed)


# --------------------------------------------------------------------------- #
# sharded permutation partials (scatter-gather data plane)
# --------------------------------------------------------------------------- #
def block_partial_counts(x: np.ndarray, y: np.ndarray,
                         z: Optional[np.ndarray],
                         n_x: int, n_y: int, n_z: int,
                         weights: Optional[np.ndarray],
                         rng: np.random.Generator,
                         count: int,
                         rng_stream: str = RNG_STREAM_LEGACY) -> np.ndarray:
    """Partial permutation-null count tensors of one row shard.

    Permutes ``x`` within the strata of this shard's ``z`` slice — a
    *finer* stratification than whole-table strata (shard × stratum), which
    is equally valid under the permutation null — and returns a
    ``(count, n_z * n_y * n_x)`` matrix of partial contingency counts.
    All cardinalities are global, so summing the matrices of every shard
    yields, per permutation, a full count tensor ready for
    :func:`repro.infotheory.kernel.cmi_from_counts`.  Each shard draws from
    its own generator, keeping the null distribution deterministic for any
    shard count without coordinating RNG state; ``rng_stream`` selects the
    per-shard sampling stream (see :meth:`PermutationPlan.permute_block`).
    """
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    if z is None:
        z = np.zeros(len(x), dtype=np.int64)
    else:
        z = np.asarray(z, dtype=np.int64)
    cells = n_x * n_y * max(1, n_z)
    if len(x) == 0 or count <= 0:
        return np.zeros((max(0, count), cells), dtype=np.float64)
    plan = PermutationPlan(z)
    block = plan.permute_block(x, rng, count, rng_stream=rng_stream)
    valid = (y >= 0)[None, :] & (z >= 0)[None, :] & (block >= 0)
    masked_x = np.where(valid, block, 0)
    fused = (z[None, :] * n_y + y[None, :]) * n_x + masked_x
    fused += np.arange(count, dtype=np.int64)[:, None] * cells
    flat_valid = valid.ravel()
    flat_fused = fused.ravel()[flat_valid]
    if weights is not None:
        flat_weights = np.broadcast_to(
            np.asarray(weights, dtype=np.float64),
            (count, len(x))).ravel()[flat_valid]
        counts = np.bincount(flat_fused, weights=flat_weights,
                             minlength=count * cells)
    else:
        counts = np.bincount(flat_fused,
                             minlength=count * cells).astype(np.float64)
    return counts.reshape(count, cells)


def null_cmis_from_counts(counts: np.ndarray, n_x: int, n_y: int, n_z: int,
                          estimator: str = "plugin",
                          base: float = 2.0) -> np.ndarray:
    """Null CMIs from merged ``(count, cells)`` permutation partials.

    The tensors keep their global (untrimmed) dimensions; padding cells are
    empty and entropies ignore empty cells, so each value equals the CMI of
    the corresponding whole-table permutation counts.
    """
    from repro.infotheory.kernel import cmi_from_counts

    counts = np.asarray(counts, dtype=np.float64)
    cmis = np.zeros(counts.shape[0], dtype=np.float64)
    for index in range(counts.shape[0]):
        tensor = counts[index].reshape(max(1, n_z), n_y, n_x)
        cmis[index] = cmi_from_counts(tensor, estimator=estimator, base=base)
    return cmis
