"""Discrete information-theoretic estimators.

The paper measures partial correlation with conditional mutual information
(CMI) estimated from data by the Pyitlib library; this package provides the
same plug-in estimators from scratch, extended with per-row weights so that
the inverse-probability-weighting correction of Section 3.2 can be applied
directly inside the estimators.

All estimators operate on integer *code* arrays (one code per row, ``-1``
denoting a missing value) produced by :mod:`repro.infotheory.encoding`.
Rows with a missing value in any involved variable are excluded
(complete-case analysis), optionally re-weighted via the ``weights``
argument.

Two implementations coexist: the reference estimators in
:mod:`~repro.infotheory.entropy` / :mod:`~repro.infotheory.mutual_information`
(one masked entropy call per term), and the contingency-count kernel in
:mod:`~repro.infotheory.kernel` (one weighted ``bincount`` per term over
incrementally fused codes) which the explanation oracle uses by default.
The property tests assert both agree to 1e-9 on every estimate.
"""

from repro.infotheory.encoding import (
    EncodedFrame,
    encode_column,
    encode_table,
    joint_codes,
)
from repro.infotheory.entropy import (
    conditional_entropy,
    entropy,
    joint_entropy,
)
from repro.infotheory.mutual_information import (
    conditional_mutual_information,
    interaction_information,
    mutual_information,
)
from repro.infotheory.independence import (
    IndependenceResult,
    conditional_independence_test,
)
from repro.infotheory.kernel import (
    contingency_cmi,
    contingency_conditional_entropy,
    contingency_entropy,
    contingency_mi,
    fast_independence_test,
    fuse_codes,
)
from repro.infotheory.permutation import (
    PermutationBudget,
    PermutationOutcome,
    PermutationPlan,
    blocked_permutation_test,
    sequential_permutation_test,
)

__all__ = [
    "EncodedFrame",
    "encode_column",
    "encode_table",
    "joint_codes",
    "conditional_entropy",
    "entropy",
    "joint_entropy",
    "conditional_mutual_information",
    "interaction_information",
    "mutual_information",
    "IndependenceResult",
    "conditional_independence_test",
    "contingency_cmi",
    "contingency_conditional_entropy",
    "contingency_entropy",
    "contingency_mi",
    "fast_independence_test",
    "fuse_codes",
    "PermutationBudget",
    "PermutationOutcome",
    "PermutationPlan",
    "blocked_permutation_test",
    "sequential_permutation_test",
]
