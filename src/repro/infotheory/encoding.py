"""Encoding of table columns into integer codes for the estimators.

Information-theoretic quantities over a table are computed on factorised
columns: each distinct (present) value of a column gets an integer code and
missing cells get ``-1``.  Numeric columns are discretised first (the paper
bins numeric attributes before estimating CMI).  The :class:`EncodedFrame`
caches the encoding of every column of a table so that the explanation
search, which evaluates hundreds of CMI terms over the same table, does not
re-factorise columns repeatedly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import EstimationError
from repro.table.column import Column
from repro.table.discretize import DEFAULT_BINS, discretize_column
from repro.table.table import Table


def encode_column(column: Column, n_bins: int = DEFAULT_BINS,
                  strategy: str = "frequency") -> Tuple[np.ndarray, List[Any]]:
    """Encode a single column into integer codes.

    Numeric columns with more than ``n_bins`` distinct values are binned
    first; categorical columns are factorised directly.  Returns
    ``(codes, categories)`` with ``codes[i] == -1`` for missing cells.
    """
    if column.is_numeric() and column.n_unique() > n_bins:
        binned, _ = discretize_column(column, n_bins=n_bins, strategy=strategy)
        return binned.codes()
    return column.codes()


def joint_codes(code_arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Combine several code arrays into a single joint code array.

    The joint code of a row is a distinct integer for every distinct tuple of
    per-variable codes.  A missing value (``-1``) in any component makes the
    joint code ``-1``.  An empty sequence encodes the "empty conditioning
    set": every row gets joint code ``0``.
    """
    if len(code_arrays) == 0:
        raise EstimationError("joint_codes requires at least one code array")
    lengths = {len(codes) for codes in code_arrays}
    if len(lengths) != 1:
        raise EstimationError(f"Code arrays have differing lengths: {sorted(lengths)}")
    n = lengths.pop()
    if len(code_arrays) == 1:
        return np.asarray(code_arrays[0], dtype=np.int64).copy()
    stacked = np.stack([np.asarray(codes, dtype=np.int64) for codes in code_arrays], axis=1)
    missing = (stacked < 0).any(axis=1)
    result = np.full(n, -1, dtype=np.int64)
    if (~missing).any():
        present_rows = stacked[~missing]
        # np.unique over rows yields one inverse index per distinct tuple.
        _, inverse = np.unique(present_rows, axis=0, return_inverse=True)
        result[~missing] = inverse
    return result


@dataclass
class EncodedFrame:
    """A cache of encoded columns of one table.

    Parameters
    ----------
    table:
        The table whose columns are encoded lazily on first access.
    n_bins:
        Number of bins used when a numeric column must be discretised.
    strategy:
        Binning strategy (``"frequency"`` or ``"width"``).
    """

    table: Table
    n_bins: int = DEFAULT_BINS
    strategy: str = "frequency"
    _codes: Dict[str, np.ndarray] = field(default_factory=dict, repr=False)
    _categories: Dict[str, List[Any]] = field(default_factory=dict, repr=False)
    _missing_as_category: Dict[str, np.ndarray] = field(default_factory=dict,
                                                        repr=False)

    def install_encoding(self, column_name: str, codes: np.ndarray,
                         categories: List[Any]) -> None:
        """Install an externally computed encoding for one column.

        The zero-copy path of the shared-memory frame store: the owner
        process encodes a hot context once, and every worker installs
        **read-only views** over the shared code arrays instead of
        re-factorising.  Read-only arrays are safe throughout this class —
        every derived representation (``missing_as_category``,
        ``restrict``, ``joint``) copies before writing — and the install
        order (categories first) preserves the concurrent-reader guarantee
        of the lazy encoder.
        """
        if len(codes) != self.n_rows:
            raise EstimationError(
                f"Installed codes for {column_name!r} have {len(codes)} rows, "
                f"frame has {self.n_rows}")
        self._categories[column_name] = list(categories)
        self._codes[column_name] = codes

    @property
    def n_rows(self) -> int:
        """Number of rows of the underlying table."""
        return self.table.n_rows

    def codes(self, column_name: str, missing_as_category: bool = False) -> np.ndarray:
        """Integer codes for ``column_name`` (cached).

        With ``missing_as_category=True`` missing cells are remapped to an
        extra category (``len(categories)``) instead of the ``-1`` sentinel,
        so the estimators keep those rows instead of dropping them.  MESA
        uses this representation for *conditioning* attributes: a row whose
        confounder value is unknown cannot have its correlation explained by
        that confounder, so it keeps contributing its unconditional
        dependence rather than silently vanishing from the estimate.
        """
        if column_name not in self._codes:
            codes, categories = encode_column(
                self.table.column(column_name), n_bins=self.n_bins, strategy=self.strategy
            )
            # Categories first: frames are shared across threads (the
            # context-level frame cache hands one frame to every worker
            # pipeline), and a concurrent reader that observes the codes
            # entry must be able to rely on the categories entry existing.
            # A lost double-encode is harmless — the encoding is
            # deterministic — but a missing categories entry is a KeyError.
            self._categories[column_name] = categories
            self._codes[column_name] = codes
        codes = self._codes[column_name]
        if missing_as_category and (codes < 0).any():
            # Memoised: the explanation search requests the conditioning
            # representation of the same columns every greedy round, and
            # the remap is an O(n) scan + copy.
            remapped = self._missing_as_category.get(column_name)
            if remapped is None:
                remapped = codes.copy()
                remapped[remapped < 0] = len(self._categories[column_name])
                self._missing_as_category[column_name] = remapped
            return remapped
        return codes

    def categories(self, column_name: str) -> List[Any]:
        """The category list for ``column_name`` (index = code)."""
        self.codes(column_name)
        return self._categories[column_name]

    def codes_for(self, column_names: Sequence[str]) -> List[np.ndarray]:
        """Codes for several columns, in order."""
        return [self.codes(column_name) for column_name in column_names]

    def joint(self, column_names: Sequence[str]) -> np.ndarray:
        """Joint codes over several columns (``0`` everywhere for the empty set)."""
        if not column_names:
            return np.zeros(self.n_rows, dtype=np.int64)
        return joint_codes(self.codes_for(column_names))

    def observed_mask(self, column_name: str) -> np.ndarray:
        """Boolean mask, True where the column is present (the ``R_E`` indicator)."""
        return self.codes(column_name) >= 0

    def restrict(self, mask: np.ndarray) -> "EncodedFrame":
        """A new frame over the rows selected by ``mask``.

        Cached encodings are sliced rather than recomputed so that repeated
        context refinements (Section 4.3) stay cheap.
        """
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != self.n_rows:
            raise EstimationError(
                f"Restriction mask of length {len(mask)} does not match frame with "
                f"{self.n_rows} rows"
            )
        restricted = EncodedFrame(self.table.filter(mask), n_bins=self.n_bins,
                                  strategy=self.strategy)
        for column_name, codes in self._codes.items():
            restricted._codes[column_name] = codes[mask]
            restricted._categories[column_name] = self._categories[column_name]
        for column_name, codes in self._missing_as_category.items():
            restricted._missing_as_category[column_name] = codes[mask]
        return restricted


def encode_table(table: Table, n_bins: int = DEFAULT_BINS,
                 strategy: str = "frequency") -> EncodedFrame:
    """Convenience constructor for :class:`EncodedFrame`."""
    return EncodedFrame(table, n_bins=n_bins, strategy=strategy)
