"""Simulated user study (replacement for the paper's MTurk evaluation).

Each simulated subject rates an explanation on the paper's 1–5 scale.  The
subject's latent quality judgement combines

* **coverage** of the planted ground-truth confounders (did the explanation
  mention the factors that actually drive the outcome?),
* **precision** (are the mentioned attributes relevant at all?),
* **explanatory power** (how much of the correlation the set explains away),
* a **redundancy penalty** when the explanation spends several slots on
  attributes from the same equivalence group (``Year Low F`` + ``Year Avg F``),
* an **empty-explanation penalty** (methods that return nothing, as LR often
  does, read as unconvincing);

plus per-subject noise.  The oracle is deliberately simple — its purpose is
to let the Table 3 benchmark compare *methods* under a transparent,
documented stand-in for human judgement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

import numpy as np

from repro.core.explanation import Explanation
from repro.datasets.queries import EQUIVALENCE_GROUPS, RepresentativeQuery
from repro.utils.rng import SeedLike, make_rng


@dataclass(frozen=True)
class SimulatedStudyResult:
    """Aggregated scores of one method on one query."""

    method: str
    mean_score: float
    variance: float
    n_subjects: int


def redundancy_penalty(attributes: Sequence[str]) -> float:
    """0.0–1.0 penalty for spending several slots on equivalent attributes."""
    attributes = list(attributes)
    if len(attributes) < 2:
        return 0.0
    redundant_pairs = 0
    total_pairs = 0
    for i in range(len(attributes)):
        for j in range(i + 1, len(attributes)):
            total_pairs += 1
            for group in EQUIVALENCE_GROUPS:
                if attributes[i] in group and attributes[j] in group:
                    redundant_pairs += 1
                    break
    if total_pairs == 0:
        return 0.0
    return redundant_pairs / total_pairs


def explanation_quality(explanation: Explanation, query: RepresentativeQuery) -> float:
    """Latent quality in [0, 1] of one explanation for one query."""
    if not explanation.attributes:
        return 0.05
    coverage = query.coverage(explanation.attributes)
    precision = query.precision(explanation.attributes)
    power = explanation.relative_improvement
    penalty = 0.35 * redundancy_penalty(explanation.attributes)
    quality = 0.45 * coverage + 0.25 * precision + 0.30 * power - penalty
    return float(np.clip(quality, 0.0, 1.0))


def simulate_user_study(explanations: Mapping[str, Explanation],
                        query: RepresentativeQuery,
                        n_subjects: int = 150,
                        noise_scale: float = 0.7,
                        seed: SeedLike = 0) -> Dict[str, SimulatedStudyResult]:
    """Score every method's explanation with ``n_subjects`` simulated raters.

    Returns one :class:`SimulatedStudyResult` per method, keyed by method
    name.  Scores lie on the paper's 1–5 scale.
    """
    rng = make_rng(seed)
    results: Dict[str, SimulatedStudyResult] = {}
    for method, explanation in explanations.items():
        quality = explanation_quality(explanation, query)
        latent = 1.0 + 4.0 * quality
        scores = np.clip(latent + rng.normal(0.0, noise_scale, size=n_subjects), 1.0, 5.0)
        results[method] = SimulatedStudyResult(
            method=method,
            mean_score=float(scores.mean()),
            variance=float(scores.var()),
            n_subjects=n_subjects,
        )
    return results
