"""Multi-method experiment harness used by the quality benchmarks.

``run_methods_for_query`` runs every requested method on one representative
query of a dataset bundle through the engine's explainer registry: each
method name resolves to an :class:`~repro.engine.registry.Explainer`, and
the :class:`~repro.engine.pipeline.ExplanationPipeline` prepares the
problem the explainer searches.  All methods that accept the default
preparation share one prepared problem (same extraction, same pruned
candidates, same IPW weights), which mirrors the paper's protocol ("for a
fair comparison, we run all baselines (except for MESA-) after employing
our pruning optimizations"); MESA- asks the engine for the no-pruning
variant through its ``config_variant`` hook.  There is no per-method
branching here — adding a method is a registry registration, not a harness
edit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.explanation import Explanation
from repro.datasets.queries import RepresentativeQuery
from repro.datasets.registry import DatasetBundle
from repro.engine.pipeline import ExplanationPipeline
from repro.engine.registry import available_explainers, get_explainer
from repro.engine.result import ExplanationResult
from repro.exceptions import ExplanationError
from repro.mesa.config import MESAConfig

#: Methods the harness knows how to run (everything in the registry).
ALL_METHODS = available_explainers()


@dataclass
class ExperimentRun:
    """All method results for one query."""

    query: RepresentativeQuery
    explanations: Dict[str, Explanation] = field(default_factory=dict)
    mesa_result: Optional[ExplanationResult] = None

    def explainability_distance_from(self, reference_method: str) -> Dict[str, float]:
        """Per-method distance of the explainability score from a reference method.

        This is the quantity plotted in Figure 2 (distance from Brute-Force).
        Methods missing from the run are skipped.
        """
        if reference_method not in self.explanations:
            raise ExplanationError(
                f"Reference method {reference_method!r} was not run for {self.query.query_id}"
            )
        reference = self.explanations[reference_method].explainability
        return {method: explanation.explainability - reference
                for method, explanation in self.explanations.items()
                if method != reference_method}


def run_methods_for_query(bundle: DatasetBundle, query: RepresentativeQuery,
                          methods: Sequence[str] = ALL_METHODS,
                          k: int = 5,
                          config: Optional[MESAConfig] = None,
                          brute_force_k: int = 3,
                          brute_force_max_candidates: int = 30) -> ExperimentRun:
    """Run the requested methods on one representative query.

    One engine pipeline serves every method: MESA's own result (with the
    full pruning/selection-bias artefacts) is produced by ``explain``; each
    method then runs through ``run_explainer`` against the prepared problem
    its registry entry asks for.  Brute-force is restricted to the
    ``brute_force_max_candidates`` most relevant candidates so that it
    stays feasible, as in the paper where it only runs on the small
    datasets.
    """
    registered = set(available_explainers())
    unknown = [method for method in methods if method not in registered]
    if unknown:
        raise ExplanationError(
            f"Unknown method(s) {unknown}; supported: {available_explainers()}")
    config = config or MESAConfig(k=k, excluded_columns=bundle.id_columns)
    run = ExperimentRun(query=query)

    engine = ExplanationPipeline(bundle.table, bundle.knowledge_graph,
                                 bundle.extraction_specs, config=config)
    run.mesa_result = engine.explain(query.query, k=k)

    method_options: Dict[str, Dict[str, object]] = {
        "brute_force": {"max_k": brute_force_k,
                        "max_candidates": brute_force_max_candidates},
    }
    for method in methods:
        explainer = get_explainer(method, config=config,
                                  **method_options.get(method, {}))
        run.explanations[method] = engine.run_explainer(explainer, query.query, k=k)
    return run


def run_all_queries(bundle: DatasetBundle, methods: Sequence[str] = ALL_METHODS,
                    k: int = 5, config: Optional[MESAConfig] = None) -> List[ExperimentRun]:
    """Run the harness over every representative query of a bundle."""
    return [run_methods_for_query(bundle, query, methods=methods, k=k, config=config)
            for query in bundle.queries]
