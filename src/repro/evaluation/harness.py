"""Multi-method experiment harness used by the quality benchmarks.

``run_methods_for_query`` runs MESA, MESA- (no pruning) and the baselines on
one representative query of a dataset bundle, sharing the extraction and the
pruned candidate set the way the paper's protocol does ("for a fair
comparison, we run all baselines (except for MESA-) after employing our
pruning optimizations").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.baselines.brute_force import brute_force
from repro.baselines.cajade import cajade
from repro.baselines.hypdb import hypdb
from repro.baselines.linear_regression import linear_regression
from repro.baselines.top_k import top_k
from repro.core.explanation import Explanation
from repro.core.mcimr import mcimr
from repro.core.problem import CorrelationExplanationProblem
from repro.datasets.queries import RepresentativeQuery
from repro.datasets.registry import DatasetBundle
from repro.exceptions import ExplanationError
from repro.mesa.config import MESAConfig
from repro.mesa.system import MESA, MESAResult

#: Methods the harness knows how to run.
ALL_METHODS = ("mesa", "mesa_minus", "brute_force", "top_k", "linear_regression",
               "hypdb", "cajade")


@dataclass
class ExperimentRun:
    """All method results for one query."""

    query: RepresentativeQuery
    explanations: Dict[str, Explanation] = field(default_factory=dict)
    mesa_result: Optional[MESAResult] = None

    def explainability_distance_from(self, reference_method: str) -> Dict[str, float]:
        """Per-method distance of the explainability score from a reference method.

        This is the quantity plotted in Figure 2 (distance from Brute-Force).
        Methods missing from the run are skipped.
        """
        if reference_method not in self.explanations:
            raise ExplanationError(
                f"Reference method {reference_method!r} was not run for {self.query.query_id}"
            )
        reference = self.explanations[reference_method].explainability
        return {method: explanation.explainability - reference
                for method, explanation in self.explanations.items()
                if method != reference_method}


def run_methods_for_query(bundle: DatasetBundle, query: RepresentativeQuery,
                          methods: Sequence[str] = ALL_METHODS,
                          k: int = 5,
                          config: Optional[MESAConfig] = None,
                          brute_force_k: int = 3,
                          brute_force_max_candidates: int = 30) -> ExperimentRun:
    """Run the requested methods on one representative query.

    MESA runs its own full pipeline.  The other methods run on the problem
    instance MESA produced (same extraction, same pruned candidates, same
    IPW weights), which mirrors the paper's protocol and keeps the
    comparison about the *selection* strategy.  Brute-force is restricted to
    the ``brute_force_max_candidates`` most relevant candidates so that it
    stays feasible, as in the paper where it only runs on the small datasets.
    """
    unknown = [method for method in methods if method not in ALL_METHODS]
    if unknown:
        raise ExplanationError(f"Unknown method(s) {unknown}; supported: {ALL_METHODS}")
    config = config or MESAConfig(k=k, excluded_columns=bundle.id_columns)
    run = ExperimentRun(query=query)

    mesa_system = MESA(bundle.table, bundle.knowledge_graph, bundle.extraction_specs,
                       config=config)
    mesa_result = mesa_system.explain(query.query, k=k)
    run.mesa_result = mesa_result
    problem = mesa_result.problem
    candidates = list(problem.candidates)

    if "mesa" in methods:
        run.explanations["mesa"] = mesa_result.explanation

    if "mesa_minus" in methods:
        minus_system = MESA(bundle.table, bundle.knowledge_graph, bundle.extraction_specs,
                            config=config.without_pruning())
        run.explanations["mesa_minus"] = minus_system.explain(query.query, k=k).explanation

    if "top_k" in methods:
        run.explanations["top_k"] = top_k(problem, k=min(k, 3), candidates=candidates)
    if "linear_regression" in methods:
        run.explanations["linear_regression"] = linear_regression(
            problem, k=min(k, 3), candidates=candidates)
    if "hypdb" in methods:
        run.explanations["hypdb"] = hypdb(problem, k=min(k, 3), candidates=candidates)
    if "cajade" in methods:
        run.explanations["cajade"] = cajade(problem, k=min(k, 3), candidates=candidates)
    if "brute_force" in methods:
        ranked = sorted(candidates, key=problem.attribute_relevance)
        restricted = ranked[:brute_force_max_candidates]
        run.explanations["brute_force"] = brute_force(
            problem, k=brute_force_k, candidates=restricted,
            max_candidates=brute_force_max_candidates)
    return run


def run_all_queries(bundle: DatasetBundle, methods: Sequence[str] = ALL_METHODS,
                    k: int = 5, config: Optional[MESAConfig] = None) -> List[ExperimentRun]:
    """Run the harness over every representative query of a bundle."""
    return [run_methods_for_query(bundle, query, methods=methods, k=k, config=config)
            for query in bundle.queries]
