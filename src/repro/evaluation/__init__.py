"""Evaluation utilities: ground-truth scoring, simulated user study, harness.

The paper's quality evaluation (Tables 2 and 3) relies on a 150-subject
Amazon MTurk study; offline, the study is replaced by a simulated-subject
scoring oracle that rewards exactly the properties the paper argues make
explanations convincing: coverage of the true (planted) confounders,
precision (no irrelevant attributes), non-redundancy and explanatory power.

The harness is built on the engine's explainer registry
(:func:`repro.engine.registry.get_explainer`): every method runs behind the
uniform :class:`~repro.engine.registry.Explainer` surface, so adding a
method to the evaluation means registering it, not editing the harness.
"""

from repro.evaluation.harness import ALL_METHODS, ExperimentRun, run_methods_for_query
from repro.evaluation.scoring import SimulatedStudyResult, simulate_user_study

__all__ = [
    "ALL_METHODS",
    "ExperimentRun",
    "run_methods_for_query",
    "SimulatedStudyResult",
    "simulate_user_study",
]
