"""Lightweight timing utilities for the benchmark harness and MESA reports."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class Timer:
    """Accumulates named wall-clock durations.

    Used by :class:`repro.mesa.system.MESA` to report how long each phase of
    the pipeline (extraction, pruning, selection) took, mirroring the
    efficiency experiments in Section 5.3 of the paper.
    """

    durations: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def measure(self, label: str) -> Iterator[None]:
        """Context manager adding the elapsed time under ``label``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.durations[label] = self.durations.get(label, 0.0) + elapsed

    def total(self) -> float:
        """Total time across all recorded labels, in seconds."""
        return sum(self.durations.values())

    def as_dict(self) -> Dict[str, float]:
        """Return a copy of the recorded durations."""
        return dict(self.durations)


@contextmanager
def timed() -> Iterator[Dict[str, float]]:
    """Context manager yielding a dict whose ``"seconds"`` key is filled on exit."""
    result: Dict[str, float] = {}
    start = time.perf_counter()
    try:
        yield result
    finally:
        result["seconds"] = time.perf_counter() - start
