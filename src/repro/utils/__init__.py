"""Small shared utilities: random-number helpers, validation, timing."""

from repro.utils.rng import derive_seed, make_rng
from repro.utils.timing import Timer, timed
from repro.utils.validation import (
    require,
    require_columns,
    require_positive,
    require_probability,
)

__all__ = [
    "derive_seed",
    "make_rng",
    "Timer",
    "timed",
    "require",
    "require_columns",
    "require_positive",
    "require_probability",
]
