"""Deterministic random number helpers.

Every stochastic component of the library (synthetic dataset generators, the
missingness injectors, the simulated user study, permutation tests) accepts a
``seed`` or an already-constructed :class:`numpy.random.Generator`.  These
helpers centralise the seed handling so that seeds derived for sub-components
are stable across runs and across machines.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (non-deterministic), an integer, or an existing
    generator (returned unchanged so that callers can thread a single
    generator through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a stable child seed from ``base_seed`` and a label path.

    The derivation hashes the textual representation of the labels, so
    ``derive_seed(7, "covid", "deaths")`` always yields the same child seed
    regardless of Python hash randomisation.  This lets independent
    sub-generators (for example, one per synthetic attribute) stay
    uncorrelated while remaining reproducible.
    """
    digest = hashlib.sha256()
    digest.update(str(int(base_seed)).encode("utf-8"))
    for label in labels:
        digest.update(b"\x1f")
        digest.update(str(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


def spawn_rng(base_seed: int, *labels: object) -> np.random.Generator:
    """Construct a generator seeded by :func:`derive_seed`."""
    return np.random.default_rng(derive_seed(base_seed, *labels))


def maybe_seed(seed: SeedLike, default: Optional[int] = None) -> SeedLike:
    """Return ``seed`` if given, otherwise ``default``."""
    if seed is None:
        return default
    return seed
