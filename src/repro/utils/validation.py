"""Argument validation helpers used across the library.

These helpers raise the library's own exceptions (see
:mod:`repro.exceptions`) with readable messages instead of letting bare
``KeyError`` / ``AssertionError`` escape from deep inside an algorithm.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Type

from repro.exceptions import ReproError, SchemaError


def require(condition: bool, message: str, exc: Type[Exception] = ReproError) -> None:
    """Raise ``exc(message)`` unless ``condition`` holds."""
    if not condition:
        raise exc(message)


def require_positive(value: float, name: str, exc: Type[Exception] = ReproError) -> None:
    """Raise unless ``value`` is strictly positive."""
    if not value > 0:
        raise exc(f"{name} must be positive, got {value!r}")


def require_non_negative(value: float, name: str, exc: Type[Exception] = ReproError) -> None:
    """Raise unless ``value`` is zero or positive."""
    if value < 0:
        raise exc(f"{name} must be non-negative, got {value!r}")


def require_probability(value: float, name: str, exc: Type[Exception] = ReproError) -> None:
    """Raise unless ``value`` lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise exc(f"{name} must lie in [0, 1], got {value!r}")


def require_columns(available: Iterable[str], needed: Sequence[str]) -> None:
    """Raise :class:`SchemaError` if any column in ``needed`` is absent."""
    available_set = set(available)
    missing = [column for column in needed if column not in available_set]
    if missing:
        raise SchemaError(
            f"Missing column(s) {missing}; available columns are {sorted(available_set)}"
        )


def require_same_length(name_a: str, a: Sequence, name_b: str, b: Sequence,
                        exc: Type[Exception] = ReproError) -> None:
    """Raise unless the two sequences have the same length."""
    if len(a) != len(b):
        raise exc(f"{name_a} (length {len(a)}) and {name_b} (length {len(b)}) must have equal length")
