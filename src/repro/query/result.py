"""Results of executing an :class:`~repro.query.aggregate_query.AggregateQuery`."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.table.table import Table


@dataclass(frozen=True)
class QueryResult:
    """The grouped result of an aggregate query plus bookkeeping.

    Attributes
    ----------
    query:
        The query that produced this result.
    table:
        One row per exposure group: the exposure value followed by the
        aggregated outcome.
    n_input_rows:
        Number of rows that satisfied the context (used by benchmarks to
        check the ">10% of the tuples" constraint of the random-query
        generator in Section 5.1).
    """

    query: "Any"
    table: Table
    n_input_rows: int

    @property
    def n_groups(self) -> int:
        """Number of exposure groups in the result."""
        return self.table.n_rows

    def value_column(self) -> str:
        """Name of the aggregated output column."""
        return [name for name in self.table.column_names
                if name != self.query.exposure][0]

    def as_pairs(self) -> List[Tuple[Any, Any]]:
        """List of (exposure value, aggregated outcome) pairs."""
        value_column = self.value_column()
        return [(row[self.query.exposure], row[value_column]) for row in self.table.iter_rows()]

    def as_dict(self) -> Dict[Any, Any]:
        """Mapping from exposure value to aggregated outcome."""
        return dict(self.as_pairs())

    def spread(self) -> float:
        """Max minus min of the aggregated outcome across groups.

        A large spread is what makes a query result "surprising": the
        exposure appears to have a substantial effect on the outcome.
        """
        values = [value for _, value in self.as_pairs() if value is not None]
        if not values:
            return 0.0
        return float(max(values) - min(values))

    def to_text(self, max_rows: int = 20) -> str:
        """A small textual rendering for examples and reports."""
        lines = [f"{self.query.label()} ({self.n_groups} groups)"]
        for index, (group, value) in enumerate(self.as_pairs()):
            if index >= max_rows:
                lines.append(f"  ... {self.n_groups - max_rows} more groups")
                break
            rendered = "NULL" if value is None else f"{value:.3f}" if isinstance(value, float) else str(value)
            lines.append(f"  {group}: {rendered}")
        return "\n".join(lines)
