"""A small parser for the SQL-ish aggregate queries used in the paper.

Only the query shape MESA explains is supported::

    SELECT <exposure>, <agg>(<outcome>)
    FROM <table>
    [WHERE <column> = <value> [AND <column> = <value> ...]]
    GROUP BY <exposure>

The parser exists so that examples and tests can state queries in the same
form as the paper's figures; programmatic users construct
:class:`~repro.query.aggregate_query.AggregateQuery` objects directly.
"""

from __future__ import annotations

import re
from typing import Any, List

from repro.exceptions import QueryError
from repro.query.aggregate_query import AggregateQuery
from repro.table.expressions import And, Eq, Predicate, TRUE

_QUERY_RE = re.compile(
    r"""
    ^\s*SELECT\s+(?P<exposure>[\w\.\s]+?)\s*,\s*
    (?P<aggregate>\w+)\s*\(\s*(?P<outcome>[\w\.\s]+?)\s*\)\s+
    FROM\s+(?P<table>[\w\.]+)\s*
    (?:WHERE\s+(?P<where>.+?)\s*)?
    GROUP\s+BY\s+(?P<groupby>[\w\.\s]+?)\s*;?\s*$
    """,
    re.IGNORECASE | re.VERBOSE | re.DOTALL,
)

_CONDITION_RE = re.compile(r"^\s*(?P<column>[\w\.\s]+?)\s*=\s*(?P<value>.+?)\s*$")


def _parse_value(raw: str) -> Any:
    """Parse a literal WHERE-clause value (quoted string, int, float or bare word)."""
    raw = raw.strip()
    if (raw.startswith("'") and raw.endswith("'")) or (raw.startswith('"') and raw.endswith('"')):
        return raw[1:-1]
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    return raw


def _parse_where(where: str) -> Predicate:
    """Parse a conjunction of equality conditions."""
    parts: List[str] = re.split(r"\s+AND\s+", where, flags=re.IGNORECASE)
    predicates = []
    for part in parts:
        match = _CONDITION_RE.match(part)
        if match is None:
            raise QueryError(
                f"Cannot parse WHERE condition {part!r}: only '<column> = <value>' "
                "conditions joined by AND are supported"
            )
        predicates.append(Eq(match.group("column").strip(), _parse_value(match.group("value"))))
    if len(predicates) == 1:
        return predicates[0]
    return And(*predicates)


def parse_query(sql: str, name: str = None) -> AggregateQuery:
    """Parse a SQL string into an :class:`AggregateQuery`.

    Raises :class:`QueryError` if the statement does not match the supported
    ``SELECT T, agg(O) FROM ... [WHERE ...] GROUP BY T`` shape, or if the
    grouping attribute differs from the selected exposure.
    """
    match = _QUERY_RE.match(sql)
    if match is None:
        raise QueryError(
            "Cannot parse query; expected the form "
            "'SELECT <T>, <agg>(<O>) FROM <table> [WHERE ...] GROUP BY <T>'.\n"
            f"Got: {sql!r}"
        )
    exposure = match.group("exposure").strip()
    groupby = match.group("groupby").strip()
    if exposure.lower() != groupby.lower():
        raise QueryError(
            f"The selected grouping attribute {exposure!r} must match the GROUP BY "
            f"attribute {groupby!r}"
        )
    where = match.group("where")
    context = _parse_where(where) if where else TRUE
    return AggregateQuery(
        exposure=exposure,
        outcome=match.group("outcome").strip(),
        aggregate=match.group("aggregate").lower(),
        context=context,
        table_name=match.group("table"),
        name=name,
    )
