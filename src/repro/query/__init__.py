"""Aggregate group-by queries: the objects MESA explains.

A query names an exposure (grouping attribute ``T``), an outcome
(aggregated attribute ``O``), an aggregate function and an optional context
``C`` (the WHERE clause).  :func:`repro.query.parser.parse_query` accepts the
SQL-ish textual form used in the paper's examples.
"""

from repro.query.aggregate_query import AggregateQuery
from repro.query.parser import parse_query
from repro.query.result import QueryResult

__all__ = ["AggregateQuery", "parse_query", "QueryResult"]
