"""The :class:`AggregateQuery` model.

Following Section 2.1 of the paper, a query

.. code-block:: sql

    SELECT Country, avg(Salary)
    FROM SO
    WHERE Continent = 'Europe'
    GROUP BY Country

is represented by ``AggregateQuery(exposure="Country", outcome="Salary",
aggregate="avg", context=Eq("Continent", "Europe"), table_name="SO")``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.exceptions import QueryError
from repro.table.aggregates import AGGREGATE_FUNCTIONS
from repro.table.expressions import Predicate, TRUE
from repro.table.table import Table
from repro.query.result import QueryResult


@dataclass(frozen=True)
class AggregateQuery:
    """An aggregate group-by query comparing subgroups of the exposure.

    Attributes
    ----------
    exposure:
        The grouping attribute ``T`` whose groups are compared.
    outcome:
        The aggregated attribute ``O``.
    aggregate:
        Name of the aggregate function (``avg``, ``sum``, ``count`` ...).
    context:
        The WHERE-clause predicate ``C``; defaults to the always-true
        predicate (no filtering).
    table_name:
        Name of the table the query runs over (informational).
    name:
        Optional short identifier used by the benchmark harness
        (e.g. ``"SO-Q1"``).
    """

    exposure: str
    outcome: str
    aggregate: str = "avg"
    context: Predicate = TRUE
    table_name: str = "table"
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.aggregate.lower() not in AGGREGATE_FUNCTIONS:
            raise QueryError(
                f"Unknown aggregate {self.aggregate!r}; supported: {sorted(AGGREGATE_FUNCTIONS)}"
            )
        if self.exposure == self.outcome:
            raise QueryError("The exposure and outcome attributes must be different")

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def validate_against(self, table: Table) -> None:
        """Raise :class:`QueryError` if the query references columns absent from ``table``."""
        needed = {self.exposure, self.outcome} | set(self.context.columns())
        missing = [column for column in needed if column not in table]
        if missing:
            raise QueryError(
                f"Query {self.label()} references missing column(s) {sorted(missing)}; "
                f"table has {table.column_names}"
            )

    def apply_context(self, table: Table) -> Table:
        """Return the table restricted to rows satisfying the context ``C``."""
        self.validate_against(table)
        return table.filter(self.context)

    def execute(self, table: Table) -> QueryResult:
        """Execute the query and return its :class:`QueryResult`."""
        restricted = self.apply_context(table)
        grouped = restricted.group_by([self.exposure]).aggregate(
            {self._output_column(): (self.aggregate, self.outcome)}
        )
        return QueryResult(query=self, table=grouped, n_input_rows=restricted.n_rows)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _output_column(self) -> str:
        return f"{self.aggregate.lower()}_{self.outcome}"

    def label(self) -> str:
        """Short, human-readable identifier for reports."""
        return self.name or f"{self.aggregate}({self.outcome}) by {self.exposure}"

    def with_context(self, context: Predicate) -> "AggregateQuery":
        """A copy of this query with a different context."""
        return replace(self, context=context)

    def with_name(self, name: str) -> "AggregateQuery":
        """A copy of this query with a benchmark identifier."""
        return replace(self, name=name)

    def to_sql(self) -> str:
        """Render the query as the SQL string form used in the paper."""
        sql = (f"SELECT {self.exposure}, {self.aggregate}({self.outcome})\n"
               f"FROM {self.table_name}")
        if self.context is not TRUE:
            sql += f"\nWHERE {self.context!r}"
        sql += f"\nGROUP BY {self.exposure}"
        return sql
