"""Speculative execution of the next MCIMR round.

MCIMR rounds are strictly sequential in the paper's Algorithm 1: round
``i`` scores every remaining candidate, runs the responsibility stopping
criterion on the winner, and only then may round ``i + 1`` begin.  But the
two phases touch disjoint state: the responsibility test is a permutation
test over the *plain* fused conditioning codes
(``CorrelationExplanationProblem._plain_joint_cache``), while the next
round's :func:`~repro.core.mcimr.next_best_attribute` evaluates CMI /
pairwise-MI terms over the missing-as-category caches (``_cmi_cache`` /
``_mi_cache`` / ``_joint_cache``).  Both sides are pure, memoised
functions of the (immutable) encoded frame, so running them concurrently
changes wall-clock, never values.

:class:`Speculation` runs one such computation on a daemon thread.  The
search loop starts a speculation for round ``i + 1`` (assuming the
current winner will be accepted) right before round ``i``'s
responsibility test, then either *consumes* the result — the accept path,
where round ``i + 1``'s scoring has already happened under the test's
wall-clock — or *discards* it when the stopping criterion fires.  Either
way the thread is joined before the loop proceeds, so no speculative
work ever outlives the search and results are bit-identical to the
sequential schedule.

On a row-sharded problem the speculative scoring scatters count jobs to
the shard pool concurrently with the test's permutation rounds; the
pool's per-worker locks serialize requests per shard, and both job
streams are pure functions of their payloads, so interleaving is equally
safe there.
"""

from __future__ import annotations

import threading
from typing import Callable, Generic, Optional, TypeVar

T = TypeVar("T")


class Speculation(Generic[T]):
    """One in-flight speculative computation on a daemon worker thread.

    The computation starts immediately.  Exactly one of :meth:`result`
    (consume) or :meth:`discard` (drop) must be called; both join the
    thread, so the speculation never outlives its caller's round.
    """

    __slots__ = ("_thread", "_value", "_error")

    def __init__(self, compute: Callable[[], T]):
        self._value: Optional[T] = None
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, args=(compute,),
            name="mcimr-speculation", daemon=True)
        self._thread.start()

    def _run(self, compute: Callable[[], T]) -> None:
        try:
            self._value = compute()
        except BaseException as error:  # re-raised on the consuming thread
            self._error = error

    def result(self) -> T:
        """Wait for the computation and return (or re-raise) its outcome."""
        self._thread.join()
        if self._error is not None:
            raise self._error
        return self._value

    def discard(self) -> None:
        """Wait for the computation and drop its outcome (stop-path)."""
        self._thread.join()
        self._error = None
        self._value = None


def speculate(compute: Callable[[], T]) -> Speculation[T]:
    """Start ``compute`` on a speculation thread and return its handle."""
    return Speculation(compute)
