"""Degree of responsibility (Definition 2.2) and the responsibility test.

The responsibility of an attribute within an explanation is its normalised
marginal contribution:

.. math::

    Resp(E_i) = \\frac{I(O;T|E \\setminus \\{E_i\\}, C) - I(O;T|E, C)}
                      {\\sum_j I(O;T|E \\setminus \\{E_j\\}, C) - I(O;T|E, C)}

A negative responsibility means the attribute *harms* the explanation
(negative interaction information); MCIMR's stopping criterion (Lemma 4.2)
uses a conditional-independence test to detect candidates whose
responsibility would be ≈ 0 before paying for them.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.problem import CorrelationExplanationProblem


def marginal_contributions(problem: CorrelationExplanationProblem,
                           attributes: Sequence[str]) -> Dict[str, float]:
    """Unnormalised marginal contribution of each attribute in the set.

    The contribution of ``E_i`` is ``I(O;T|E \\ {E_i}, C) - I(O;T|E, C)``:
    how much the CMI would rise if the attribute were removed.
    """
    attributes = list(attributes)
    full_score = problem.explanation_score(attributes)
    contributions: Dict[str, float] = {}
    for attribute in attributes:
        without = [other for other in attributes if other != attribute]
        score_without = problem.explanation_score(without)
        contributions[attribute] = score_without - full_score
    return contributions


def responsibilities(problem: CorrelationExplanationProblem,
                     attributes: Sequence[str]) -> Dict[str, float]:
    """Degree of responsibility (Definition 2.2) of each selected attribute.

    For a single-attribute explanation the attribute trivially receives
    responsibility 1.0 (if it improves on the baseline) or 0.0 otherwise.
    When the normalising denominator is 0 (no attribute contributes) all
    responsibilities are 0.
    """
    attributes = list(attributes)
    if not attributes:
        return {}
    if len(attributes) == 1:
        attribute = attributes[0]
        improvement = problem.baseline_cmi() - problem.explanation_score(attributes)
        return {attribute: 1.0 if improvement > 0 else 0.0}
    contributions = marginal_contributions(problem, attributes)
    denominator = sum(contributions.values())
    if abs(denominator) < 1e-12:
        return {attribute: 0.0 for attribute in attributes}
    return {attribute: contribution / denominator
            for attribute, contribution in contributions.items()}


def responsibility_test(problem: CorrelationExplanationProblem, candidate: str,
                        selected: Sequence[str], cmi_threshold: float = 0.01,
                        n_permutations: int = 20) -> bool:
    """The stopping-criterion test of Algorithm 1 (line 5) / Lemma 4.2.

    Returns True when ``O ⊥ candidate | selected`` holds — i.e. the
    candidate's responsibility would be ≤ 0 and the algorithm should stop
    before adding it.  The test first applies a cheap CMI-threshold shortcut
    and then (with ``n_permutations > 0``) a stratified permutation test,
    which corrects the upward small-sample bias of the plug-in CMI estimate
    that would otherwise keep the algorithm adding attributes.
    """
    result = problem.independence_test(problem.outcome, candidate, selected,
                                       threshold=cmi_threshold,
                                       n_permutations=n_permutations)
    return result.independent
