"""Pruning optimisations (Section 4.2 of the paper).

Two families of rules reduce the candidate attribute set ``A``:

* **Offline (pre-processing, across-queries) pruning** — drops attributes
  that can never be interesting explanations: constant attributes,
  attributes with more than 90 % missing values, and near-unique
  "identifier" attributes with very high entropy (``wikiID``-style).
* **Online (query-specific) pruning** — executed once the exposure and
  outcome are known: attributes logically (functionally) dependent on ``T``
  or ``O`` are discarded (Lemma A.2: conditioning on them trivially zeroes
  the CMI without being a confounder), and attributes with low individual
  relevance (``O ⊥ E | C`` and ``O ⊥ E | C, T``) are discarded under the
  paper's no-XOR-explanations assumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.problem import CorrelationExplanationProblem
from repro.table.table import Table


@dataclass
class PruningResult:
    """Outcome of a pruning pass.

    Attributes
    ----------
    kept:
        Candidate attributes that survive.
    dropped:
        Mapping from dropped attribute to the rule that removed it.
    """

    kept: List[str] = field(default_factory=list)
    dropped: Dict[str, str] = field(default_factory=dict)

    @property
    def n_dropped(self) -> int:
        """Number of attributes removed."""
        return len(self.dropped)

    def drop_fraction(self) -> float:
        """Fraction of the input attributes that were removed."""
        total = len(self.kept) + len(self.dropped)
        if total == 0:
            return 0.0
        return len(self.dropped) / total

    def dropped_by_rule(self) -> Dict[str, int]:
        """Number of attributes dropped per rule."""
        counts: Dict[str, int] = {}
        for rule in self.dropped.values():
            counts[rule] = counts.get(rule, 0) + 1
        return counts


# --------------------------------------------------------------------------- #
# Offline pruning
# --------------------------------------------------------------------------- #
def offline_prune(table: Table, candidates: Sequence[str],
                  max_missing_fraction: float = 0.9,
                  high_entropy_unique_ratio: float = 0.9,
                  min_rows_for_entropy_rule: int = 20) -> PruningResult:
    """Across-queries pruning: constant, mostly-missing and identifier-like attributes.

    Parameters
    ----------
    table:
        The augmented table (before any context is applied — this pruning is
        query independent and can be cached across queries).
    candidates:
        The attributes to consider.
    max_missing_fraction:
        Attributes missing in more than this fraction of the rows are dropped
        (the paper uses 90 %).
    high_entropy_unique_ratio:
        Non-numeric attributes whose number of distinct values exceeds this
        fraction of the number of present values are treated as identifiers
        (``wikiID``-style) and dropped.  Numeric attributes are exempt: a
        continuous measurement is near-unique per row by nature and is
        binned before estimation anyway.
    min_rows_for_entropy_rule:
        The identifier rule only fires when the table has at least this many
        rows; tiny tables would otherwise lose legitimate attributes.
    """
    result = PruningResult()
    for attribute in candidates:
        column = table.column(attribute)
        n_present = len(column) - column.missing_count()
        n_unique = column.n_unique()
        if n_unique <= 1:
            result.dropped[attribute] = "constant"
            continue
        if column.missing_fraction() > max_missing_fraction:
            result.dropped[attribute] = "missing"
            continue
        if (not column.is_numeric()
                and table.n_rows >= min_rows_for_entropy_rule and n_present > 0
                and n_unique / n_present >= high_entropy_unique_ratio):
            result.dropped[attribute] = "high_entropy"
            continue
        result.kept.append(attribute)
    return result


# --------------------------------------------------------------------------- #
# Online pruning
# --------------------------------------------------------------------------- #
def online_prune(problem: CorrelationExplanationProblem,
                 candidates: Optional[Sequence[str]] = None,
                 fd_entropy_threshold: float = 0.05,
                 relevance_cmi_threshold: float = 0.01,
                 determination_ratio: float = 0.25,
                 relevance_permutations: int = 20) -> PruningResult:
    """Query-specific pruning: logical dependencies and low-relevance attributes.

    Parameters
    ----------
    problem:
        The problem instance (provides the encoded context table).
    candidates:
        Attributes to consider; defaults to ``problem.candidates``.
    fd_entropy_threshold:
        An attribute ``E`` is considered functionally equivalent to ``T``
        (resp. ``O``) when both ``H(T|E)`` and ``H(E|T)`` fall below this
        threshold (approximate functional dependency in both directions,
        e.g. ``CountryCode ⇔ Country``).
    relevance_cmi_threshold:
        Threshold of the conditional-independence shortcut used by the
        low-relevance rule: ``E`` is dropped when ``O ⊥ E | C`` and
        ``O ⊥ E | C, T`` both hold.
    determination_ratio:
        Generalisation of the logical-dependency rule for *categorical*
        attributes that nearly determine the exposure or the outcome without
        the reverse dependency holding (e.g. ``Currency`` almost pinning
        down ``Country``): the attribute is dropped when ``H(T|E) / H(T)``
        falls below this ratio.  Conditioning on such an attribute zeroes
        the CMI for the trivial reason of Lemma A.2 rather than because it
        is a confounder.  Numeric attributes are exempt (they are binned
        before estimation and legitimately coarse confounders such as
        ``Fleet size`` must survive).  Set to 0 to disable.
    relevance_permutations:
        Number of permutations used by the low-relevance independence test;
        the permutation null corrects the upward small-sample bias of the
        plug-in estimate, which would otherwise keep irrelevant attributes.
    """
    if candidates is None:
        candidates = problem.candidates
    result = PruningResult()
    exposure = problem.exposure
    outcome = problem.outcome
    for attribute in candidates:
        if _functionally_equivalent(problem, attribute, exposure, fd_entropy_threshold):
            result.dropped[attribute] = "logical_dependency_exposure"
            continue
        if _functionally_equivalent(problem, attribute, outcome, fd_entropy_threshold):
            result.dropped[attribute] = "logical_dependency_outcome"
            continue
        is_categorical = not problem.context_table.column(attribute).is_numeric()
        if (determination_ratio > 0 and is_categorical
                and _nearly_determines(problem, attribute, exposure, determination_ratio)):
            result.dropped[attribute] = "near_determines_exposure"
            continue
        if (determination_ratio > 0 and is_categorical
                and _nearly_determines(problem, attribute, outcome, determination_ratio)):
            result.dropped[attribute] = "near_determines_outcome"
            continue
        if _low_relevance(problem, attribute, relevance_cmi_threshold,
                          relevance_permutations):
            result.dropped[attribute] = "low_relevance"
            continue
        result.kept.append(attribute)
    return result


def _nearly_determines(problem: CorrelationExplanationProblem, attribute: str,
                       target: str, ratio: float) -> bool:
    """Whether knowing ``attribute`` leaves less than ``ratio`` of ``target``'s entropy.

    ``problem.entropy_of`` is memoised, so the repeated per-candidate
    lookups of ``H(T)``/``H(O)`` cost one estimate each.
    """
    h_target = problem.entropy_of(target)
    if h_target <= 0:
        return False
    remaining = problem.conditional_entropy_of(target, [attribute])
    return remaining / h_target < ratio


def _functionally_equivalent(problem: CorrelationExplanationProblem, attribute: str,
                             target: str, threshold: float) -> bool:
    """Approximate two-way functional dependency between attribute and target."""
    h_target_given_attribute = problem.conditional_entropy_of(target, [attribute])
    if h_target_given_attribute > threshold:
        return False
    h_attribute_given_target = problem.conditional_entropy_of(attribute, [target])
    return h_attribute_given_target <= threshold


def _low_relevance(problem: CorrelationExplanationProblem, attribute: str,
                   threshold: float, n_permutations: int = 20,
                   dependent_threshold: float = 0.15) -> bool:
    """The Relevance Test of the appendix: O ⊥ E | C and O ⊥ E | C, T.

    Attributes whose association with the outcome is clearly above
    ``dependent_threshold`` skip the permutation test (they are obviously
    relevant); the permutations only arbitrate the grey zone where the
    plug-in estimate's small-sample bias could go either way.
    """
    unconditional = problem.independence_test(problem.outcome, attribute,
                                              threshold=threshold,
                                              n_permutations=n_permutations,
                                              dependent_threshold=dependent_threshold)
    if not unconditional.independent:
        return False
    conditional = problem.independence_test(problem.outcome, attribute,
                                            [problem.exposure],
                                            threshold=threshold,
                                            n_permutations=n_permutations,
                                            dependent_threshold=dependent_threshold)
    return conditional.independent


def prune(problem: CorrelationExplanationProblem,
          offline: bool = True, online: bool = True,
          **kwargs) -> PruningResult:
    """Convenience wrapper running offline then online pruning.

    The combined result reports every dropped attribute with the rule that
    removed it and the surviving candidates in their original order.
    """
    candidates: Sequence[str] = problem.candidates
    combined = PruningResult()
    if offline:
        offline_result = offline_prune(problem.full_table, candidates,
                                       **{key: value for key, value in kwargs.items()
                                          if key in ("max_missing_fraction",
                                                     "high_entropy_unique_ratio",
                                                     "min_rows_for_entropy_rule")})
        combined.dropped.update(offline_result.dropped)
        candidates = offline_result.kept
    if online:
        online_result = online_prune(problem, candidates,
                                     **{key: value for key, value in kwargs.items()
                                        if key in ("fd_entropy_threshold",
                                                   "relevance_cmi_threshold",
                                                   "determination_ratio")})
        combined.dropped.update(online_result.dropped)
        candidates = online_result.kept
    combined.kept = list(candidates)
    return combined
