"""The Correlation-Explanation problem instance (Definition 2.1).

A :class:`CorrelationExplanationProblem` bundles everything the search
algorithms need:

* the (augmented) table restricted to the query's context ``C``;
* the exposure ``T`` and outcome ``O``;
* the candidate attribute list ``A``;
* per-attribute inverse-probability weights for selection-biased attributes;
* a memoised conditional-mutual-information oracle, since both MCIMR and the
  brute-force baseline evaluate many overlapping CMI terms over the same
  table.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ExplanationError
from repro.infotheory import kernel
from repro.infotheory.encoding import EncodedFrame
from repro.infotheory.entropy import conditional_entropy, entropy
from repro.infotheory.independence import IndependenceResult, conditional_independence_test
from repro.infotheory.mutual_information import (
    conditional_mutual_information,
    mutual_information,
)
from repro.obs import trace
from repro.query.aggregate_query import AggregateQuery
from repro.table.discretize import DEFAULT_BINS
from repro.table.table import Table


class CorrelationExplanationProblem:
    """One instance of the Correlation-Explanation problem.

    Parameters
    ----------
    table:
        The augmented table (input dataset joined with the extracted
        attributes).  The query context has *not* been applied yet; the
        constructor applies it.
    query:
        The aggregate query whose exposure/outcome correlation is being
        explained.
    candidates:
        The candidate attribute names ``A`` (everything that may enter an
        explanation).  They must exist in ``table``.
    attribute_weights:
        Optional per-attribute IPW weight vectors (aligned with the rows of
        the *context-restricted* table).  Only attributes flagged with
        selection bias need an entry.
    n_bins:
        Number of bins used when numeric attributes are discretised for the
        information-theoretic estimates.
    use_kernel:
        Route the oracle through the fast contingency-count kernel
        (:mod:`repro.infotheory.kernel`): one ``bincount`` per CMI term and
        incremental joint coding of conditioning sets.  Disable to fall
        back to the reference estimators (same values, slower) — the
        performance benchmark compares both paths.
    frame:
        An existing :class:`EncodedFrame` over the *context-restricted*
        table to adopt instead of encoding from scratch.  The engine passes
        the first problem instance's frame when it rebuilds the problem
        with IPW weights, so every column is factorised at most once per
        query — and the :class:`~repro.engine.context.PipelineContext`
        frame cache passes it across queries sharing a context, so every
        column is factorised at most once per *context*.  The adopted
        frame's code arrays may be **read-only shared-memory views**
        (:mod:`repro.shm`): every code consumer in this class treats code
        arrays as immutable — derived representations (joint codes, fused
        conditioning sets, restrictions, permutation blocks) are always
        freshly allocated — so a frame encoded once per box serves any
        number of problems in any number of processes.
    context_table:
        The context-restricted table the adopted ``frame`` encodes.  When
        given, the constructor skips re-applying the query context (the
        caller — the pipeline's frame cache — already filtered the rows).
        Must be passed together with ``frame``.
    use_blocked_permutations:
        Run the kernel path's permutation tests on the blocked engine
        (:mod:`repro.infotheory.permutation`) — bit-identical p-values,
        one shared ``bincount`` per permutation block.  Disable to
        reproduce the per-permutation loop (the performance benchmark
        compares both).
    permutation_early_exit:
        Allow the sequential early-exit decision to stop permutation runs
        once the verdict is determined (verdicts preserved, permutation
        counts — and hence exact p-values — may differ from a full run).
    permutation_budget:
        Optional :class:`~repro.infotheory.permutation.PermutationBudget`
        policy for every permutation test this problem runs.  When given
        it wins over ``permutation_early_exit`` wholesale; an adaptive
        policy (``max_permutations`` set) extends statistically uncertain
        tests geometrically while clear-cut tests exit early, and
        ``rng_stream="argsort"`` selects the vectorised sampling stream.
    counter_hook:
        Optional ``(name, increment)`` callable observing backend counters
        (``perm_early_exit``, ``perm_saved``, ``perm_budget_extended``,
        ``perm_budget_saved``).  The engine passes
        ``PipelineContext.count`` so the serving ``/stats`` endpoint
        surfaces them.
    seconds_hook:
        Optional ``(name, seconds)`` callable observing backend phase
        timings (``permutation_test``); the engine passes
        ``PipelineContext.add_seconds``.
    """

    #: Bound on the cached fused conditioning-code arrays (LRU); each entry
    #: costs ``8 * n_rows`` bytes.
    MAX_JOINT_CACHE = 128

    def __init__(self, table: Table, query: AggregateQuery, candidates: Sequence[str],
                 attribute_weights: Optional[Dict[str, np.ndarray]] = None,
                 n_bins: int = DEFAULT_BINS, use_kernel: bool = True,
                 frame: Optional[EncodedFrame] = None,
                 context_table: Optional[Table] = None,
                 use_blocked_permutations: bool = True,
                 permutation_early_exit: bool = False,
                 permutation_budget=None,
                 counter_hook=None, seconds_hook=None):
        query.validate_against(table)
        if context_table is not None and frame is None:
            raise ExplanationError(
                "context_table adoption requires the matching encoded frame"
            )
        missing = [name for name in candidates if name not in table]
        if missing:
            raise ExplanationError(
                f"Candidate attribute(s) {missing} are not columns of the table"
            )
        forbidden = {query.exposure, query.outcome}
        overlapping = [name for name in candidates if name in forbidden]
        if overlapping:
            raise ExplanationError(
                f"Candidate attributes may not include the exposure or outcome: {overlapping}"
            )
        self.query = query
        self.full_table = table
        self.context_table = context_table if context_table is not None \
            else query.apply_context(table)
        if self.context_table.n_rows == 0:
            raise ExplanationError(
                f"The query context {query.context!r} selects no rows"
            )
        self.candidates: List[str] = list(dict.fromkeys(candidates))
        self.n_bins = n_bins
        if frame is not None:
            if frame.n_rows != self.context_table.n_rows or frame.n_bins != n_bins:
                raise ExplanationError(
                    f"Adopted frame has {frame.n_rows} rows / {frame.n_bins} bins, "
                    f"expected {self.context_table.n_rows} rows / {n_bins} bins"
                )
            self.frame = frame
        else:
            self.frame = EncodedFrame(self.context_table, n_bins=n_bins)
        self.attribute_weights: Dict[str, np.ndarray] = dict(attribute_weights or {})
        for attribute, weights in self.attribute_weights.items():
            if len(weights) != self.context_table.n_rows:
                raise ExplanationError(
                    f"IPW weights for {attribute!r} have length {len(weights)}, "
                    f"expected {self.context_table.n_rows} (context rows)"
                )
        self.use_kernel = use_kernel
        self.use_blocked_permutations = use_blocked_permutations
        self.permutation_early_exit = permutation_early_exit
        self.permutation_budget = permutation_budget
        self.counter_hook = counter_hook
        self.seconds_hook = seconds_hook
        self._cmi_cache: Dict[Tuple[str, ...], float] = {}
        self._mi_cache: Dict[Tuple[str, str], float] = {}
        self._entropy_cache: Dict[str, float] = {}
        # Fused conditioning codes (incremental joint coding), keyed by the
        # sorted attribute tuple.  Two caches because the CMI oracle encodes
        # conditioning attributes with missing-as-category while the
        # independence tests use the plain codes.
        self._joint_cache: "OrderedDict[Tuple[str, ...], Tuple[np.ndarray, int]]" = \
            OrderedDict()
        self._plain_joint_cache: "OrderedDict[Tuple[str, ...], Tuple[np.ndarray, int]]" = \
            OrderedDict()

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def exposure(self) -> str:
        """The exposure attribute ``T``."""
        return self.query.exposure

    @property
    def outcome(self) -> str:
        """The outcome attribute ``O``."""
        return self.query.outcome

    @property
    def n_rows(self) -> int:
        """Number of rows satisfying the query context."""
        return self.context_table.n_rows

    def has_selection_bias(self, attribute: str) -> bool:
        """Whether IPW weights were supplied for the attribute."""
        return attribute in self.attribute_weights

    # ------------------------------------------------------------------ #
    # weighted estimation helpers
    # ------------------------------------------------------------------ #
    def _weights_for(self, attributes: Sequence[str]) -> Optional[np.ndarray]:
        """Combined IPW weights for a set of attributes.

        The paper applies weights per selection-biased attribute; when a
        conditioning set contains several such attributes their weights are
        multiplied (a row must be re-weighted for every biased attribute it
        contributes to).  ``None`` means no re-weighting is needed.
        """
        combined: Optional[np.ndarray] = None
        for attribute in attributes:
            weights = self.attribute_weights.get(attribute)
            if weights is None:
                continue
            combined = weights.copy() if combined is None else combined * weights
        return combined

    # ------------------------------------------------------------------ #
    # incremental joint coding (fast kernel)
    # ------------------------------------------------------------------ #
    def _conditioning_codes(self, attribute: str, plain: bool) -> np.ndarray:
        if plain:
            return self.frame.codes(attribute)
        return self.frame.codes(attribute, missing_as_category=True)

    def _joint_for(self, key: Tuple[str, ...], plain: bool = False,
                   ) -> Tuple[np.ndarray, int]:
        """Fused codes + cardinality of a conditioning set (cached, LRU).

        Extending a cached set ``Z`` to ``Z ∪ {a}`` is one ``O(n)`` fuse
        against the cached codes instead of a re-factorisation from
        scratch: the method looks for a cached subset one attribute short,
        falling back to a recursive build over the prefix (which leaves
        every prefix cached for the next caller).

        With ``plain=True`` (the independence-test representation) the
        fuse happens strictly left to right in the caller's attribute
        order: permutation tests stratify on these codes, and sorted
        place-value codes must reproduce the reference ``joint_codes``
        label order — lexicographic in *caller* order — for the RNG to be
        consumed identically.  The missing-as-category cache only feeds
        order-invariant scalar estimates, so it may extend any cached
        subset regardless of order.
        """
        if not key:
            return np.zeros(self.context_table.n_rows, dtype=np.int64), 1
        cache = self._plain_joint_cache if plain else self._joint_cache
        cached = cache.get(key)
        if cached is not None:
            cache.move_to_end(key)
            return cached
        if len(key) == 1:
            codes = self._conditioning_codes(key[0], plain)
            entry = (codes, kernel.code_cardinality(codes))
        else:
            entry = None
            if not plain:
                for dropped in key:
                    shorter = tuple(name for name in key if name != dropped)
                    base = cache.get(shorter)
                    if base is not None:
                        extra = self._conditioning_codes(dropped, plain)
                        fused, card = kernel.fuse_codes(
                            base[0], base[1], extra, kernel.code_cardinality(extra))
                        entry = kernel.maybe_compact(fused, card)
                        break
            if entry is None:
                base = self._joint_for(key[:-1], plain=plain)
                extra = self._conditioning_codes(key[-1], plain)
                fused, card = kernel.fuse_codes(
                    base[0], base[1], extra, kernel.code_cardinality(extra))
                entry = kernel.maybe_compact(fused, card)
        cache[key] = entry
        while len(cache) > self.MAX_JOINT_CACHE:
            cache.popitem(last=False)
        return entry

    # ------------------------------------------------------------------ #
    # information-theoretic oracle
    # ------------------------------------------------------------------ #
    def cmi(self, conditioning: Sequence[str] = ()) -> float:
        """``I(O; T | conditioning, C)`` with memoisation and IPW weights.

        Missing values of conditioning attributes form their own stratum
        (see :meth:`repro.infotheory.encoding.EncodedFrame.codes`): a row
        whose confounder value is unknown keeps its unexplained dependence
        instead of being dropped, which prevents sparsely populated
        attributes from looking like good explanations merely because their
        complete cases exclude entire exposure groups.
        """
        key = tuple(sorted(conditioning))
        if key not in self._cmi_cache:
            if self.use_kernel:
                fused, card = self._joint_for(key)
                value = kernel.contingency_cmi(
                    self.frame.codes(self.outcome),
                    self.frame.codes(self.exposure),
                    fused, n_z=card,
                    weights=self._weights_for(key),
                )
            else:
                codes = [self.frame.codes(attribute, missing_as_category=True)
                         for attribute in key]
                value = conditional_mutual_information(
                    self.frame.codes(self.outcome),
                    self.frame.codes(self.exposure),
                    codes,
                    weights=self._weights_for(key),
                )
            self._cmi_cache[key] = value
        return self._cmi_cache[key]

    def score_candidates(self, attributes: Sequence[str],
                         given: Sequence[str] = ()) -> Dict[str, float]:
        """``I(O;T | given ∪ {a}, C)`` for every candidate ``a``, batched.

        One greedy round of MCIMR (and the ranking passes of the brute-force
        and top-k explainers) scores every remaining candidate against the
        same selected set: the fused codes of ``given`` are built once and
        each candidate costs a single ``O(n)`` fuse plus one ``bincount``,
        instead of a full re-factorisation per candidate.  Results land in
        the same memo the scalar :meth:`cmi` oracle uses.
        """
        given = tuple(given)
        given_set = set(given)
        scores: Dict[str, float] = {}
        if not self.use_kernel:
            for attribute in attributes:
                extended = given if attribute in given_set else given + (attribute,)
                scores[attribute] = self.cmi(extended)
            return scores
        base, base_card = self._joint_for(tuple(sorted(given)))
        x = self.frame.codes(self.outcome)
        y = self.frame.codes(self.exposure)
        for attribute in attributes:
            key = tuple(sorted(given_set | {attribute}))
            value = self._cmi_cache.get(key)
            if value is None:
                extra = self.frame.codes(attribute, missing_as_category=True)
                fused, card = kernel.fuse_codes(
                    base, base_card, extra, kernel.code_cardinality(extra))
                fused, card = kernel.maybe_compact(fused, card)
                value = kernel.contingency_cmi(x, y, fused, n_z=card,
                                               weights=self._weights_for(key))
                self._cmi_cache[key] = value
            scores[attribute] = value
        return scores

    def baseline_cmi(self) -> float:
        """``I(O; T | C)`` — the unexplained correlation."""
        return self.cmi(())

    def explanation_score(self, attributes: Sequence[str]) -> float:
        """The explainability score of an attribute set (lower is better)."""
        return self.cmi(attributes)

    def objective(self, attributes: Sequence[str]) -> float:
        """The Definition 2.1 objective ``I(O;T|E,C) * |E|``."""
        if not attributes:
            return self.baseline_cmi()
        return self.explanation_score(attributes) * len(attributes)

    def pairwise_mi(self, a: str, b: str) -> float:
        """``I(A; B)`` between two candidate attributes (memoised, weighted)."""
        key = (a, b) if a <= b else (b, a)
        if key not in self._mi_cache:
            estimator = kernel.contingency_mi if self.use_kernel else mutual_information
            value = estimator(
                self.frame.codes(a, missing_as_category=True),
                self.frame.codes(b, missing_as_category=True),
                weights=self._weights_for([a, b]),
            )
            self._mi_cache[key] = value
        return self._mi_cache[key]

    def attribute_relevance(self, attribute: str) -> float:
        """Individual explanation power ``I(O;T|C, attribute)`` (lower = stronger)."""
        return self.cmi([attribute])

    def entropy_of(self, attribute: str) -> float:
        """Entropy of an attribute within the context (memoised).

        Pruning evaluates ``H(T)``/``H(O)`` once per candidate; the memo
        makes those repeat lookups free.
        """
        cached = self._entropy_cache.get(attribute)
        if cached is None:
            if self.use_kernel:
                cached = kernel.contingency_entropy(self.frame.codes(attribute))
            else:
                cached = entropy(self.frame.codes(attribute))
            self._entropy_cache[attribute] = cached
        return cached

    def conditional_entropy_of(self, target: str, given: Sequence[str]) -> float:
        """``H(target | given)`` within the context."""
        if self.use_kernel:
            fused, card = self._joint_for(tuple(sorted(given)), plain=True)
            if not given:
                fused = None
                card = None
            return kernel.contingency_conditional_entropy(
                self.frame.codes(target), fused, n_given=card)
        return conditional_entropy(self.frame.codes(target),
                                   [self.frame.codes(g) for g in given])

    # ------------------------------------------------------------------ #
    # independence testing
    # ------------------------------------------------------------------ #
    def independence_test(self, a: str, b: str, conditioning: Sequence[str] = (),
                          **kwargs) -> IndependenceResult:
        """Conditional-independence test between two columns given others.

        On the kernel path the conditioning set is fused once (cached) and
        the permutation phase runs on the blocked engine
        (``use_blocked_permutations``); verdicts, p-values and RNG
        consumption are identical to the reference implementation.  With
        ``permutation_early_exit`` the sequential decision may stop a run
        early (verdict preserved); elapsed wall-clock is reported to
        ``seconds_hook`` under ``permutation_test``.
        """
        weights = self._weights_for([a, b, *conditioning])
        start = time.perf_counter() if self.seconds_hook is not None else 0.0
        try:
            with trace.span("permutation_test", a=a, b=b,
                            conditioning=len(conditioning)):
                return self._independence_test(a, b, conditioning, weights,
                                               **kwargs)
        finally:
            if self.seconds_hook is not None:
                self.seconds_hook("permutation_test",
                                  time.perf_counter() - start)

    def _independence_test(self, a: str, b: str, conditioning: Sequence[str],
                           weights, **kwargs) -> IndependenceResult:
        if self.use_kernel:
            # Fuse in *caller* order: the permutation strata then sort the
            # same way the reference ``joint_codes`` labels do, so the RNG
            # is consumed stratum-for-stratum identically.
            fused, card = self._joint_for(tuple(conditioning), plain=True)
            if not conditioning:
                fused, card = None, None
            return kernel.fast_independence_test(
                self.frame.codes(a), self.frame.codes(b), fused, n_z=card,
                weights=weights,
                use_blocked=self.use_blocked_permutations,
                early_exit=self.permutation_early_exit,
                counter_hook=self.counter_hook,
                budget=self.permutation_budget,
                **kwargs,
            )
        return conditional_independence_test(
            self.frame.codes(a), self.frame.codes(b),
            [self.frame.codes(c) for c in conditioning],
            weights=weights,
            early_exit=self.permutation_early_exit,
            counter_hook=self.counter_hook,
            budget=self.permutation_budget,
            **kwargs,
        )

    # ------------------------------------------------------------------ #
    # derived problems
    # ------------------------------------------------------------------ #
    def restricted_to(self, mask: np.ndarray) -> "CorrelationExplanationProblem":
        """A new problem over a row subset of the *context* table.

        Used by the unexplained-subgroup search, which evaluates the same
        explanation on refinements of the context.  Attribute weights are
        sliced along with the rows.
        """
        restricted = CorrelationExplanationProblem.__new__(CorrelationExplanationProblem)
        restricted.query = self.query
        restricted.full_table = self.full_table
        restricted.context_table = self.context_table.filter(mask)
        restricted.candidates = list(self.candidates)
        restricted.n_bins = self.n_bins
        restricted.frame = self.frame.restrict(mask)
        restricted.attribute_weights = {
            attribute: weights[np.asarray(mask, dtype=bool)]
            for attribute, weights in self.attribute_weights.items()
        }
        restricted.use_kernel = self.use_kernel
        restricted.use_blocked_permutations = self.use_blocked_permutations
        restricted.permutation_early_exit = self.permutation_early_exit
        restricted.permutation_budget = self.permutation_budget
        restricted.counter_hook = self.counter_hook
        restricted.seconds_hook = self.seconds_hook
        restricted._cmi_cache = {}
        restricted._mi_cache = {}
        restricted._entropy_cache = {}
        restricted._joint_cache = OrderedDict()
        restricted._plain_joint_cache = OrderedDict()
        return restricted

    def subset_candidates(self, candidates: Iterable[str]) -> "CorrelationExplanationProblem":
        """A shallow copy of the problem with a reduced candidate list.

        The CMI caches are shared (they are keyed by attribute names, so
        entries stay valid), which lets pruning produce a cheaper problem
        without recomputation.
        """
        clone = CorrelationExplanationProblem.__new__(CorrelationExplanationProblem)
        clone.query = self.query
        clone.full_table = self.full_table
        clone.context_table = self.context_table
        clone.candidates = [name for name in candidates]
        clone.n_bins = self.n_bins
        clone.frame = self.frame
        clone.attribute_weights = self.attribute_weights
        clone.use_kernel = self.use_kernel
        clone.use_blocked_permutations = self.use_blocked_permutations
        clone.permutation_early_exit = self.permutation_early_exit
        clone.permutation_budget = self.permutation_budget
        clone.counter_hook = self.counter_hook
        clone.seconds_hook = self.seconds_hook
        clone._cmi_cache = self._cmi_cache
        clone._mi_cache = self._mi_cache
        clone._entropy_cache = self._entropy_cache
        clone._joint_cache = self._joint_cache
        clone._plain_joint_cache = self._plain_joint_cache
        return clone
