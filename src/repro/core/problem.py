"""The Correlation-Explanation problem instance (Definition 2.1).

A :class:`CorrelationExplanationProblem` bundles everything the search
algorithms need:

* the (augmented) table restricted to the query's context ``C``;
* the exposure ``T`` and outcome ``O``;
* the candidate attribute list ``A``;
* per-attribute inverse-probability weights for selection-biased attributes;
* a memoised conditional-mutual-information oracle, since both MCIMR and the
  brute-force baseline evaluate many overlapping CMI terms over the same
  table.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ExplanationError
from repro.infotheory.encoding import EncodedFrame
from repro.infotheory.entropy import conditional_entropy, entropy
from repro.infotheory.independence import IndependenceResult, conditional_independence_test
from repro.infotheory.mutual_information import (
    conditional_mutual_information,
    mutual_information,
)
from repro.query.aggregate_query import AggregateQuery
from repro.table.discretize import DEFAULT_BINS
from repro.table.table import Table


class CorrelationExplanationProblem:
    """One instance of the Correlation-Explanation problem.

    Parameters
    ----------
    table:
        The augmented table (input dataset joined with the extracted
        attributes).  The query context has *not* been applied yet; the
        constructor applies it.
    query:
        The aggregate query whose exposure/outcome correlation is being
        explained.
    candidates:
        The candidate attribute names ``A`` (everything that may enter an
        explanation).  They must exist in ``table``.
    attribute_weights:
        Optional per-attribute IPW weight vectors (aligned with the rows of
        the *context-restricted* table).  Only attributes flagged with
        selection bias need an entry.
    n_bins:
        Number of bins used when numeric attributes are discretised for the
        information-theoretic estimates.
    """

    def __init__(self, table: Table, query: AggregateQuery, candidates: Sequence[str],
                 attribute_weights: Optional[Dict[str, np.ndarray]] = None,
                 n_bins: int = DEFAULT_BINS):
        query.validate_against(table)
        missing = [name for name in candidates if name not in table]
        if missing:
            raise ExplanationError(
                f"Candidate attribute(s) {missing} are not columns of the table"
            )
        forbidden = {query.exposure, query.outcome}
        overlapping = [name for name in candidates if name in forbidden]
        if overlapping:
            raise ExplanationError(
                f"Candidate attributes may not include the exposure or outcome: {overlapping}"
            )
        self.query = query
        self.full_table = table
        self.context_table = query.apply_context(table)
        if self.context_table.n_rows == 0:
            raise ExplanationError(
                f"The query context {query.context!r} selects no rows"
            )
        self.candidates: List[str] = list(dict.fromkeys(candidates))
        self.n_bins = n_bins
        self.frame = EncodedFrame(self.context_table, n_bins=n_bins)
        self.attribute_weights: Dict[str, np.ndarray] = dict(attribute_weights or {})
        for attribute, weights in self.attribute_weights.items():
            if len(weights) != self.context_table.n_rows:
                raise ExplanationError(
                    f"IPW weights for {attribute!r} have length {len(weights)}, "
                    f"expected {self.context_table.n_rows} (context rows)"
                )
        self._cmi_cache: Dict[Tuple[str, ...], float] = {}
        self._mi_cache: Dict[Tuple[str, str], float] = {}

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def exposure(self) -> str:
        """The exposure attribute ``T``."""
        return self.query.exposure

    @property
    def outcome(self) -> str:
        """The outcome attribute ``O``."""
        return self.query.outcome

    @property
    def n_rows(self) -> int:
        """Number of rows satisfying the query context."""
        return self.context_table.n_rows

    def has_selection_bias(self, attribute: str) -> bool:
        """Whether IPW weights were supplied for the attribute."""
        return attribute in self.attribute_weights

    # ------------------------------------------------------------------ #
    # weighted estimation helpers
    # ------------------------------------------------------------------ #
    def _weights_for(self, attributes: Sequence[str]) -> Optional[np.ndarray]:
        """Combined IPW weights for a set of attributes.

        The paper applies weights per selection-biased attribute; when a
        conditioning set contains several such attributes their weights are
        multiplied (a row must be re-weighted for every biased attribute it
        contributes to).  ``None`` means no re-weighting is needed.
        """
        combined: Optional[np.ndarray] = None
        for attribute in attributes:
            weights = self.attribute_weights.get(attribute)
            if weights is None:
                continue
            combined = weights.copy() if combined is None else combined * weights
        return combined

    # ------------------------------------------------------------------ #
    # information-theoretic oracle
    # ------------------------------------------------------------------ #
    def cmi(self, conditioning: Sequence[str] = ()) -> float:
        """``I(O; T | conditioning, C)`` with memoisation and IPW weights.

        Missing values of conditioning attributes form their own stratum
        (see :meth:`repro.infotheory.encoding.EncodedFrame.codes`): a row
        whose confounder value is unknown keeps its unexplained dependence
        instead of being dropped, which prevents sparsely populated
        attributes from looking like good explanations merely because their
        complete cases exclude entire exposure groups.
        """
        key = tuple(sorted(conditioning))
        if key not in self._cmi_cache:
            codes = [self.frame.codes(attribute, missing_as_category=True)
                     for attribute in key]
            value = conditional_mutual_information(
                self.frame.codes(self.outcome),
                self.frame.codes(self.exposure),
                codes,
                weights=self._weights_for(key),
            )
            self._cmi_cache[key] = value
        return self._cmi_cache[key]

    def baseline_cmi(self) -> float:
        """``I(O; T | C)`` — the unexplained correlation."""
        return self.cmi(())

    def explanation_score(self, attributes: Sequence[str]) -> float:
        """The explainability score of an attribute set (lower is better)."""
        return self.cmi(attributes)

    def objective(self, attributes: Sequence[str]) -> float:
        """The Definition 2.1 objective ``I(O;T|E,C) * |E|``."""
        if not attributes:
            return self.baseline_cmi()
        return self.explanation_score(attributes) * len(attributes)

    def pairwise_mi(self, a: str, b: str) -> float:
        """``I(A; B)`` between two candidate attributes (memoised, weighted)."""
        key = (a, b) if a <= b else (b, a)
        if key not in self._mi_cache:
            value = mutual_information(
                self.frame.codes(a, missing_as_category=True),
                self.frame.codes(b, missing_as_category=True),
                weights=self._weights_for([a, b]),
            )
            self._mi_cache[key] = value
        return self._mi_cache[key]

    def attribute_relevance(self, attribute: str) -> float:
        """Individual explanation power ``I(O;T|C, attribute)`` (lower = stronger)."""
        return self.cmi([attribute])

    def entropy_of(self, attribute: str) -> float:
        """Entropy of an attribute within the context."""
        return entropy(self.frame.codes(attribute))

    def conditional_entropy_of(self, target: str, given: Sequence[str]) -> float:
        """``H(target | given)`` within the context."""
        return conditional_entropy(self.frame.codes(target),
                                   [self.frame.codes(g) for g in given])

    # ------------------------------------------------------------------ #
    # independence testing
    # ------------------------------------------------------------------ #
    def independence_test(self, a: str, b: str, conditioning: Sequence[str] = (),
                          **kwargs) -> IndependenceResult:
        """Conditional-independence test between two columns given others."""
        return conditional_independence_test(
            self.frame.codes(a), self.frame.codes(b),
            [self.frame.codes(c) for c in conditioning],
            weights=self._weights_for([a, b, *conditioning]),
            **kwargs,
        )

    # ------------------------------------------------------------------ #
    # derived problems
    # ------------------------------------------------------------------ #
    def restricted_to(self, mask: np.ndarray) -> "CorrelationExplanationProblem":
        """A new problem over a row subset of the *context* table.

        Used by the unexplained-subgroup search, which evaluates the same
        explanation on refinements of the context.  Attribute weights are
        sliced along with the rows.
        """
        restricted = CorrelationExplanationProblem.__new__(CorrelationExplanationProblem)
        restricted.query = self.query
        restricted.full_table = self.full_table
        restricted.context_table = self.context_table.filter(mask)
        restricted.candidates = list(self.candidates)
        restricted.n_bins = self.n_bins
        restricted.frame = self.frame.restrict(mask)
        restricted.attribute_weights = {
            attribute: weights[np.asarray(mask, dtype=bool)]
            for attribute, weights in self.attribute_weights.items()
        }
        restricted._cmi_cache = {}
        restricted._mi_cache = {}
        return restricted

    def subset_candidates(self, candidates: Iterable[str]) -> "CorrelationExplanationProblem":
        """A shallow copy of the problem with a reduced candidate list.

        The CMI caches are shared (they are keyed by attribute names, so
        entries stay valid), which lets pruning produce a cheaper problem
        without recomputation.
        """
        clone = CorrelationExplanationProblem.__new__(CorrelationExplanationProblem)
        clone.query = self.query
        clone.full_table = self.full_table
        clone.context_table = self.context_table
        clone.candidates = [name for name in candidates]
        clone.n_bins = self.n_bins
        clone.frame = self.frame
        clone.attribute_weights = self.attribute_weights
        clone._cmi_cache = self._cmi_cache
        clone._mi_cache = self._mi_cache
        return clone
