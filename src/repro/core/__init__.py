"""Core algorithms of the paper.

* :class:`~repro.core.problem.CorrelationExplanationProblem` — the
  Correlation-Explanation problem instance (Definition 2.1): the augmented
  table, the query, the candidate attributes and the (weighted) CMI oracle.
* :func:`~repro.core.mcimr.mcimr` — the MCIMR algorithm (Algorithm 1) with
  its responsibility-test stopping criterion.
* :func:`~repro.core.responsibility.responsibilities` — degree of
  responsibility (Definition 2.2).
* :mod:`~repro.core.pruning` — offline and online pruning optimisations
  (Section 4.2).
* :func:`~repro.core.subgroups.top_k_unexplained_groups` — Algorithm 2, the
  search for the largest unexplained data subgroups (Section 4.3).
"""

from repro.core.candidates import CandidateSet, build_candidate_set
from repro.core.explanation import Explanation
from repro.core.mcimr import MCIMRTrace, mcimr, next_best_attribute
from repro.core.problem import CorrelationExplanationProblem
from repro.core.pruning import (
    PruningResult,
    offline_prune,
    online_prune,
)
from repro.core.responsibility import responsibilities, responsibility_test
from repro.core.subgroups import Subgroup, top_k_unexplained_groups

__all__ = [
    "CandidateSet",
    "build_candidate_set",
    "Explanation",
    "MCIMRTrace",
    "mcimr",
    "next_best_attribute",
    "CorrelationExplanationProblem",
    "PruningResult",
    "offline_prune",
    "online_prune",
    "responsibilities",
    "responsibility_test",
    "Subgroup",
    "top_k_unexplained_groups",
]
