"""Assembly of the candidate attribute set ``A``.

Following Section 2.2, the candidate set is ``E ∪ T_attrs \\ {O, T}``: every
attribute of the input table plus every extracted attribute, minus the
outcome, the exposure and (by default) the attributes the query context
conditions on — conditioning on a context attribute is meaningless because
it is constant within the context.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Set

from repro.query.aggregate_query import AggregateQuery
from repro.table.table import Table


@dataclass(frozen=True)
class CandidateSet:
    """The candidate attributes, split by provenance.

    Attributes
    ----------
    from_dataset:
        Candidates that already existed in the input dataset.
    from_knowledge_source:
        Candidates added by knowledge-graph extraction.
    """

    from_dataset: tuple
    from_knowledge_source: tuple

    @property
    def all(self) -> List[str]:
        """All candidates, dataset attributes first."""
        return list(self.from_dataset) + list(self.from_knowledge_source)

    def __len__(self) -> int:
        return len(self.from_dataset) + len(self.from_knowledge_source)

    def __contains__(self, attribute: str) -> bool:
        return attribute in self.from_dataset or attribute in self.from_knowledge_source

    def is_extracted(self, attribute: str) -> bool:
        """Whether the attribute came from the knowledge source."""
        return attribute in set(self.from_knowledge_source)


def build_candidate_set(table: Table, query: AggregateQuery,
                        extracted_attributes: Sequence[str] = (),
                        exclude: Iterable[str] = (),
                        drop_context_columns: bool = True) -> CandidateSet:
    """Build the candidate set for a query over an augmented table.

    Parameters
    ----------
    table:
        The augmented table (dataset columns plus extracted columns).
    query:
        The aggregate query; its exposure and outcome are always excluded.
    extracted_attributes:
        Names of the columns added by extraction (used only to label the
        provenance of each candidate).
    exclude:
        Extra columns to exclude (identifier columns, for example).
    drop_context_columns:
        Whether to drop the columns referenced by the query's WHERE clause.
    """
    excluded: Set[str] = {query.exposure, query.outcome}
    excluded.update(exclude)
    if drop_context_columns:
        excluded.update(query.context.columns())
    extracted = [name for name in extracted_attributes if name in table]
    extracted_set = set(extracted)
    dataset_candidates = [name for name in table.column_names
                          if name not in excluded and name not in extracted_set]
    kg_candidates = [name for name in extracted if name not in excluded]
    return CandidateSet(from_dataset=tuple(dataset_candidates),
                        from_knowledge_source=tuple(kg_candidates))
