"""Top-k unexplained data subgroups (Section 4.3, Algorithm 2).

Given a query, its explanation ``E`` and a threshold ``τ``, the algorithm
searches for the *largest* data groups — context refinements ``C'`` of the
query's context ``C`` — whose explanation score ``I(O;T|C',E)`` exceeds
``τ``: groups for which the global explanation is not satisfactory and a
different explanation is required.

The refinements form a pattern graph; the algorithm traverses it top-down
with a max-heap ordered by group size, generating each refinement at most
once and never descending below a refinement that already qualified (its
ancestors subsume it).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.problem import CorrelationExplanationProblem
from repro.exceptions import ExplanationError
from repro.table.discretize import discretize_column
from repro.table.expressions import Condition


@dataclass(frozen=True)
class Subgroup:
    """One unexplained data subgroup.

    Attributes
    ----------
    condition:
        The context refinement defining the group (assignments *added* to the
        query's own context).
    size:
        Number of rows of the context table belonging to the group.
    explanation_score:
        ``I(O;T | C', E)`` for this group — above the threshold by
        construction.
    """

    condition: Condition
    size: int
    explanation_score: float

    def describe(self) -> str:
        """Readable rendering used in reports (mirrors Table 4)."""
        body = " AND ".join(f"{attribute} = {value}"
                            for attribute, value in self.condition.assignments)
        return f"{body or 'TRUE'} (size={self.size}, score={self.explanation_score:.3f})"


class _RefinementSpace:
    """Enumerates context refinements over a set of (binned) attributes."""

    def __init__(self, problem: CorrelationExplanationProblem,
                 attributes: Sequence[str], n_bins: int, max_values_per_attribute: int):
        self.problem = problem
        self.attributes = list(attributes)
        self.values: Dict[str, List[object]] = {}
        self.masks: Dict[Tuple[str, object], np.ndarray] = {}
        table = problem.context_table
        for attribute in self.attributes:
            column = table.column(attribute)
            if column.is_numeric() and column.n_unique() > n_bins:
                column, _ = discretize_column(column, n_bins=n_bins)
            values = column.unique()
            if len(values) > max_values_per_attribute:
                counts = column.value_counts()
                values = sorted(counts, key=lambda v: -counts[v])[:max_values_per_attribute]
            self.values[attribute] = list(values)
            mask_all = column.missing_mask
            for value in self.values[attribute]:
                mask = np.array([(not mask_all[i]) and column[i] == value
                                 for i in range(len(column))], dtype=bool)
                self.masks[(attribute, value)] = mask

    def children(self, condition: Condition) -> Iterable[Condition]:
        """All refinements obtained by adding one assignment on a new attribute.

        To generate each node of the pattern graph at most once, an attribute
        may only be added if it sorts after every attribute already assigned
        (canonical generation order).
        """
        assigned = condition.columns()
        last = max(assigned) if assigned else ""
        for attribute in self.attributes:
            if attribute in assigned or attribute <= last:
                continue
            for value in self.values[attribute]:
                yield condition.refine(attribute, value)

    def mask(self, condition: Condition) -> np.ndarray:
        """Row mask (within the context table) of a refinement."""
        result = np.ones(self.problem.context_table.n_rows, dtype=bool)
        for attribute, value in condition.assignments:
            result &= self.masks[(attribute, value)]
        return result


def top_k_unexplained_groups(problem: CorrelationExplanationProblem,
                             explanation_attributes: Sequence[str],
                             k: int = 5,
                             threshold: float = 0.2,
                             refine_attributes: Optional[Sequence[str]] = None,
                             min_group_size: int = 10,
                             n_bins: int = 6,
                             max_values_per_attribute: int = 12,
                             max_expansions: int = 2000) -> List[Subgroup]:
    """Algorithm 2: the top-``k`` largest groups the explanation fails on.

    Parameters
    ----------
    problem:
        The problem instance the explanation was computed on.
    explanation_attributes:
        The explanation ``E`` whose adequacy is being checked.
    k:
        Number of groups to return.
    threshold:
        Minimum explanation score ``τ`` for a group to count as unexplained.
    refine_attributes:
        Attributes allowed in refinements; defaults to the dataset-side
        candidate attributes (refining on hundreds of extracted attributes is
        rarely meaningful and matches the paper's use of context refinements
        such as ``Continent = Europe``).
    min_group_size:
        Groups smaller than this are skipped (CMI estimates on a handful of
        rows are meaningless).
    n_bins / max_values_per_attribute:
        Controls of the refinement space for numeric / high-cardinality
        attributes.
    max_expansions:
        Safety bound on the number of heap expansions.
    """
    if k < 1:
        raise ExplanationError(f"k must be >= 1, got {k}")
    if refine_attributes is None:
        refine_attributes = [attribute for attribute in problem.candidates
                             if attribute in problem.full_table.column_names]
    space = _RefinementSpace(problem, refine_attributes, n_bins=n_bins,
                             max_values_per_attribute=max_values_per_attribute)
    explanation = list(explanation_attributes)

    results: List[Subgroup] = []
    counter = itertools.count()
    heap: List[Tuple[int, int, Condition]] = []
    root = Condition()
    for child in space.children(root):
        size = int(space.mask(child).sum())
        if size >= min_group_size:
            heapq.heappush(heap, (-size, next(counter), child))

    expansions = 0
    while heap and len(results) < k and expansions < max_expansions:
        negative_size, _, condition = heapq.heappop(heap)
        size = -negative_size
        expansions += 1
        mask = space.mask(condition)
        restricted = problem.restricted_to(mask)
        score = restricted.explanation_score(explanation) if explanation \
            else restricted.baseline_cmi()
        if score > threshold:
            if not _has_ancestor_in(condition, results):
                results.append(Subgroup(condition=condition, size=size,
                                        explanation_score=score))
        else:
            for child in space.children(condition):
                child_size = int(space.mask(child).sum())
                if child_size >= min_group_size:
                    heapq.heappush(heap, (-child_size, next(counter), child))
    return results


def _has_ancestor_in(condition: Condition, accepted: List[Subgroup]) -> bool:
    """Whether an already-accepted group subsumes this refinement."""
    return any(condition.is_refinement_of(subgroup.condition) and
               condition != subgroup.condition
               for subgroup in accepted)
