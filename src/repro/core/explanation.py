"""The :class:`Explanation` result object shared by MCIMR and all baselines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Explanation:
    """A correlation explanation: the selected attributes plus diagnostics.

    Attributes
    ----------
    attributes:
        The selected confounding attributes, in selection order.
    explainability:
        ``I(O;T | attributes, C)`` — the paper's *explainability score*;
        0 means the correlation is perfectly explained away.
    baseline_cmi:
        ``I(O;T | C)`` before conditioning on anything; the improvement is
        ``baseline_cmi - explainability``.
    objective:
        The Definition 2.1 objective ``explainability * |attributes|``.
    responsibilities:
        Degree of responsibility of every selected attribute
        (Definition 2.2); empty when fewer than two attributes are selected.
    method:
        Name of the algorithm that produced the explanation
        (``"mcimr"``, ``"brute_force"``, ``"top_k"``, ...).
    runtime_seconds:
        Wall-clock time of the search.
    trace:
        Optional per-iteration diagnostics (attribute added, CMI after).
    """

    attributes: Tuple[str, ...]
    explainability: float
    baseline_cmi: float
    objective: float
    responsibilities: Dict[str, float] = field(default_factory=dict)
    method: str = "mcimr"
    runtime_seconds: float = 0.0
    trace: Tuple[Tuple[str, float], ...] = ()

    @property
    def size(self) -> int:
        """Number of selected attributes."""
        return len(self.attributes)

    @property
    def improvement(self) -> float:
        """Absolute drop in CMI achieved by the explanation."""
        return max(0.0, self.baseline_cmi - self.explainability)

    @property
    def relative_improvement(self) -> float:
        """Fraction of the original CMI explained away (0 when baseline is 0)."""
        if self.baseline_cmi <= 0:
            return 0.0
        return self.improvement / self.baseline_cmi

    def ranked_attributes(self) -> List[str]:
        """Attributes sorted by responsibility (selection order as tie-break)."""
        if not self.responsibilities:
            return list(self.attributes)
        order = {attribute: index for index, attribute in enumerate(self.attributes)}
        return sorted(self.attributes,
                      key=lambda a: (-self.responsibilities.get(a, 0.0), order[a]))

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict rendering used by the benchmark harness."""
        return {
            "method": self.method,
            "attributes": list(self.attributes),
            "explainability": self.explainability,
            "baseline_cmi": self.baseline_cmi,
            "objective": self.objective,
            "responsibilities": dict(self.responsibilities),
            "runtime_seconds": self.runtime_seconds,
        }

    def describe(self) -> str:
        """Readable one-paragraph rendering for examples and reports."""
        if not self.attributes:
            return (f"[{self.method}] no explanation found "
                    f"(I(O;T|C) = {self.baseline_cmi:.3f})")
        parts = []
        for attribute in self.ranked_attributes():
            responsibility = self.responsibilities.get(attribute)
            if responsibility is None:
                parts.append(attribute)
            else:
                parts.append(f"{attribute} (resp {responsibility:.2f})")
        return (f"[{self.method}] {{{', '.join(parts)}}}: "
                f"I(O;T|C) {self.baseline_cmi:.3f} -> {self.explainability:.3f}")
