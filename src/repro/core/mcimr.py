"""The MCIMR algorithm (Algorithm 1 of the paper).

MCIMR selects confounding attributes incrementally.  At iteration ``k`` it
adds the candidate minimising

.. math::

    I(O;T | C, E) + \\frac{1}{k-1} \\sum_{E_i \\in E_{k-1}} I(E; E_i)

— the Minimal-Conditional-mutual-Information (MCI) term plus the
Minimal-Redundancy (MR) term (Equation 5).  Before an attribute is accepted
the *responsibility test* (Lemma 4.2) checks whether its responsibility
would be ≈ 0; if so the algorithm stops and returns the explanation found so
far, which makes ``k`` an upper bound rather than an exact size.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.explanation import Explanation
from repro.core.problem import CorrelationExplanationProblem
from repro.core.responsibility import responsibilities, responsibility_test
from repro.core.speculate import speculate
from repro.exceptions import ExplanationError


@dataclass
class MCIMRTrace:
    """Per-iteration diagnostics of one MCIMR run."""

    selected: List[str] = field(default_factory=list)
    scores_after: List[float] = field(default_factory=list)
    criterion_values: List[float] = field(default_factory=list)
    stopped_by_responsibility_test: bool = False

    def as_pairs(self) -> Tuple[Tuple[str, float], ...]:
        """(attribute, CMI after adding it) pairs, used by :class:`Explanation`."""
        return tuple(zip(self.selected, self.scores_after))


def next_best_attribute(problem: CorrelationExplanationProblem,
                        selected: Sequence[str],
                        candidates: Optional[Sequence[str]] = None) -> Optional[Tuple[str, float]]:
    """The ``NextBestAtt`` procedure of Algorithm 1.

    Returns the ``(attribute, criterion_value)`` minimising Equation 5 among
    the remaining candidates, or ``None`` when no candidate is left.  Only
    bivariate quantities are estimated: ``I(O;T|C,E)`` for the relevance term
    and ``I(E;E')`` for the redundancy term, exactly as in the paper.
    """
    if candidates is None:
        candidates = problem.candidates
    selected_set = set(selected)
    remaining = [attribute for attribute in candidates if attribute not in selected_set]
    # One batched kernel round: every candidate's relevance term shares the
    # same (empty) base coding, so each costs a single fuse + bincount.
    relevances = problem.score_candidates(remaining)
    best_attribute: Optional[str] = None
    best_value = float("inf")
    for attribute in remaining:
        redundancy = 0.0
        if selected:
            redundancy = sum(problem.pairwise_mi(attribute, chosen) for chosen in selected)
            redundancy /= len(selected)
        value = relevances[attribute] + redundancy
        if value < best_value:
            best_value = value
            best_attribute = attribute
    if best_attribute is None:
        return None
    return best_attribute, best_value


def _speculate_round(problem: CorrelationExplanationProblem,
                     selected: Tuple[str, ...],
                     candidates: Optional[Sequence[str]],
                     ) -> Tuple[float, Optional[Tuple[str, float]]]:
    """Round ``i + 1``'s work, assuming round ``i``'s winner is accepted.

    Returns ``(score_after, next_best)`` — the explanation score of the
    extended selection (the value the accept path appends to the trace)
    and the following round's best candidate.  Every value lands in the
    problem's memo caches, so the main loop re-reads them for free.
    """
    score_after = problem.explanation_score(list(selected))
    return score_after, next_best_attribute(problem, selected, candidates)


def mcimr(problem: CorrelationExplanationProblem, k: int = 5,
          candidates: Optional[Sequence[str]] = None,
          use_responsibility_test: bool = True,
          responsibility_threshold: float = 0.01,
          responsibility_permutations: int = 20,
          method_name: str = "mcimr",
          speculative: bool = False) -> Explanation:
    """Run the MCIMR algorithm and return its :class:`Explanation`.

    Parameters
    ----------
    problem:
        The Correlation-Explanation problem instance.
    k:
        Upper bound on the explanation size.
    candidates:
        Candidate attributes to search over; defaults to
        ``problem.candidates`` (after pruning, when the caller pruned).
    use_responsibility_test:
        Whether to apply the stopping criterion; disabling it forces exactly
        ``k`` attributes (the ablation benchmark compares both).
    responsibility_threshold:
        CMI threshold below which the candidate is considered independent of
        the outcome given the selected attributes.
    responsibility_permutations:
        Number of permutations used by the stopping criterion's
        conditional-independence test (0 = threshold shortcut only).
    method_name:
        Label recorded in the resulting explanation (``"mesa"`` /
        ``"mesa_minus"`` reuse this function).
    speculative:
        Pipeline the rounds: while round ``i``'s responsibility test runs,
        score round ``i + 1``'s candidates on a speculation thread
        (:mod:`repro.core.speculate`), discarding the speculation when the
        stopping criterion fires.  The two phases read disjoint memo
        caches and both are deterministic, so the explanation is
        bit-identical to the sequential schedule; the problem's
        ``counter_hook`` observes ``speculation_hit`` /
        ``speculation_waste``.
    """
    if k < 1:
        raise ExplanationError(f"The explanation size bound k must be >= 1, got {k}")
    if candidates is None:
        candidates = problem.candidates
    counter_hook = getattr(problem, "counter_hook", None)

    def count(name: str) -> None:
        if counter_hook is not None:
            counter_hook(name, 1)

    start = time.perf_counter()
    trace = MCIMRTrace()
    selected: List[str] = []
    pending = None  # speculation for the round after the one being tested
    for _ in range(k):
        if pending is not None:
            _, best = pending.result()
            count("speculation_hit")
            pending = None
        else:
            best = next_best_attribute(problem, selected, candidates)
        if best is None:
            break
        attribute, criterion = best
        if use_responsibility_test:
            if speculative:
                extended = tuple(selected) + (attribute,)
                pending = speculate(
                    lambda sel=extended: _speculate_round(problem, sel,
                                                          candidates))
            if responsibility_test(
                    problem, attribute, selected,
                    cmi_threshold=responsibility_threshold,
                    n_permutations=responsibility_permutations):
                if pending is not None:
                    pending.discard()
                    count("speculation_waste")
                    pending = None
                trace.stopped_by_responsibility_test = True
                break
        selected.append(attribute)
        trace.selected.append(attribute)
        trace.criterion_values.append(criterion)
        trace.scores_after.append(problem.explanation_score(selected))
    if pending is not None:
        # k exhausted with a speculation still in flight (its result will
        # never be consumed by a further round).
        pending.discard()
        count("speculation_waste")
    runtime = time.perf_counter() - start
    baseline = problem.baseline_cmi()
    # The score of the final selection was already recorded when its last
    # attribute was accepted — reuse it instead of re-querying the oracle.
    explainability = trace.scores_after[-1] if selected else baseline
    return Explanation(
        attributes=tuple(selected),
        explainability=explainability,
        baseline_cmi=baseline,
        objective=problem.objective(selected),
        responsibilities=responsibilities(problem, selected),
        method=method_name,
        runtime_seconds=runtime,
        trace=trace.as_pairs(),
    )
