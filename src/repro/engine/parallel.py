"""Parallel batch execution for the explanation pipeline.

``ExplanationPipeline.explain_many`` (and its process-boundary sibling
``explain_many_envelopes``) fan a batch of queries out over workers:

* **thread backend** — each worker drives its own pipeline over a *forked*
  :class:`~repro.engine.context.PipelineContext` (same table and warmed
  extraction/offline-pruning caches, private counters), so no mutable state
  is shared between workers and full :class:`ExplanationResult` objects
  come back directly.
* **process backend** — workers are OS processes; each builds its pipeline
  once and ships its whole chunk of results back as **one** JSON blob of
  :class:`~repro.engine.envelope.ExplanationEnvelope` dicts (the envelope
  is the process-boundary form of a result, so only plain data crosses the
  boundary, and batching the chunk into a single string keeps the IPC cost
  at one serialize/parse per chunk instead of per query).  Available from
  ``explain_many_envelopes`` only — a live ``ExplanationResult`` cannot
  cross a process boundary.  On platforms with ``fork`` the workers
  inherit the parent's warmed pipeline copy-on-write; without ``fork``
  (Windows, macOS spawn default) the **spawn** path pickles the dataset —
  table, knowledge graph, extraction specs, config and stage list — into
  each worker exactly once via the pool initializer, so per-chunk task
  payloads still carry only the queries.

In both backends the workers' cache counters and stage timings are merged
back into the parent's :class:`PipelineContext` after the batch, so the
batch-API observability (``context.counters``) keeps working.
"""

from __future__ import annotations

import json
import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.envelope import ExplanationEnvelope
from repro.exceptions import ConfigurationError
from repro.obs import trace

#: Fork-inherited state for process workers: set by the parent immediately
#: before the executor forks, read lazily inside each worker.
_FORK_STATE: Dict[str, object] = {}

#: Serialises concurrent process-backend batches: the fork state is a module
#: global, so two batches forking at once would inherit each other's
#: pipeline (and the finally-block teardown would race).
_FORK_LOCK = threading.Lock()


def resolve_n_jobs(n_jobs: Optional[int], default: int = 1) -> int:
    """Normalise an ``n_jobs`` request (``None`` -> default, ``-1`` -> CPUs)."""
    if n_jobs is None:
        n_jobs = default
    if n_jobs == -1:
        return max(1, os.cpu_count() or 1)
    if n_jobs < 1:
        raise ConfigurationError(f"n_jobs must be >= 1 (or -1 for all CPUs), got {n_jobs}")
    return n_jobs


def _chunks(n_items: int, n_workers: int) -> List[List[int]]:
    """Contiguous, balanced index chunks (at most ``n_workers`` of them)."""
    n_workers = min(n_workers, n_items)
    base, remainder = divmod(n_items, n_workers)
    chunks: List[List[int]] = []
    start = 0
    for worker in range(n_workers):
        size = base + (1 if worker < remainder else 0)
        chunks.append(list(range(start, start + size)))
        start += size
    return chunks


def _worker_pipeline(parent_pipeline):
    """A private pipeline over a forked context (shared read-only caches)."""
    from repro.engine.pipeline import ExplanationPipeline

    return ExplanationPipeline(
        context=parent_pipeline.context.fork(),
        config=parent_pipeline.config.with_overrides(n_jobs=1),
        stages=parent_pipeline.stages,
    )


def _merge_worker_context(parent_context, counters: Dict[str, int],
                          stage_seconds: Dict[str, float]) -> None:
    parent_context.merge_counters(counters, stage_seconds)


def _warm_context(pipeline) -> None:
    """Build the cross-query artefacts once, before workers fork off.

    Workers inherit the warmed extraction and offline-pruning caches, so
    the paper's "across-queries" pre-processing still runs exactly once
    per batch regardless of the worker count.
    """
    config = pipeline.config
    augmented = pipeline.context.augmented_table(config.hops)
    if config.use_offline_pruning:
        # Verdicts are judged lazily per column, so warm exactly the
        # columns queries can use as candidates — excluded (identifier)
        # columns of a wide table are never scanned.
        candidates = [name for name in augmented.column_names
                      if name not in config.excluded_columns]
        pipeline.context.offline_pruning(
            candidates, hops=config.hops,
            max_missing_fraction=config.max_missing_fraction,
            high_entropy_unique_ratio=config.high_entropy_unique_ratio)


# --------------------------------------------------------------------------- #
# thread backend
# --------------------------------------------------------------------------- #
def _write_back_fits(parent_context, fit_entries) -> None:
    """Merge a worker's new selection fits into the parent's fit cache.

    Forked worker contexts copy the parent's IPW fit cache but fit new
    selection models privately; without this merge the parent would refit
    them for the next batch.  ``ipw_fit_writeback`` counts the fits that
    actually came home (duplicates across workers merge once).
    """
    if not fit_entries:
        return
    added = parent_context.ipw_fit_cache.merge_new_entries(fit_entries)
    if added:
        parent_context.count("ipw_fit_writeback", added)


def explain_many_threaded(pipeline, queries: Sequence, k: Optional[int],
                          n_jobs: int,
                          trace_captures: Optional[Sequence] = None) -> List:
    """Fan ``explain`` out over threads; returns full ExplanationResults.

    ``trace_captures`` (one per query, or ``None``) re-activates each
    query's originating trace on the worker thread that runs it, so
    coalesced traced requests keep their engine spans.
    """
    _warm_context(pipeline)
    results: List = [None] * len(queries)

    def run_chunk(indices: List[int]):
        worker = _worker_pipeline(pipeline)
        for index in indices:
            captured = trace_captures[index] if trace_captures else None
            with trace.activation(captured):
                results[index] = worker.explain(queries[index], k=k)
        return (dict(worker.context.counters),
                dict(worker.context.stage_seconds),
                worker.context.ipw_fit_cache.drain_new_entries())

    chunks = _chunks(len(queries), n_jobs)
    with ThreadPoolExecutor(max_workers=len(chunks)) as executor:
        futures = [executor.submit(run_chunk, chunk) for chunk in chunks]
        for future in futures:
            counters, stage_seconds, fit_entries = future.result()
            _merge_worker_context(pipeline.context, counters, stage_seconds)
            _write_back_fits(pipeline.context, fit_entries)
    pipeline.context.count("parallel_batches")
    pipeline.context.count("parallel_workers", len(chunks))
    return results


# --------------------------------------------------------------------------- #
# process backend
# --------------------------------------------------------------------------- #
def _run_worker_chunk(worker, payload: Tuple[List[int], List, Optional[int]]):
    """Run one chunk on a worker pipeline; returns a chunked envelope blob.

    The whole chunk's envelopes ship back as **one** compact JSON string
    instead of a list of nested dicts: pickling a single flat ``str`` costs
    one buffer copy, while a list of per-query dict trees makes the pickler
    walk (and the parent unpickle) thousands of small objects.  For large
    batches this cuts the per-result IPC overhead to a single
    serialize/parse per chunk.
    """
    indices, chunk_queries, k = payload
    envelopes = []
    for query in chunk_queries:
        envelopes.append(worker.explain(query, k=k).to_envelope().to_dict())
    envelope_blob = json.dumps(envelopes, separators=(",", ":"))
    # Snapshot-and-reset: a pool process may execute several chunks, and the
    # parent merges every returned snapshot — each payload must report only
    # its own delta or earlier chunks' counters would be merged twice.  The
    # same applies to new selection fits: drain_new_entries resets the
    # marker, so each chunk ships only the fits it performed itself.
    counters = dict(worker.context.counters)
    stage_seconds = dict(worker.context.stage_seconds)
    worker.context.counters.clear()
    worker.context.stage_seconds.clear()
    fit_entries = worker.context.ipw_fit_cache.drain_new_entries()
    return indices, envelope_blob, counters, stage_seconds, fit_entries


def _process_worker(payload: Tuple[List[int], List, Optional[int]]):
    """Run one chunk inside a *forked* process (fork-inherited pipeline)."""
    parent_pipeline = _FORK_STATE.get("pipeline")
    if parent_pipeline is None:  # pragma: no cover - defensive
        raise ConfigurationError("process worker started without fork state")
    worker = _FORK_STATE.get("worker")
    if worker is None:
        worker = _worker_pipeline(parent_pipeline)
        _FORK_STATE["worker"] = worker
    return _run_worker_chunk(worker, payload)


#: Spawn-mode per-process state: the worker pipeline built once by
#: :func:`_spawn_initializer` from the pickled dataset parts.
_SPAWN_STATE: Dict[str, object] = {}


def _spawn_initializer(table, knowledge_graph, extraction_specs, config,
                       stages) -> None:
    """Build one pipeline per spawned worker from pickled dataset parts.

    Spawned processes inherit nothing, so the parent pickles the table (and
    knowledge graph, extraction specs, configuration and stage list) into
    each worker exactly once — through the pool initializer — rather than
    once per submitted chunk.  The worker warms its own cross-query caches
    on the first query it runs.
    """
    from repro.engine.pipeline import ExplanationPipeline

    _SPAWN_STATE["worker"] = ExplanationPipeline(
        table, knowledge_graph, extraction_specs,
        config=config.with_overrides(n_jobs=1), stages=list(stages))


def _spawn_worker(payload: Tuple[List[int], List, Optional[int]]):
    """Run one chunk inside a *spawned* process (initializer-built pipeline)."""
    worker = _SPAWN_STATE.get("worker")
    if worker is None:  # pragma: no cover - defensive
        raise ConfigurationError("spawn worker started without an initializer")
    return _run_worker_chunk(worker, payload)


def explain_many_forked(pipeline, queries: Sequence, k: Optional[int],
                        n_jobs: int,
                        start_method: Optional[str] = None,
                        ) -> List[ExplanationEnvelope]:
    """Fan the batch out over worker processes; returns envelopes.

    With the ``fork`` start method (preferred where available) each worker
    inherits the parent's warmed pipeline copy-on-write — nothing ships to
    the workers.  On platforms without fork the **spawn** path is used
    instead: the dataset parts are pickled into each worker exactly once
    via the pool initializer, and each worker builds (and keeps) its own
    pipeline.  ``start_method`` forces one of ``"fork"`` / ``"spawn"``
    (tests force spawn to exercise the portable path).
    """
    import multiprocessing

    available = multiprocessing.get_all_start_methods()
    if start_method is None:
        start_method = "fork" if "fork" in available else "spawn"
    if start_method not in ("fork", "spawn"):
        raise ConfigurationError(
            f"start_method must be 'fork' or 'spawn', got {start_method!r}")
    if start_method not in available:  # pragma: no cover - platform specific
        results = explain_many_threaded(pipeline, queries, k, n_jobs)
        return [result.to_envelope() for result in results]

    chunks = _chunks(len(queries), n_jobs)
    payloads = [(chunk, [queries[i] for i in chunk], k) for chunk in chunks]
    envelopes: List[Optional[ExplanationEnvelope]] = [None] * len(queries)

    def drain(results_iter) -> None:
        for indices, envelope_blob, counters, stage_seconds, fit_entries \
                in results_iter:
            chunk_envelopes = json.loads(envelope_blob)
            for index, envelope_dict in zip(indices, chunk_envelopes):
                envelopes[index] = ExplanationEnvelope.from_dict(envelope_dict)
            _merge_worker_context(pipeline.context, counters, stage_seconds)
            _write_back_fits(pipeline.context, fit_entries)

    if start_method == "fork":
        # Warm the cross-query caches before forking so every worker
        # inherits them instead of redoing extraction per process.
        _warm_context(pipeline)
        with _FORK_LOCK:
            _FORK_STATE["pipeline"] = pipeline
            try:
                context = multiprocessing.get_context("fork")
                with ProcessPoolExecutor(max_workers=len(chunks),
                                         mp_context=context) as executor:
                    drain(executor.map(_process_worker, payloads))
            finally:
                _FORK_STATE.pop("pipeline", None)
                _FORK_STATE.pop("worker", None)
    else:
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(
                max_workers=len(chunks), mp_context=context,
                initializer=_spawn_initializer,
                initargs=(pipeline.table, pipeline.context.knowledge_graph,
                          pipeline.context.extraction_specs, pipeline.config,
                          tuple(pipeline.stages))) as executor:
            drain(executor.map(_spawn_worker, payloads))
    pipeline.context.count("parallel_batches")
    pipeline.context.count("parallel_workers", len(chunks))
    return envelopes
