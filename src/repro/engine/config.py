"""Configuration of the explanation pipeline.

The class keeps its historical name ``MESAConfig`` (it configures the
paper's MESA pipeline); it lives in the engine package because every stage,
explainer and cache key is driven by it.  ``repro.mesa.config`` re-exports
it for backward compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class MESAConfig:
    """Tunable knobs of the MESA pipeline.

    Attributes
    ----------
    k:
        Upper bound on the explanation size (the paper uses 5).
    hops:
        Number of knowledge-graph hops followed during extraction (the paper
        uses 1 by default; the multi-hop appendix experiment uses 2).
    n_bins:
        Number of bins for numeric attributes in the information-theoretic
        estimates.
    use_offline_pruning / use_online_pruning:
        Toggles for the two pruning phases; disabling both yields the MESA-
        variant of the experiments.
    handle_selection_bias:
        Whether to run the recoverability analysis and apply IPW weights.
    min_missing_for_bias_check:
        Attributes missing in fewer rows than this fraction skip the
        recoverability analysis (their complete-case estimates are unbiased
        enough and the test costs time).
    max_missing_fraction:
        Offline-pruning threshold: attributes with more missing values are
        dropped.
    high_entropy_unique_ratio:
        Offline-pruning threshold for identifier-like attributes.
    fd_entropy_threshold:
        Online-pruning threshold for approximate functional dependencies.
    relevance_cmi_threshold:
        Online-pruning threshold for the low-relevance rule.
    determination_ratio:
        Online-pruning threshold for attributes that nearly determine the
        exposure or outcome (``H(T|E)/H(T)`` below the ratio); 0 disables.
    responsibility_threshold:
        CMI threshold of the MCIMR stopping criterion.
    responsibility_permutations:
        Number of permutations of the stopping criterion's independence
        test; permutations correct the upward small-sample bias of the
        plug-in CMI estimate.
    use_responsibility_test:
        Whether MCIMR may stop early (ablation switch).
    ipw_predictor_columns:
        Columns used as features of the selection (logistic) model; ``None``
        means "all fully-observed original dataset columns except the
        outcome".
    excluded_columns:
        Columns never considered as candidates (identifiers).
    use_fast_kernel:
        Route every information-theoretic estimate through the
        contingency-count kernel (:mod:`repro.infotheory.kernel`): one
        ``bincount`` per CMI term, incremental joint coding of conditioning
        sets, and batched candidate scoring.  Results are identical to the
        reference estimators within float tolerance; disable only to
        reproduce the legacy (slow) estimation path, e.g. for the
        before/after performance benchmark.
    n_jobs:
        Worker count for the batch APIs (``explain_many`` /
        ``explain_many_envelopes``); ``1`` (default) runs serially, ``-1``
        uses every available CPU.
    parallel_backend:
        ``"thread"`` (default) or ``"process"`` — how batch workers are
        executed.  The process backend ships results back as
        JSON-serializable envelopes and therefore only applies to
        ``explain_many_envelopes``.
    """

    k: int = 5
    hops: int = 1
    n_bins: int = 8
    use_offline_pruning: bool = True
    use_online_pruning: bool = True
    handle_selection_bias: bool = True
    min_missing_for_bias_check: float = 0.02
    max_missing_fraction: float = 0.9
    high_entropy_unique_ratio: float = 0.9
    fd_entropy_threshold: float = 0.05
    relevance_cmi_threshold: float = 0.01
    determination_ratio: float = 0.25
    responsibility_threshold: float = 0.01
    responsibility_permutations: int = 20
    use_responsibility_test: bool = True
    ipw_predictor_columns: Optional[Tuple[str, ...]] = None
    excluded_columns: Tuple[str, ...] = ()
    use_fast_kernel: bool = True
    n_jobs: int = 1
    parallel_backend: str = "thread"

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")
        if self.hops < 1:
            raise ConfigurationError(f"hops must be >= 1, got {self.hops}")
        if self.n_bins < 2:
            raise ConfigurationError(f"n_bins must be >= 2, got {self.n_bins}")
        if not 0.0 <= self.max_missing_fraction <= 1.0:
            raise ConfigurationError("max_missing_fraction must lie in [0, 1]")
        if not 0.0 <= self.min_missing_for_bias_check <= 1.0:
            raise ConfigurationError("min_missing_for_bias_check must lie in [0, 1]")
        if self.fd_entropy_threshold < 0.0:
            raise ConfigurationError(
                f"fd_entropy_threshold must be >= 0, got {self.fd_entropy_threshold}"
            )
        if self.responsibility_permutations < 0:
            raise ConfigurationError(
                f"responsibility_permutations must be >= 0, "
                f"got {self.responsibility_permutations}"
            )
        if self.n_jobs < 1 and self.n_jobs != -1:
            raise ConfigurationError(
                f"n_jobs must be >= 1 (or -1 for all CPUs), got {self.n_jobs}"
            )
        if self.parallel_backend not in ("thread", "process"):
            raise ConfigurationError(
                f"parallel_backend must be 'thread' or 'process', "
                f"got {self.parallel_backend!r}"
            )

    def without_pruning(self) -> "MESAConfig":
        """The MESA- variant: no offline or online pruning."""
        return replace(self, use_offline_pruning=False, use_online_pruning=False)

    def with_overrides(self, **kwargs) -> "MESAConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)
