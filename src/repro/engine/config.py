"""Configuration of the explanation pipeline.

The class keeps its historical name ``MESAConfig`` (it configures the
paper's MESA pipeline); it lives in the engine package because every stage,
explainer and cache key is driven by it.  ``repro.mesa.config`` re-exports
it for backward compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class MESAConfig:
    """Tunable knobs of the MESA pipeline.

    Attributes
    ----------
    k:
        Upper bound on the explanation size (the paper uses 5).
    hops:
        Number of knowledge-graph hops followed during extraction (the paper
        uses 1 by default; the multi-hop appendix experiment uses 2).
    n_bins:
        Number of bins for numeric attributes in the information-theoretic
        estimates.
    use_offline_pruning / use_online_pruning:
        Toggles for the two pruning phases; disabling both yields the MESA-
        variant of the experiments.
    handle_selection_bias:
        Whether to run the recoverability analysis and apply IPW weights.
    min_missing_for_bias_check:
        Attributes missing in fewer rows than this fraction skip the
        recoverability analysis (their complete-case estimates are unbiased
        enough and the test costs time).
    max_missing_fraction:
        Offline-pruning threshold: attributes with more missing values are
        dropped.
    high_entropy_unique_ratio:
        Offline-pruning threshold for identifier-like attributes.
    fd_entropy_threshold:
        Online-pruning threshold for approximate functional dependencies.
    relevance_cmi_threshold:
        Online-pruning threshold for the low-relevance rule.
    determination_ratio:
        Online-pruning threshold for attributes that nearly determine the
        exposure or outcome (``H(T|E)/H(T)`` below the ratio); 0 disables.
    responsibility_threshold:
        CMI threshold of the MCIMR stopping criterion.
    responsibility_permutations:
        Number of permutations of the stopping criterion's independence
        test; permutations correct the upward small-sample bias of the
        plug-in CMI estimate.
    use_responsibility_test:
        Whether MCIMR may stop early (ablation switch).
    ipw_predictor_columns:
        Columns used as features of the selection (logistic) model; ``None``
        means "all fully-observed original dataset columns except the
        outcome".
    excluded_columns:
        Columns never considered as candidates (identifiers).
    use_fast_kernel:
        Route every information-theoretic estimate through the
        contingency-count kernel (:mod:`repro.infotheory.kernel`): one
        ``bincount`` per CMI term, incremental joint coding of conditioning
        sets, and batched candidate scoring.  Results are identical to the
        reference estimators within float tolerance; disable only to
        reproduce the legacy (slow) estimation path, e.g. for the
        before/after performance benchmark.
    use_blocked_permutations:
        Run permutation-based independence tests on the blocked engine
        (:mod:`repro.infotheory.permutation`): permutations are sampled in
        blocks and all their contingency counts accumulate in one shared
        ``bincount``.  The RNG stream is identical to the historical
        per-permutation loop, so p-values and verdicts are bit-identical;
        disable only to reproduce the pre-blocked timing (the performance
        benchmark compares both).
    permutation_early_exit:
        Let the sequential test stop a permutation run as soon as the
        verdict is determined (deterministic exceedance bracket, plus a
        Clopper–Pearson bound for large budgets).  Off by default: early
        exit keeps the verdicts but changes how many permutations run, so
        reported p-values are no longer bit-reproducible against the full
        run.  ``context.counters['perm_early_exit']`` / ``['perm_saved']``
        count the exits and the permutations saved.
    max_responsibility_permutations:
        Adaptive permutation-budget cap.  ``0`` (default) disables
        adaptation; a positive value (must be >=
        ``responsibility_permutations``) lets any permutation test whose
        verdict is still statistically uncertain when its base budget is
        exhausted — the Clopper–Pearson interval on the exceedance
        probability straddles ``alpha`` — extend its budget geometrically
        up to the cap, while clear-cut tests exit early (adaptive budgets
        imply the sequential early-exit decision).  A test that never
        extends keeps the fixed-budget verdict; an extended test replaces
        a statistically uncertain verdict with one resting on more
        permutations.  ``context.counters['perm_budget_extended']`` /
        ``['perm_budget_saved']`` count the extensions and the
        permutations saved against always paying the base budget.
    permutation_rng_stream:
        How permutation tests draw their stratified permutations:
        ``"legacy"`` (default) is the bit-identical per-stratum
        Fisher–Yates stream; ``"argsort"`` vectorises the draw as one
        uniform block + segmented stable argsort — several times faster
        on many-strata plans, but a *different* documented RNG stream, so
        p-values are no longer bit-reproducible against the legacy stream
        (verdict distribution is identical; intended for early-exit /
        adaptive modes where exact counts already vary).
    speculative_search:
        Overlap MCIMR rounds: while round ``i``'s responsibility test
        runs, a worker thread speculatively scores round ``i+1``'s
        candidates (disjoint memo state), discarding the speculation when
        the stopping criterion fires.  Explanations are bit-identical to
        the sequential search; ``context.counters['speculation_hit']`` /
        ``['speculation_waste']`` count consumed and discarded
        speculations.
    use_ipw_fit_cache:
        Route IPW selection-model fits through the batched inference
        backend (:mod:`repro.missingness.fitcache`): fits are cached by
        observed-mask hash + design signature (attributes sharing a
        missingness pattern fit once, ``ipw_fit_hit``/``ipw_fit_miss``
        counters) and all uncached attributes of a query batch into one
        multi-label IRLS solve.  Disable to reproduce the per-attribute
        fitting path.
    n_jobs:
        Worker count for the batch APIs (``explain_many`` /
        ``explain_many_envelopes``); ``1`` (default) runs serially, ``-1``
        uses every available CPU.
    parallel_backend:
        ``"thread"`` (default) or ``"process"`` — how batch workers are
        executed.  The process backend ships results back as
        JSON-serializable envelopes and therefore only applies to
        ``explain_many_envelopes``.
    """

    k: int = 5
    hops: int = 1
    n_bins: int = 8
    use_offline_pruning: bool = True
    use_online_pruning: bool = True
    handle_selection_bias: bool = True
    min_missing_for_bias_check: float = 0.02
    max_missing_fraction: float = 0.9
    high_entropy_unique_ratio: float = 0.9
    fd_entropy_threshold: float = 0.05
    relevance_cmi_threshold: float = 0.01
    determination_ratio: float = 0.25
    responsibility_threshold: float = 0.01
    responsibility_permutations: int = 20
    use_responsibility_test: bool = True
    ipw_predictor_columns: Optional[Tuple[str, ...]] = None
    excluded_columns: Tuple[str, ...] = ()
    use_fast_kernel: bool = True
    use_blocked_permutations: bool = True
    permutation_early_exit: bool = False
    max_responsibility_permutations: int = 0
    permutation_rng_stream: str = "legacy"
    speculative_search: bool = False
    use_ipw_fit_cache: bool = True
    n_jobs: int = 1
    parallel_backend: str = "thread"

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")
        if self.hops < 1:
            raise ConfigurationError(f"hops must be >= 1, got {self.hops}")
        if self.n_bins < 2:
            raise ConfigurationError(f"n_bins must be >= 2, got {self.n_bins}")
        if not 0.0 <= self.max_missing_fraction <= 1.0:
            raise ConfigurationError("max_missing_fraction must lie in [0, 1]")
        if not 0.0 <= self.min_missing_for_bias_check <= 1.0:
            raise ConfigurationError("min_missing_for_bias_check must lie in [0, 1]")
        if self.fd_entropy_threshold < 0.0:
            raise ConfigurationError(
                f"fd_entropy_threshold must be >= 0, got {self.fd_entropy_threshold}"
            )
        if self.responsibility_permutations < 0:
            raise ConfigurationError(
                f"responsibility_permutations must be >= 0, "
                f"got {self.responsibility_permutations}"
            )
        if self.max_responsibility_permutations < 0:
            raise ConfigurationError(
                f"max_responsibility_permutations must be >= 0, "
                f"got {self.max_responsibility_permutations}"
            )
        if (self.max_responsibility_permutations
                and self.max_responsibility_permutations
                < self.responsibility_permutations):
            raise ConfigurationError(
                f"max_responsibility_permutations "
                f"({self.max_responsibility_permutations}) must be >= "
                f"responsibility_permutations "
                f"({self.responsibility_permutations})"
            )
        if self.permutation_rng_stream not in ("legacy", "argsort"):
            raise ConfigurationError(
                f"permutation_rng_stream must be 'legacy' or 'argsort', "
                f"got {self.permutation_rng_stream!r}"
            )
        if self.n_jobs < 1 and self.n_jobs != -1:
            raise ConfigurationError(
                f"n_jobs must be >= 1 (or -1 for all CPUs), got {self.n_jobs}"
            )
        if self.parallel_backend not in ("thread", "process"):
            raise ConfigurationError(
                f"parallel_backend must be 'thread' or 'process', "
                f"got {self.parallel_backend!r}"
            )

    def without_pruning(self) -> "MESAConfig":
        """The MESA- variant: no offline or online pruning."""
        return replace(self, use_offline_pruning=False, use_online_pruning=False)

    def with_overrides(self, **kwargs) -> "MESAConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)
