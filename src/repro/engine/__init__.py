"""The composable explanation engine.

This package is the public API of the reproduction's pipeline, redesigned
around three ideas:

1. **Staged pipeline** — the seven phases of the MESA pipeline are
   first-class :mod:`stage objects <repro.engine.stages>` composed by an
   :class:`ExplanationPipeline` over a shared :class:`PipelineContext` that
   owns the cross-query caches (extraction, offline pruning), per-stage
   counters and instrumentation hooks.
2. **Unified explainers** — every method (MESA, MESA-, and all baselines)
   sits behind the :class:`Explainer` protocol and a string-keyed registry
   (:func:`get_explainer`), so harnesses and servers treat methods as
   interchangeable values.
3. **Serializable results** — :class:`ExplanationEnvelope` is the
   JSON-safe, process-boundary form of a result
   (``to_dict``/``from_dict`` round-trip exactly).

The historical ``repro.mesa.MESA`` facade remains as a thin shim over this
engine.
"""

from repro.engine.context import PipelineContext, StageHook
from repro.engine.envelope import ExplanationEnvelope, query_descriptor
from repro.engine.parallel import resolve_n_jobs
from repro.engine.pipeline import ExplanationPipeline
from repro.engine.registry import (
    BaselineExplainer,
    BruteForceExplainer,
    Explainer,
    MCIMRExplainer,
    MesaMinusExplainer,
    available_explainers,
    get_explainer,
    register_explainer,
)
from repro.engine.result import ExplanationResult
from repro.engine.stages import (
    CandidateStage,
    ExtractionStage,
    OfflinePruningStage,
    OnlinePruningStage,
    PipelineStage,
    QueryState,
    SearchStage,
    SelectionBiasStage,
    default_stages,
)

__all__ = [
    "PipelineContext",
    "StageHook",
    "ExplanationEnvelope",
    "query_descriptor",
    "ExplanationPipeline",
    "resolve_n_jobs",
    "Explainer",
    "MCIMRExplainer",
    "MesaMinusExplainer",
    "BaselineExplainer",
    "BruteForceExplainer",
    "available_explainers",
    "get_explainer",
    "register_explainer",
    "ExplanationResult",
    "PipelineStage",
    "QueryState",
    "ExtractionStage",
    "CandidateStage",
    "OfflinePruningStage",
    "OnlinePruningStage",
    "SelectionBiasStage",
    "SearchStage",
    "default_stages",
]
