"""The shared per-pipeline context: cross-query caches and instrumentation.

A :class:`PipelineContext` is bound to one dataset (table + knowledge source
+ extraction specification) and owns everything that is *query independent*
and therefore reusable across queries — the paper's "across-queries"
pre-processing phase, generalised:

* the **extraction cache** — the augmented table (dataset joined with every
  extracted attribute), keyed by the number of KG hops;
* the **offline-pruning cache** — the query-independent pruning verdict for
  every column of the augmented table, keyed by the pruning thresholds;
* **counters** — how often each expensive phase actually ran (cache misses),
  which the batch API's tests and the benchmarks assert against;
* **stage instrumentation** — cumulative per-stage wall-clock seconds and
  user-registered :class:`StageHook` callbacks fired around every stage.

Several :class:`~repro.engine.pipeline.ExplanationPipeline` instances (for
example the default configuration and its no-pruning MESA- variant) may
share one context, so cache keys always include the configuration values
the cached artefact depends on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pruning import PruningResult, offline_prune
from repro.exceptions import ConfigurationError
from repro.kg.extraction import AttributeExtractor, ExtractionResult
from repro.kg.graph import KnowledgeGraph
from repro.table.table import Table


class StageHook:
    """Instrumentation callback invoked around every pipeline stage.

    Subclass and override the methods you care about, then register the
    hook with :meth:`PipelineContext.add_hook`.  Hooks observe; they must
    not mutate the state.
    """

    def on_stage_start(self, stage_name: str, state) -> None:
        """Called immediately before a stage runs."""

    def on_stage_end(self, stage_name: str, state, seconds: float) -> None:
        """Called after a stage finished, with its wall-clock duration."""


class PipelineContext:
    """Cross-query caches and instrumentation shared by pipeline runs.

    Parameters
    ----------
    table:
        The input dataset ``D``.
    knowledge_graph:
        The knowledge source candidate attributes are mined from; ``None``
        disables extraction.
    extraction_specs:
        Which columns to link against which entity classes (see
        :class:`repro.datasets.registry.ExtractionSpec`).
    """

    def __init__(self, table: Table, knowledge_graph: Optional[KnowledgeGraph] = None,
                 extraction_specs: Sequence = ()):
        self.table = table
        self.knowledge_graph = knowledge_graph
        self.extraction_specs = tuple(extraction_specs)
        if self.extraction_specs and knowledge_graph is None:
            raise ConfigurationError(
                "Extraction specs were provided but no knowledge graph was given"
            )
        self.counters: Dict[str, int] = {}
        self.stage_seconds: Dict[str, float] = {}
        self.hooks: List[StageHook] = []
        self._extraction: Dict[int, Tuple[Table, Tuple[ExtractionResult, ...]]] = {}
        self._offline: Dict[Tuple[int, float, float], PruningResult] = {}

    # ------------------------------------------------------------------ #
    # counters and hooks
    # ------------------------------------------------------------------ #
    def count(self, name: str, increment: int = 1) -> None:
        """Increment a named counter (cache misses, stage runs, queries)."""
        self.counters[name] = self.counters.get(name, 0) + increment

    def merge_counters(self, counters: Dict[str, int],
                       stage_seconds: Optional[Dict[str, float]] = None) -> None:
        """Fold a worker context's counters (and timings) into this one.

        The parallel batch executor gives every worker a private forked
        context; after the batch the per-worker cache counters are merged
        back here so ``context.counters`` stays the single source of truth
        for batch observability.
        """
        for name, increment in counters.items():
            self.count(name, increment)
        if stage_seconds:
            for name, seconds in stage_seconds.items():
                self.stage_seconds[name] = self.stage_seconds.get(name, 0.0) + seconds

    def fork(self) -> "PipelineContext":
        """A worker context: same dataset, warmed caches, private counters.

        The expensive cross-query artefacts (the augmented table and the
        offline-pruning verdicts) are shared by reference — they are
        immutable once built — while counters, timings and hooks start
        empty so concurrent workers never write to shared state.
        """
        forked = PipelineContext(self.table, self.knowledge_graph,
                                 self.extraction_specs)
        forked._extraction = dict(self._extraction)
        forked._offline = dict(self._offline)
        return forked

    def add_hook(self, hook: StageHook) -> None:
        """Register an instrumentation hook fired around every stage."""
        self.hooks.append(hook)

    def notify_stage_start(self, stage_name: str, state) -> None:
        """Fire ``on_stage_start`` on every registered hook."""
        for hook in self.hooks:
            hook.on_stage_start(stage_name, state)

    def notify_stage_end(self, stage_name: str, state, seconds: float) -> None:
        """Record the stage duration and fire ``on_stage_end`` hooks."""
        self.stage_seconds[stage_name] = self.stage_seconds.get(stage_name, 0.0) + seconds
        for hook in self.hooks:
            hook.on_stage_end(stage_name, state, seconds)

    # ------------------------------------------------------------------ #
    # extraction cache (across queries)
    # ------------------------------------------------------------------ #
    def augmented_table(self, hops: int = 1) -> Table:
        """The dataset joined with every extracted attribute (cached per hops)."""
        return self._extraction_for(hops)[0]

    def extraction_results(self, hops: int = 1) -> List[ExtractionResult]:
        """Per-spec extraction results for the given hop count."""
        return list(self._extraction_for(hops)[1])

    def extracted_attribute_names(self, hops: int = 1) -> List[str]:
        """All attribute names added by extraction."""
        names: List[str] = []
        for result in self._extraction_for(hops)[1]:
            names.extend(result.attribute_names)
        return names

    def _extraction_for(self, hops: int) -> Tuple[Table, Tuple[ExtractionResult, ...]]:
        if hops not in self._extraction:
            self.count("extraction_runs")
            augmented = self.table
            results: List[ExtractionResult] = []
            if self.knowledge_graph is not None and self.extraction_specs:
                extractor = AttributeExtractor(self.knowledge_graph)
                for spec in self.extraction_specs:
                    augmented, result = extractor.augment(
                        augmented, spec.column, hops=hops,
                        entity_class=getattr(spec, "entity_class", None),
                        attribute_prefix=getattr(spec, "prefix", ""),
                    )
                    results.append(result)
            self._extraction[hops] = (augmented, tuple(results))
        return self._extraction[hops]

    # ------------------------------------------------------------------ #
    # offline-pruning cache (across queries)
    # ------------------------------------------------------------------ #
    def offline_pruning(self, candidates: Sequence[str], *, hops: int = 1,
                        max_missing_fraction: float = 0.9,
                        high_entropy_unique_ratio: float = 0.9) -> PruningResult:
        """The offline pruning verdict restricted to the given candidates.

        Offline pruning is query independent and per-attribute, so the
        context computes it exactly once over *every* column of the
        augmented table and answers each query by restriction — this is
        what lets :meth:`ExplanationPipeline.explain_many` amortise the
        pre-processing across a whole batch of queries.
        """
        key = (hops, max_missing_fraction, high_entropy_unique_ratio)
        if key not in self._offline:
            self.count("offline_pruning_runs")
            augmented = self.augmented_table(hops)
            self._offline[key] = offline_prune(
                augmented, augmented.column_names,
                max_missing_fraction=max_missing_fraction,
                high_entropy_unique_ratio=high_entropy_unique_ratio,
            )
        cached = self._offline[key]
        kept_set = set(cached.kept)
        kept = [name for name in candidates if name in kept_set]
        dropped = {name: cached.dropped[name] for name in candidates
                   if name in cached.dropped}
        return PruningResult(kept=kept, dropped=dropped)
