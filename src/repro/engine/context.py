"""The shared per-pipeline context: cross-query caches and instrumentation.

A :class:`PipelineContext` is bound to one dataset (table + knowledge source
+ extraction specification) and owns everything that is *query independent*
and therefore reusable across queries — the paper's "across-queries"
pre-processing phase, generalised:

* the **extraction cache** — the augmented table (dataset joined with every
  extracted attribute), keyed by the number of KG hops;
* the **offline-pruning cache** — the query-independent pruning verdict for
  every column of the augmented table, keyed by the pruning thresholds;
* the **encoded-frame cache** — the context-restricted table and its
  :class:`~repro.infotheory.encoding.EncodedFrame`, keyed by
  ``(hops, n_bins, canonical context predicate)``, so two queries sharing a
  WHERE clause factorise each column once — the common serving shape
  (repeated-context batches) skips re-encoding entirely;
* **counters** — how often each expensive phase actually ran (cache misses),
  which the batch API's tests and the benchmarks assert against;
* **stage instrumentation** — cumulative per-stage wall-clock seconds and
  user-registered :class:`StageHook` callbacks fired around every stage.

Several :class:`~repro.engine.pipeline.ExplanationPipeline` instances (for
example the default configuration and its no-pruning MESA- variant) may
share one context, so cache keys always include the configuration values
the cached artefact depends on.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pruning import PruningResult, offline_prune
from repro.exceptions import ConfigurationError, QueryError
from repro.infotheory.encoding import EncodedFrame
from repro.kg.extraction import AttributeExtractor, ExtractionResult
from repro.kg.graph import KnowledgeGraph
from repro.missingness.fitcache import SelectionFitCache
from repro.obs import trace
from repro.table.expressions import Predicate, canonical_predicate_key
from repro.table.table import Table

#: Cached offline-pruning verdict for a column the augmented table does
#: not have: excluded from both ``kept`` and ``dropped``, never re-probed.
_ABSENT_COLUMN = "__absent_column__"


class StageHook:
    """Instrumentation callback invoked around every pipeline stage.

    Subclass and override the methods you care about, then register the
    hook with :meth:`PipelineContext.add_hook`.  Hooks observe; they must
    not mutate the state.
    """

    def on_stage_start(self, stage_name: str, state) -> None:
        """Called immediately before a stage runs."""

    def on_stage_end(self, stage_name: str, state, seconds: float) -> None:
        """Called after a stage finished, with its wall-clock duration."""


class PipelineContext:
    """Cross-query caches and instrumentation shared by pipeline runs.

    Parameters
    ----------
    table:
        The input dataset ``D``.
    knowledge_graph:
        The knowledge source candidate attributes are mined from; ``None``
        disables extraction.
    extraction_specs:
        Which columns to link against which entity classes (see
        :class:`repro.datasets.registry.ExtractionSpec`).
    """

    #: Bound on the encoded-frame cache (LRU): each entry holds one
    #: context-restricted table plus its lazily-encoded columns.
    MAX_FRAME_CACHE = 32

    #: Bound on the IPW selection-fit cache (LRU): each entry holds one
    #: fitted selection model's weight vector (``8 * n_rows`` bytes).
    MAX_IPW_FIT_CACHE = 256

    def __init__(self, table: Table, knowledge_graph: Optional[KnowledgeGraph] = None,
                 extraction_specs: Sequence = ()):
        self.table = table
        self.knowledge_graph = knowledge_graph
        self.extraction_specs = tuple(extraction_specs)
        if self.extraction_specs and knowledge_graph is None:
            raise ConfigurationError(
                "Extraction specs were provided but no knowledge graph was given"
            )
        self.counters: Dict[str, int] = {}
        self.stage_seconds: Dict[str, float] = {}
        #: Monotonic dataset-version component of every canonical cache key
        #: derived from this context (frame cache, serving query keys).
        #: Bumped by the serving layer on registration and cache
        #: invalidation, so cached artefacts age out coherently across
        #: every cache layer — and every process — at once.
        self.dataset_version: int = 0
        #: Optional row-sharded data plane
        #: (:class:`repro.distributed.coordinator.ShardPool`).  When
        #: attached, the engine stages build
        #: :class:`~repro.distributed.problem.ShardedExplanationProblem`
        #: instances whose counts scatter-gather across the pool's workers
        #: instead of running on this process's arrays.  ``shard_label``
        #: names the dataset inside the pool's context keys.
        self.shard_pool = None
        self.shard_label: Optional[str] = None
        # Counters are written from serving threads (cache verdicts) and
        # batch workers concurrently; the read-modify-write increments and
        # the observability snapshots need a lock to stay exact.
        self._counter_lock = threading.Lock()
        self.hooks: List[StageHook] = []
        self._extraction: Dict[int, Tuple[Table, Tuple[ExtractionResult, ...]]] = {}
        #: Per-column offline verdicts (``None`` = kept, else the drop
        #: reason), keyed by the threshold tuple.  Columns are judged
        #: lazily, in batches of whatever a caller asks about and is not
        #: cached yet — so excluded / never-candidate columns of a wide
        #: table are never scanned at all, while the across-queries
        #: amortisation (each column judged at most once) is preserved.
        self._offline: Dict[Tuple[int, float, float],
                            Dict[str, Optional[str]]] = {}
        self._frames: "OrderedDict[Tuple[int, int, str, int], Tuple[Table, EncodedFrame]]" = \
            OrderedDict()
        #: Pre-encoded frames published by a frame-store owner, keyed by
        #: ``(hops, n_bins, canonical context predicate)`` — *without* the
        #: dataset version: adoption is version-agnostic and the whole map
        #: drops on :meth:`bump_dataset_version` (a bump means the data may
        #: have changed, so owner-encoded artefacts are no longer trusted).
        #: Values are :class:`repro.shm.manifest.FrameManifest` records;
        #: the frame itself materialises lazily on the first cache miss as
        #: read-only views over the shared segments.
        self._shared_frames: Dict[Tuple[int, int, str], object] = {}
        #: Finished IPW selection fits keyed by (design signature, observed
        #: mask hash) — queries sharing a context (and attributes sharing a
        #: missingness pattern) fit each selection model at most once.
        self.ipw_fit_cache = SelectionFitCache(self.MAX_IPW_FIT_CACHE)

    # ------------------------------------------------------------------ #
    # counters and hooks
    # ------------------------------------------------------------------ #
    def count(self, name: str, increment: int = 1) -> None:
        """Increment a named counter (cache misses, stage runs, queries)."""
        with self._counter_lock:
            self.counters[name] = self.counters.get(name, 0) + increment

    def add_seconds(self, name: str, seconds: float) -> None:
        """Accumulate wall-clock seconds of a backend phase.

        The batched inference backends report fine-grained phase timings
        (``permutation_test``, ``ipw_fit``) through this hook; they land in
        ``stage_seconds`` next to the stage-level timings, so ``/stats``
        and the benchmarks surface them without extra plumbing.
        """
        with self._counter_lock:
            self.stage_seconds[name] = self.stage_seconds.get(name, 0.0) + seconds

    def merge_counters(self, counters: Dict[str, int],
                       stage_seconds: Optional[Dict[str, float]] = None) -> None:
        """Fold a worker context's counters (and timings) into this one.

        The parallel batch executor gives every worker a private forked
        context; after the batch the per-worker cache counters are merged
        back here so ``context.counters`` stays the single source of truth
        for batch observability.
        """
        with self._counter_lock:
            for name, increment in counters.items():
                self.counters[name] = self.counters.get(name, 0) + increment
            if stage_seconds:
                for name, seconds in stage_seconds.items():
                    self.stage_seconds[name] = self.stage_seconds.get(name, 0.0) + seconds

    def observability_snapshot(self) -> Tuple[Dict[str, int], Dict[str, float]]:
        """A consistent ``(counters, stage_seconds)`` copy.

        Observability readers (``GET /stats``) must not iterate the live
        dicts while a worker inserts a first-time key.
        """
        with self._counter_lock:
            return dict(self.counters), dict(self.stage_seconds)

    def fork(self) -> "PipelineContext":
        """A worker context: same dataset, warmed caches, private counters.

        The expensive cross-query artefacts are shared by reference —
        the augmented table and the offline-pruning verdicts are immutable
        once built, and the encoded frames only *accumulate* deterministic
        per-column encodings (safe to race: the worst case is a redundant
        encode, never a wrong value) — while counters, timings and hooks
        start empty so concurrent workers never write to shared state.
        """
        forked = PipelineContext(self.table, self.knowledge_graph,
                                 self.extraction_specs)
        forked.dataset_version = self.dataset_version
        forked.shard_pool = self.shard_pool
        forked.shard_label = self.shard_label
        forked._extraction = dict(self._extraction)
        # Verdict maps accumulate lazily now — give the fork its own dicts
        # so neither side observes the other's later additions mid-iteration.
        forked._offline = {key: dict(verdicts)
                           for key, verdicts in self._offline.items()}
        forked._frames = OrderedDict(self._frames)
        forked._shared_frames = dict(self._shared_frames)
        forked.ipw_fit_cache = self.ipw_fit_cache.copy()
        return forked

    def bump_dataset_version(self) -> int:
        """Advance the dataset version, invalidating version-keyed caches.

        The new version becomes part of every canonical key derived from
        this context, so the encoded-frame cache (and the serving layer's
        envelope/negative caches, which embed the version in their query
        keys) stop answering from pre-bump artefacts immediately; the stale
        entries age out of their bounded LRUs.  The IPW fit cache is keyed
        by content digests rather than canonical keys, so it is dropped
        outright.
        """
        with self._counter_lock:
            self.dataset_version += 1
            version = self.dataset_version
        self.ipw_fit_cache = SelectionFitCache(self.MAX_IPW_FIT_CACHE)
        # Owner-published frames describe pre-bump data; drop the adoption
        # map so post-bump misses re-encode locally (the owner re-publishes
        # on its next warm pass).
        self._shared_frames = {}
        self.count("dataset_version_bumps")
        return version

    def add_hook(self, hook: StageHook) -> None:
        """Register an instrumentation hook fired around every stage."""
        self.hooks.append(hook)

    def notify_stage_start(self, stage_name: str, state) -> None:
        """Fire ``on_stage_start`` on every registered hook."""
        for hook in self.hooks:
            hook.on_stage_start(stage_name, state)

    def notify_stage_end(self, stage_name: str, state, seconds: float) -> None:
        """Record the stage duration and fire ``on_stage_end`` hooks."""
        with self._counter_lock:
            self.stage_seconds[stage_name] = \
                self.stage_seconds.get(stage_name, 0.0) + seconds
        for hook in self.hooks:
            hook.on_stage_end(stage_name, state, seconds)

    def shard_context(self, context: Predicate, *, hops: int, n_bins: int,
                      n_rows: int):
        """The shard pool's context handle for one context frame.

        Keyed like :meth:`context_frame` plus the dataset label, so the
        worker-resident column slices age out with the same identity as
        the coordinator's encoded frames (a version bump strands the old
        context, which the pool's LRU then evicts).
        """
        if self.shard_pool is None:
            raise ConfigurationError("no shard pool is attached to this context")
        return self.shard_pool.context_handle(
            self.shard_label or self.table.name or "dataset",
            self.dataset_version, hops, n_bins,
            canonical_predicate_key(context), n_rows)

    # ------------------------------------------------------------------ #
    # extraction cache (across queries)
    # ------------------------------------------------------------------ #
    def augmented_table(self, hops: int = 1) -> Table:
        """The dataset joined with every extracted attribute (cached per hops)."""
        return self._extraction_for(hops)[0]

    def extraction_results(self, hops: int = 1) -> List[ExtractionResult]:
        """Per-spec extraction results for the given hop count."""
        return list(self._extraction_for(hops)[1])

    def extracted_attribute_names(self, hops: int = 1) -> List[str]:
        """All attribute names added by extraction."""
        names: List[str] = []
        for result in self._extraction_for(hops)[1]:
            names.extend(result.attribute_names)
        return names

    def _extraction_for(self, hops: int) -> Tuple[Table, Tuple[ExtractionResult, ...]]:
        if hops not in self._extraction:
            self.count("extraction_runs")
            augmented = self.table
            results: List[ExtractionResult] = []
            if self.knowledge_graph is not None and self.extraction_specs:
                extractor = AttributeExtractor(self.knowledge_graph)
                for spec in self.extraction_specs:
                    augmented, result = extractor.augment(
                        augmented, spec.column, hops=hops,
                        entity_class=getattr(spec, "entity_class", None),
                        attribute_prefix=getattr(spec, "prefix", ""),
                    )
                    results.append(result)
            self._extraction[hops] = (augmented, tuple(results))
        return self._extraction[hops]

    # ------------------------------------------------------------------ #
    # offline-pruning cache (across queries)
    # ------------------------------------------------------------------ #
    def offline_pruning(self, candidates: Sequence[str], *, hops: int = 1,
                        max_missing_fraction: float = 0.9,
                        high_entropy_unique_ratio: float = 0.9) -> PruningResult:
        """The offline pruning verdict restricted to the given candidates.

        Offline pruning is query independent and per-attribute, so the
        context judges each column exactly once and answers every query
        from the cached verdicts — this is what lets
        :meth:`ExplanationPipeline.explain_many` amortise the
        pre-processing across a whole batch of queries.  Verdicts are
        computed lazily for whatever columns a caller actually asks
        about: a wide table's excluded or never-candidate columns are
        never scanned (``n_unique`` over a quarter-million-row identifier
        column is a sort the pipeline would otherwise pay per dataset).
        """
        key = (hops, max_missing_fraction, high_entropy_unique_ratio)
        verdicts = self._offline.setdefault(key, {})
        todo = [name for name in candidates if name not in verdicts]
        if todo:
            self.count("offline_pruning_runs")
            augmented = self.augmented_table(hops)
            judged = offline_prune(
                augmented, [name for name in todo if name in augmented],
                max_missing_fraction=max_missing_fraction,
                high_entropy_unique_ratio=high_entropy_unique_ratio,
            )
            for name in judged.kept:
                verdicts[name] = None
            verdicts.update(judged.dropped)
            for name in todo:
                # Absent columns stay out of both kept and dropped (the
                # historical contract); remember the verdict so they are
                # not re-probed on every call.
                verdicts.setdefault(name, _ABSENT_COLUMN)
        kept = [name for name in candidates
                if name in verdicts and verdicts[name] is None]
        dropped = {name: verdicts[name] for name in candidates
                   if verdicts.get(name) is not None
                   and verdicts[name] is not _ABSENT_COLUMN}
        return PruningResult(kept=kept, dropped=dropped)

    # ------------------------------------------------------------------ #
    # encoded-frame cache (across queries)
    # ------------------------------------------------------------------ #
    def context_frame(self, context: Predicate, *, hops: int = 1,
                      n_bins: int = 8) -> Tuple[Table, EncodedFrame]:
        """The context-restricted augmented table and its encoded frame.

        Keyed by ``(hops, n_bins, canonical context predicate)`` and bounded
        (LRU), so any number of queries sharing a WHERE clause filter the
        table once and factorise each column at most once — the repeated
        context batch, the common serving shape, pays the encoding cost only
        on its first query.  Frames encode lazily, so a cache hit also
        inherits every column the earlier queries already touched.
        """
        context_key = canonical_predicate_key(context)
        key = (hops, n_bins, context_key, self.dataset_version)
        entry = self._frames.get(key)
        if entry is not None:
            self._frames.move_to_end(key)
            self.count("frame_cache_hits")
            trace.annotate(frame_cache="hit")
            return entry
        manifest = self._shared_frames.get((hops, n_bins, context_key))
        if manifest is not None:
            adopted = self._adopt_frame(key, manifest, context, hops)
            if adopted is not None:
                return adopted
        self.count("frame_cache_misses")
        with trace.span("frame.encode", hops=hops, n_bins=n_bins):
            return self._build_frame(key, context, hops, n_bins)

    def adopt_shared_frame(self, manifest) -> None:
        """Install an owner-published pre-encoded frame for later adoption.

        ``manifest`` is a :class:`repro.shm.manifest.FrameManifest`; its
        ``key`` is the version-less frame identity.  The next cache miss
        for that identity attaches read-only views over the shared code
        arrays instead of re-encoding — the ``warm()`` encode-once-per-box
        path of the frame store.
        """
        self._shared_frames[tuple(manifest.key)] = manifest

    def _adopt_frame(self, key, manifest, context: Predicate,
                     hops: int) -> Optional[Tuple[Table, EncodedFrame]]:
        """Materialise a published frame as views (None on any mismatch).

        Filtering the context table locally is cheap and deterministic;
        only the per-column factorisation arrives shared.  A row-count
        mismatch means this process's table state diverged from the
        owner's — fall back to the encode path rather than serve wrong
        codes.
        """
        from repro.shm.manifest import frame_from_manifest

        augmented = self.augmented_table(hops)
        if any(name not in augmented for name in context.columns()):
            return None  # the encode path raises the precise QueryError
        context_table = augmented.filter_view(context)
        try:
            frame = frame_from_manifest(manifest, context_table)
        except Exception:
            self._shared_frames.pop((key[0], key[1], key[2]), None)
            return None
        self.count("frame_store_attach")
        trace.annotate(frame_cache="shm-attach")
        entry = (context_table, frame)
        self._frames[key] = entry
        while len(self._frames) > self.MAX_FRAME_CACHE:
            self._frames.popitem(last=False)
        return entry

    def _build_frame(self, key, context: Predicate, hops: int,
                     n_bins: int) -> Tuple[Table, EncodedFrame]:
        augmented = self.augmented_table(hops)
        missing = [name for name in sorted(context.columns())
                   if name not in augmented]
        if missing:
            raise QueryError(
                f"Query context references missing column(s) {missing}; "
                f"the augmented table has {augmented.column_names}")
        # A lazy view: the pipeline reads a handful of candidate, exposure/
        # outcome and predictor columns — filtering the rest of a wide
        # table would copy (and, over a shared-memory table, privately
        # touch) every column per context for nothing.
        context_table = augmented.filter_view(context)
        entry = (context_table, EncodedFrame(context_table, n_bins=n_bins))
        self._frames[key] = entry
        while len(self._frames) > self.MAX_FRAME_CACHE:
            self._frames.popitem(last=False)
        return entry
