"""First-class pipeline stages of the explanation engine.

Each stage implements one phase of the MESA pipeline (Sections 3–4 of the
paper) as an object with a uniform ``run(state, context)`` surface, so that
an :class:`~repro.engine.pipeline.ExplanationPipeline` can compose, replace
or instrument them independently:

* :class:`ExtractionStage` — mine candidate attributes from the knowledge
  source (cached across queries in the :class:`PipelineContext`);
* :class:`CandidateStage` — assemble the candidate set ``A``;
* :class:`OfflinePruningStage` — constant / mostly-missing / identifier
  attributes (query independent, cached in the context);
* :class:`OnlinePruningStage` — build the problem instance, then drop
  logical dependencies with ``T``/``O`` and low-relevance attributes;
* :class:`SelectionBiasStage` — recoverability analysis per surviving
  attribute with missing values; IPW weights for the biased ones;
* :class:`SearchStage` — the MCIMR explanation search.

Stages communicate through a mutable :class:`QueryState` and record their
wall-clock cost in its timer under the stage's timing labels.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.candidates import CandidateSet, build_candidate_set
from repro.core.explanation import Explanation
from repro.core.mcimr import mcimr
from repro.core.problem import CorrelationExplanationProblem
from repro.core.pruning import PruningResult, online_prune
from repro.engine.context import PipelineContext
from repro.engine.config import MESAConfig
from repro.missingness.fitcache import compute_ipw_weights_batched
from repro.missingness.ipw import IPWWeights, compute_ipw_weights
from repro.missingness.recoverability import RecoverabilityReport, attribute_selection_bias
from repro.query.aggregate_query import AggregateQuery
from repro.table.table import Table
from repro.utils.timing import Timer


@dataclass
class QueryState:
    """Everything the stages accumulate while answering one query."""

    query: AggregateQuery
    config: MESAConfig
    k: int
    timer: Timer = field(default_factory=Timer)
    augmented: Optional[Table] = None
    extracted_names: List[str] = field(default_factory=list)
    candidate_set: Optional[CandidateSet] = None
    candidates: List[str] = field(default_factory=list)
    pruning: Optional[PruningResult] = None
    problem: Optional[CorrelationExplanationProblem] = None
    selection_bias_reports: List[RecoverabilityReport] = field(default_factory=list)
    ipw_weights: Dict[str, IPWWeights] = field(default_factory=dict)
    explanation: Optional[Explanation] = None
    #: Memoised search results keyed by explainer cache token (the searches
    #: are deterministic — every permutation test is seeded — so a token hit
    #: returns the identical explanation without re-searching).
    search_cache: Dict[object, Explanation] = field(default_factory=dict)


class PipelineStage:
    """Base class of all pipeline stages.

    ``name`` identifies the stage in instrumentation (hooks, counters and
    the context's cumulative timings); ``is_search`` marks the stage(s) that
    consume a prepared problem and produce the explanation, which lets the
    pipeline cache everything before them per query.
    """

    name: str = "stage"
    is_search: bool = False

    def run(self, state: QueryState, context: PipelineContext) -> None:
        raise NotImplementedError


class ExtractionStage(PipelineStage):
    """Join the dataset with the attributes mined from the knowledge source."""

    name = "extraction"

    def run(self, state: QueryState, context: PipelineContext) -> None:
        with state.timer.measure("extraction"):
            state.augmented = context.augmented_table(state.config.hops)
            state.extracted_names = context.extracted_attribute_names(state.config.hops)


class CandidateStage(PipelineStage):
    """Assemble the candidate set ``A`` for the query."""

    name = "candidates"

    def run(self, state: QueryState, context: PipelineContext) -> None:
        with state.timer.measure("candidates"):
            state.candidate_set = build_candidate_set(
                state.augmented, state.query,
                extracted_attributes=state.extracted_names,
                exclude=state.config.excluded_columns,
            )
            state.candidates = state.candidate_set.all


class OfflinePruningStage(PipelineStage):
    """Query-independent pruning, answered from the context cache."""

    name = "offline_pruning"

    def run(self, state: QueryState, context: PipelineContext) -> None:
        config = state.config
        with state.timer.measure("offline_pruning"):
            if config.use_offline_pruning:
                offline = context.offline_pruning(
                    state.candidate_set.all, hops=config.hops,
                    max_missing_fraction=config.max_missing_fraction,
                    high_entropy_unique_ratio=config.high_entropy_unique_ratio,
                )
                state.pruning = PruningResult(kept=list(offline.kept),
                                              dropped=dict(offline.dropped))
                kept = set(offline.kept)
                state.candidates = [name for name in state.candidates if name in kept]
            else:
                state.pruning = PruningResult(kept=list(state.candidates), dropped={})


def _build_problem(state: QueryState, context: PipelineContext,
                   frame, context_table, attribute_weights=None,
                   ) -> CorrelationExplanationProblem:
    """Build the problem instance, sharded when a data plane is attached.

    With ``context.shard_pool`` set (rows-mode serving) and the fast kernel
    enabled, the problem routes its counts through the pool's row-shard
    workers; otherwise — including ``use_fast_kernel=False``, where the
    reference estimators need the local arrays anyway — it runs entirely in
    this process.
    """
    config = state.config
    permutation_budget = None
    if (config.max_responsibility_permutations
            or config.permutation_rng_stream != "legacy"):
        from repro.infotheory.permutation import PermutationBudget
        permutation_budget = PermutationBudget(
            max_permutations=config.max_responsibility_permutations or None,
            early_exit=config.permutation_early_exit
            or bool(config.max_responsibility_permutations),
            rng_stream=config.permutation_rng_stream,
        )
    kwargs = dict(
        attribute_weights=attribute_weights, n_bins=config.n_bins,
        use_kernel=config.use_fast_kernel,
        frame=frame, context_table=context_table,
        use_blocked_permutations=config.use_blocked_permutations,
        permutation_early_exit=config.permutation_early_exit,
        permutation_budget=permutation_budget,
        counter_hook=context.count, seconds_hook=context.add_seconds,
    )
    if context.shard_pool is not None and config.use_fast_kernel:
        from repro.distributed.problem import ShardedExplanationProblem
        handle = context.shard_context(
            state.query.context, hops=config.hops, n_bins=config.n_bins,
            n_rows=context_table.n_rows)
        return ShardedExplanationProblem(
            context.shard_pool, handle,
            state.augmented, state.query, state.candidates, **kwargs)
    return CorrelationExplanationProblem(
        state.augmented, state.query, state.candidates, **kwargs)


class OnlinePruningStage(PipelineStage):
    """Build the problem instance, then apply the query-specific rules."""

    name = "online_pruning"

    def run(self, state: QueryState, context: PipelineContext) -> None:
        config = state.config
        with state.timer.measure("problem"):
            # The context-restricted table and its encoded columns are
            # cached per (hops, n_bins, canonical context) on the pipeline
            # context, so repeated-context queries skip the row filter and
            # every re-factorisation.
            context_table, frame = context.context_frame(
                state.query.context, hops=config.hops, n_bins=config.n_bins)
            state.problem = _build_problem(state, context, frame, context_table)
        with state.timer.measure("online_pruning"):
            if config.use_online_pruning:
                online = online_prune(
                    state.problem, state.candidates,
                    fd_entropy_threshold=config.fd_entropy_threshold,
                    relevance_cmi_threshold=config.relevance_cmi_threshold,
                    determination_ratio=config.determination_ratio,
                )
                state.pruning.dropped.update(online.dropped)
                state.candidates = online.kept
            state.pruning.kept = list(state.candidates)


class SelectionBiasStage(PipelineStage):
    """Recoverability analysis + IPW re-weighting of biased attributes."""

    name = "selection_bias"

    def run(self, state: QueryState, context: PipelineContext) -> None:
        config = state.config
        with state.timer.measure("selection_bias"):
            if config.handle_selection_bias:
                reports, weights = self._analyse(state, context)
                state.selection_bias_reports = reports
                state.ipw_weights = weights
                if weights:
                    # The weighted rebuild covers the same context rows;
                    # adopting the frame and table keeps every column
                    # factorised (and the context filtered) at most once.
                    state.problem = _build_problem(
                        state, context,
                        state.problem.frame, state.problem.context_table,
                        attribute_weights={name: w.weights
                                           for name, w in weights.items()})
            # Narrow the problem to the surviving candidates; the CMI caches
            # are shared, so this is free.
            state.problem = state.problem.subset_candidates(state.candidates)

    def _analyse(self, state: QueryState, context: PipelineContext,
                 ) -> Tuple[List[RecoverabilityReport], Dict[str, IPWWeights]]:
        config = state.config
        problem = state.problem
        reports: List[RecoverabilityReport] = []
        biased: List[str] = []
        predictors = ipw_predictor_columns(context.table, state.query, config)
        for attribute in state.candidates:
            column = problem.context_table.column(attribute)
            if column.missing_fraction() < config.min_missing_for_bias_check:
                continue
            report = attribute_selection_bias(problem.frame, problem.outcome,
                                              problem.exposure, attribute,
                                              n_permutations=0,
                                              use_kernel=config.use_fast_kernel)
            reports.append(report)
            if report.selection_bias:
                biased.append(attribute)
        if not biased:
            return reports, {}
        fit_start = time.perf_counter()
        try:
            weights = self._fit_selection_models(problem, biased, predictors,
                                                 context, config)
        finally:
            context.add_seconds("ipw_fit", time.perf_counter() - fit_start)
        return reports, weights

    @staticmethod
    def _fit_selection_models(problem, biased: List[str], predictors: List[str],
                              context: PipelineContext, config: MESAConfig,
                              ) -> Dict[str, IPWWeights]:
        """Fit the selection models of the biased attributes.

        The default path routes every fit through the context's
        :class:`~repro.missingness.fitcache.SelectionFitCache` (hits are
        counted as ``ipw_fit_hit``) and batches the misses into one
        multi-label IRLS solve; ``use_ipw_fit_cache=False`` reproduces the
        historical per-attribute fitting loop.
        """
        def build_design():
            """One-hot features + binomial row groups of the shared design.

            Every biased attribute fits its selection model over the same
            design; grouping identical predictor rows once lets each fit
            run on binomial groups instead of raw rows.  A missing code is
            its own category (it is an all-zero one-hot block).
            """
            if not predictors:
                return None, None
            from repro.missingness.logistic import one_hot_encode_codes
            predictor_codes = [problem.frame.codes(column) for column in predictors]
            return (one_hot_encode_codes(predictor_codes),
                    _predictor_row_groups(predictor_codes))

        if config.use_ipw_fit_cache:
            # The design is built lazily, only when some fit misses the
            # cache — a fully cached query (the warm serving shape) skips
            # the one-hot encoding entirely.  A sharded problem contributes
            # its distributed IRLS solver, so cache misses fit on the row
            # shards (with a local fallback inside the fitter).
            fitter = None
            if predictors and hasattr(problem, "distributed_fitter"):
                fitter = problem.distributed_fitter(predictors)
            return compute_ipw_weights_batched(
                problem.frame, biased, predictors,
                design_factory=build_design,
                cache=context.ipw_fit_cache, counter_hook=context.count,
                fitter=fitter)
        features, row_groups = build_design()
        return {attribute: compute_ipw_weights(problem.frame, attribute,
                                               predictors, features=features,
                                               row_groups=row_groups)
                for attribute in biased}


class SearchStage(PipelineStage):
    """The MCIMR search with the responsibility-test stopping criterion."""

    name = "search"
    is_search = True

    def __init__(self, method_name: str = "mesa"):
        self.method_name = method_name

    def run(self, state: QueryState, context: PipelineContext) -> None:
        config = state.config
        token = ("mcimr", self.method_name, state.k, config)
        with state.timer.measure("mcimr"):
            explanation = state.search_cache.get(token)
            if explanation is None:
                explanation = mcimr(
                    state.problem, k=state.k, candidates=state.candidates,
                    use_responsibility_test=config.use_responsibility_test,
                    responsibility_threshold=config.responsibility_threshold,
                    responsibility_permutations=config.responsibility_permutations,
                    method_name=self.method_name,
                    speculative=config.speculative_search,
                )
                state.search_cache[token] = explanation
            state.explanation = explanation


def default_stages(method_name: str = "mesa") -> List[PipelineStage]:
    """The paper's seven-phase pipeline as a composable stage list."""
    return [
        ExtractionStage(),
        CandidateStage(),
        OfflinePruningStage(),
        OnlinePruningStage(),
        SelectionBiasStage(),
        SearchStage(method_name=method_name),
    ]


def _predictor_row_groups(predictor_codes) -> "np.ndarray":
    """Dense ids (``0..k-1``) of the distinct predictor-value tuples per row.

    Missing codes are remapped to an extra per-column category before
    fusing, so two rows group together exactly when their one-hot feature
    rows are identical.
    """
    import numpy as np

    from repro.infotheory import kernel

    fused = None
    card = 1
    for codes in predictor_codes:
        codes = np.asarray(codes, dtype=np.int64)
        extra_card = kernel.code_cardinality(codes) + 1
        remapped = np.where(codes < 0, extra_card - 1, codes)
        if fused is None:
            fused, card = remapped, extra_card
        else:
            fused, card = kernel.fuse_codes(fused, card, remapped, extra_card)
        fused, card = kernel.maybe_compact(fused, card)
    groups, _ = kernel.compact_codes(fused)
    return groups


def ipw_predictor_columns(table: Table, query: AggregateQuery,
                          config: MESAConfig) -> List[str]:
    """Columns of the original dataset used as selection-model features."""
    if config.ipw_predictor_columns is not None:
        return [name for name in config.ipw_predictor_columns if name in table]
    predictors: List[str] = []
    for name in table.column_names:
        if name in (query.outcome,):
            continue
        if name in config.excluded_columns:
            continue
        column = table.column(name)
        if column.missing_count() == 0 and column.n_unique() <= 64:
            predictors.append(name)
    return predictors
