"""The staged explanation pipeline — the engine behind ``MESA.explain``.

An :class:`ExplanationPipeline` composes the first-class stages of
:mod:`repro.engine.stages` over a shared :class:`PipelineContext`:

* ``explain(query, k)`` runs the full pipeline for one query and returns an
  :class:`~repro.engine.result.ExplanationResult`;
* ``explain_many(queries, k)`` is the batch API: the context caches make
  extraction and offline pruning run exactly once for the whole batch (the
  paper's "across-queries" pre-processing, generalised);
* ``prepare(query)`` runs every stage up to (but not including) the search
  and memoises the resulting :class:`QueryState`, so several explainers can
  search the same prepared problem without re-running the pipeline;
* ``run_explainer(explainer, query, k)`` resolves an
  :class:`~repro.engine.registry.Explainer` against the prepared problem —
  honouring the explainer's configuration variant (e.g. MESA- prepares
  without pruning) — which is what the evaluation harness is built on;
* ``with_config(config)`` derives a pipeline for a configuration variant
  that shares this pipeline's context (and therefore its caches).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.explanation import Explanation
from repro.core.pruning import PruningResult
from repro.engine.context import PipelineContext
from repro.engine.result import ExplanationResult
from repro.engine.stages import PipelineStage, QueryState, default_stages
from repro.exceptions import ConfigurationError
from repro.kg.graph import KnowledgeGraph
from repro.engine.config import MESAConfig
from repro.obs import trace
from repro.query.aggregate_query import AggregateQuery
from repro.table.table import Table
from repro.utils.timing import Timer


class ExplanationPipeline:
    """The staged MESA pipeline over a shared cross-query context.

    Parameters
    ----------
    table:
        The input dataset ``D`` (ignored when ``context`` is given).
    knowledge_graph:
        The knowledge source; ``None`` disables extraction.
    extraction_specs:
        Which columns to link against which entity classes.
    config:
        Pipeline configuration (defaults to :class:`MESAConfig`).
    context:
        An existing :class:`PipelineContext` to share caches with; when
        given, ``table``/``knowledge_graph``/``extraction_specs`` must be
        omitted.
    stages:
        Custom stage list; defaults to :func:`default_stages`.
    max_prepared_states:
        Bound on the per-query prepared-state memo (LRU): a long query
        stream keeps at most this many problem instances alive instead of
        growing without bound.
    """

    def __init__(self, table: Optional[Table] = None,
                 knowledge_graph: Optional[KnowledgeGraph] = None,
                 extraction_specs: Sequence = (),
                 config: Optional[MESAConfig] = None,
                 context: Optional[PipelineContext] = None,
                 stages: Optional[Sequence[PipelineStage]] = None,
                 max_prepared_states: int = 64):
        if context is None:
            if table is None:
                raise ConfigurationError(
                    "ExplanationPipeline needs either a table or an existing context"
                )
            context = PipelineContext(table, knowledge_graph, extraction_specs)
        elif table is not None and table is not context.table:
            raise ConfigurationError(
                "Pass either a table or a context, not a different table alongside one"
            )
        self.context = context
        self.config = config or MESAConfig()
        self.stages: List[PipelineStage] = list(stages) if stages is not None \
            else default_stages()
        if max_prepared_states < 1:
            raise ConfigurationError(
                f"max_prepared_states must be >= 1, got {max_prepared_states}")
        self.max_prepared_states = max_prepared_states
        self._prepared: "OrderedDict[object, QueryState]" = OrderedDict()
        self._variants: Dict[MESAConfig, "ExplanationPipeline"] = {}

    # ------------------------------------------------------------------ #
    # convenience accessors
    # ------------------------------------------------------------------ #
    @property
    def table(self) -> Table:
        """The input dataset the pipeline explains queries over."""
        return self.context.table

    def with_config(self, config: MESAConfig) -> "ExplanationPipeline":
        """A pipeline for a configuration variant sharing this context.

        Variant pipelines are memoised, so e.g. every MESA- run of a batch
        reuses one prepared-state cache.
        """
        if config == self.config:
            return self
        if config not in self._variants:
            self._variants[config] = ExplanationPipeline(
                context=self.context, config=config, stages=self.stages)
        return self._variants[config]

    # ------------------------------------------------------------------ #
    # staged execution
    # ------------------------------------------------------------------ #
    def prepare(self, query: AggregateQuery) -> QueryState:
        """Run every non-search stage for the query (memoised per query).

        The returned state carries the prepared problem instance (pruned
        candidates, IPW weights applied) that any explainer can search.
        """
        key = self._query_key(query)
        state = self._prepared.get(key)
        if state is None:
            state = QueryState(query=query, config=self.config, k=self.config.k)
            for stage in self.stages:
                if stage.is_search:
                    continue
                self._run_stage(stage, state)
            self._prepared[key] = state
            while len(self._prepared) > self.max_prepared_states:
                self._prepared.popitem(last=False)
        else:
            self._prepared.move_to_end(key)
        return state

    def explain(self, query: AggregateQuery, k: Optional[int] = None) -> ExplanationResult:
        """Run the full pipeline for one query."""
        prepared = self.prepare(query)
        state = QueryState(
            query=prepared.query, config=self.config,
            k=k if k is not None else self.config.k,
            timer=Timer(durations=prepared.timer.as_dict()),
            augmented=prepared.augmented,
            extracted_names=list(prepared.extracted_names),
            candidate_set=prepared.candidate_set,
            candidates=list(prepared.candidates),
            # Copy the mutable pruning report so mutating a result cannot
            # corrupt the memoised prepared state (or other results).
            pruning=PruningResult(kept=list(prepared.pruning.kept),
                                  dropped=dict(prepared.pruning.dropped)),
            problem=prepared.problem,
            selection_bias_reports=list(prepared.selection_bias_reports),
            ipw_weights=dict(prepared.ipw_weights),
            search_cache=prepared.search_cache,
        )
        for stage in self.stages:
            if stage.is_search:
                self._run_stage(stage, state)
        self.context.count("queries_explained")
        return ExplanationResult(
            query=state.query,
            explanation=state.explanation,
            candidate_set=state.candidate_set,
            pruning=state.pruning,
            selection_bias_reports=state.selection_bias_reports,
            ipw_weights=state.ipw_weights,
            timings=state.timer.as_dict(),
            problem=state.problem,
            n_candidates_after_pruning=len(state.candidates),
        )

    def explain_many(self, queries: Iterable[AggregateQuery],
                     k: Optional[int] = None,
                     n_jobs: Optional[int] = None,
                     trace_captures: Optional[Sequence] = None,
                     ) -> List[ExplanationResult]:
        """Explain a batch of queries, amortising the cross-query work.

        Extraction and offline pruning run at most once for the whole batch
        (assertable via ``context.counters``); per-query stages still run
        per query.

        ``n_jobs`` (defaulting to ``config.n_jobs``; ``-1`` = all CPUs)
        opts into parallel execution: queries fan out over thread workers,
        each driving a private pipeline over a forked context, and the
        workers' cache counters merge back into this pipeline's context.
        Results come back in query order.  For process-based fan-out use
        :meth:`explain_many_envelopes` — a live result cannot cross a
        process boundary.

        ``trace_captures`` (one :func:`repro.obs.trace.capture` per query,
        or ``None``) re-activates each query's originating trace around
        its engine run, so a batch coalesced from several traced requests
        attributes stage/test spans to the right request.
        """
        from repro.engine.parallel import (_warm_context,
                                           explain_many_threaded,
                                           resolve_n_jobs)

        queries = list(queries)
        jobs = resolve_n_jobs(n_jobs, default=self.config.n_jobs)
        if jobs <= 1 or len(queries) <= 1:
            if len(queries) > 1:
                # Judge the whole candidate pool in one pruning pass so
                # per-query calls (whose candidate sets differ by their
                # own exposure/outcome) find every verdict cached.
                _warm_context(self)
            results = []
            for index, query in enumerate(queries):
                captured = trace_captures[index] if trace_captures else None
                with trace.activation(captured):
                    results.append(self.explain(query, k=k))
            return results
        return explain_many_threaded(self, queries, k, jobs,
                                     trace_captures=trace_captures)

    def explain_many_envelopes(self, queries: Iterable[AggregateQuery],
                               k: Optional[int] = None,
                               n_jobs: Optional[int] = None,
                               backend: Optional[str] = None,
                               trace_captures: Optional[Sequence] = None,
                               ) -> List["ExplanationEnvelope"]:
        """Batch API returning JSON-serializable envelopes (worker-pool form).

        With ``n_jobs > 1`` the batch fans out over the configured backend:
        ``"thread"`` workers share memory, ``"process"`` workers are forked
        OS processes that ship each result back as an envelope dict.  Both
        merge per-worker cache counters back into this context.  This is
        the method a serving tier or result cache should call — envelopes
        carry no live problem instances and round-trip through JSON.

        ``trace_captures`` propagates per-query trace contexts like
        :meth:`explain_many`; the ``"process"`` backend does not carry
        traces across its fork boundary (spans stay with the parent's
        batch-level instrumentation).
        """
        from repro.engine.envelope import ExplanationEnvelope
        from repro.engine.parallel import explain_many_forked, resolve_n_jobs

        queries = list(queries)
        jobs = resolve_n_jobs(n_jobs, default=self.config.n_jobs)
        backend = backend or self.config.parallel_backend
        if backend not in ("thread", "process"):
            raise ConfigurationError(
                f"backend must be 'thread' or 'process', got {backend!r}")
        if jobs <= 1 or len(queries) <= 1 or backend == "thread":
            results = self.explain_many(queries, k=k, n_jobs=jobs,
                                        trace_captures=trace_captures)
            return [ExplanationEnvelope.from_result(result) for result in results]
        return explain_many_forked(self, queries, k, jobs)

    def run_explainer(self, explainer, query: AggregateQuery,
                      k: Optional[int] = None) -> Explanation:
        """Resolve an :class:`Explainer` against the prepared problem.

        The explainer's ``config_variant`` hook decides which pipeline
        configuration prepares its problem (MESA- asks for the no-pruning
        variant; everything else shares the default prepared state), and
        ``bind`` hands the pipeline configuration to explainers resolved
        without one — so the caller needs no per-method knowledge.
        Deterministic searches are memoised per prepared query via the
        explainer's ``cache_token`` (the pipeline's own search shares the
        cache, so ``explain`` followed by ``run_explainer("mesa")`` searches
        once).
        """
        variant = explainer.config_variant(self.config)
        pipeline = self.with_config(variant)
        explainer = explainer.bind(variant)
        state = pipeline.prepare(query)
        k = k if k is not None else self.config.k
        token = explainer.cache_token(k)
        if token is not None and token in state.search_cache:
            return state.search_cache[token]
        explanation = explainer.explain(state.problem, k=k)
        if token is not None:
            state.search_cache[token] = explanation
        return explanation

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _run_stage(self, stage: PipelineStage, state: QueryState) -> None:
        self.context.notify_stage_start(stage.name, state)
        start = time.perf_counter()
        try:
            with trace.span(f"stage.{stage.name}"):
                stage.run(state, self.context)
        finally:
            seconds = time.perf_counter() - start
            self.context.count(f"stage.{stage.name}")
            self.context.notify_stage_end(stage.name, state, seconds)

    @staticmethod
    def _query_key(query: AggregateQuery) -> object:
        try:
            hash(query)
        except TypeError:
            return id(query)
        return query
