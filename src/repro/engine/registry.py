"""The unified ``Explainer`` protocol and the string-keyed method registry.

Every explanation method — MCIMR behind MESA, the MESA- ablation and all
baselines of the paper's evaluation — is exposed behind one surface::

    explainer = get_explainer("top_k")
    explanation = explainer.explain(problem, k=5)

which is what lets the evaluation harness, the benchmarks and any serving
layer treat methods as interchangeable values instead of per-name branches.
Methods register themselves under a name with :func:`register_explainer`;
downstream code discovers them with :func:`available_explainers` and
resolves them with :func:`get_explainer`.

Two small generic hooks keep the surface uniform without special-casing:

* ``config_variant(config)`` lets an explainer ask the pipeline for a
  different preparation (MESA- prepares without pruning);
* ``max_k`` caps the explanation size the way the paper's protocol caps the
  baselines at 3 attributes.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.baselines.brute_force import brute_force
from repro.baselines.cajade import cajade
from repro.baselines.hypdb import hypdb
from repro.baselines.linear_regression import linear_regression
from repro.baselines.top_k import top_k
from repro.core.explanation import Explanation
from repro.core.mcimr import mcimr
from repro.core.problem import CorrelationExplanationProblem
from repro.exceptions import ExplanationError
from repro.engine.config import MESAConfig


class Explainer(abc.ABC):
    """One explanation method behind the uniform ``explain`` surface."""

    name: str = "explainer"

    @abc.abstractmethod
    def explain(self, problem: CorrelationExplanationProblem, k: int) -> Explanation:
        """Search the (prepared) problem for an explanation of size <= k."""

    def config_variant(self, config: MESAConfig) -> MESAConfig:
        """The pipeline configuration this method wants its problem prepared with.

        The default is the caller's configuration unchanged; override to
        request a variant (the engine memoises variant pipelines, so the
        request is cheap when repeated).
        """
        return config

    def bind(self, config: MESAConfig) -> "Explainer":
        """Adopt the pipeline's configuration for options not set explicitly.

        Called by ``ExplanationPipeline.run_explainer`` so that an explainer
        resolved without a config (``get_explainer("mesa")``) searches with
        the pipeline's knobs rather than silently falling back to defaults.
        Returns ``self``.
        """
        return self

    def cache_token(self, k: int) -> Optional[object]:
        """A hashable key identifying this (deterministic) search, or ``None``.

        When two invocations share a token on the same prepared query state
        the engine returns the memoised explanation instead of re-searching.
        ``None`` disables caching for the explainer.
        """
        return None


class MCIMRExplainer(Explainer):
    """MESA's search: MCIMR with the responsibility-test stopping criterion.

    ``config`` supplies the responsibility-test knobs; leave it ``None`` to
    adopt the pipeline's configuration when run through ``run_explainer``.
    """

    def __init__(self, config: Optional[MESAConfig] = None, name: str = "mesa"):
        self.name = name
        self.config = config

    def explain(self, problem: CorrelationExplanationProblem, k: int) -> Explanation:
        config = self.config or MESAConfig()
        return mcimr(
            problem, k=k, candidates=list(problem.candidates),
            use_responsibility_test=config.use_responsibility_test,
            responsibility_threshold=config.responsibility_threshold,
            responsibility_permutations=config.responsibility_permutations,
            method_name=self.name,
            speculative=config.speculative_search,
        )

    def bind(self, config: MESAConfig) -> "Explainer":
        if self.config is None:
            self.config = config
        return self

    def cache_token(self, k: int) -> Optional[object]:
        return ("mcimr", self.name, k, self.config or MESAConfig())


class MesaMinusExplainer(MCIMRExplainer):
    """The MESA- ablation: same search, pipeline prepared without pruning."""

    def __init__(self, config: Optional[MESAConfig] = None):
        super().__init__(config=config, name="mesa_minus")

    def config_variant(self, config: MESAConfig) -> MESAConfig:
        return config.without_pruning()


class BaselineExplainer(Explainer):
    """Adapter putting a baseline function behind the Explainer surface.

    ``max_k`` reproduces the paper's protocol of capping the baselines at
    3 explanation attributes regardless of MESA's budget.
    """

    def __init__(self, name: str, fn: Callable[..., Explanation], max_k: int = 3,
                 config: Optional[MESAConfig] = None):
        self.name = name
        self.fn = fn
        self.max_k = max_k

    def explain(self, problem: CorrelationExplanationProblem, k: int) -> Explanation:
        return self.fn(problem, k=min(k, self.max_k), candidates=list(problem.candidates))

    def cache_token(self, k: int) -> Optional[object]:
        return (self.name, min(k, self.max_k))


class BruteForceExplainer(Explainer):
    """Exhaustive search, restricted to the most relevant candidates.

    Brute force is exponential in the candidate count, so — as in the
    paper, where it only runs on the small datasets — the explainer ranks
    the candidates by individual relevance and keeps the best
    ``max_candidates`` before enumerating.  The subset size searched is
    ``min(k, max_k)``: the paper's 3-attribute cap, never exceeding the
    caller's budget.
    """

    name = "brute_force"

    def __init__(self, config: Optional[MESAConfig] = None, max_k: int = 3,
                 max_candidates: int = 30):
        self.max_k = max_k
        self.max_candidates = max_candidates

    def explain(self, problem: CorrelationExplanationProblem, k: int) -> Explanation:
        relevance = problem.score_candidates(problem.candidates)
        ranked = sorted(problem.candidates, key=relevance.__getitem__)
        restricted = ranked[:self.max_candidates]
        return brute_force(problem, k=min(k, self.max_k), candidates=restricted,
                           max_candidates=self.max_candidates)

    def cache_token(self, k: int) -> Optional[object]:
        return (self.name, min(k, self.max_k), self.max_candidates)


#: name -> factory(config=..., **options) producing an Explainer.
_FACTORIES: Dict[str, Callable[..., Explainer]] = {}


def register_explainer(name: str, factory: Callable[..., Explainer],
                       overwrite: bool = False) -> None:
    """Register an explainer factory under a method name.

    The factory must accept a ``config`` keyword (a :class:`MESAConfig` or
    ``None``) plus any method-specific options forwarded from
    :func:`get_explainer`.
    """
    if name in _FACTORIES and not overwrite:
        raise ExplanationError(
            f"An explainer named {name!r} is already registered; "
            f"pass overwrite=True to replace it"
        )
    _FACTORIES[name] = factory


def get_explainer(name: str, config: Optional[MESAConfig] = None,
                  **options) -> Explainer:
    """Resolve a registered method name to an :class:`Explainer` instance."""
    if name not in _FACTORIES:
        raise ExplanationError(
            f"Unknown explainer {name!r}; available: {available_explainers()}"
        )
    return _FACTORIES[name](config=config, **options)


def available_explainers() -> Tuple[str, ...]:
    """All registered method names, in registration order."""
    return tuple(_FACTORIES)


def _register_builtins() -> None:
    register_explainer("mesa", lambda config=None, **options:
                       MCIMRExplainer(config=config, **options))
    register_explainer("mesa_minus", lambda config=None, **options:
                       MesaMinusExplainer(config=config, **options))
    register_explainer("brute_force", lambda config=None, **options:
                       BruteForceExplainer(config=config, **options))
    for baseline_name, baseline_fn in (("top_k", top_k),
                                       ("linear_regression", linear_regression),
                                       ("hypdb", hypdb),
                                       ("cajade", cajade)):
        def factory(config=None, _fn=baseline_fn, _name=baseline_name, **options):
            return BaselineExplainer(_name, _fn, config=config, **options)

        register_explainer(baseline_name, factory)


_register_builtins()
