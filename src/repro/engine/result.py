"""The engine's result object for one explained query.

:class:`ExplanationResult` carries the explanation plus every intermediate
artefact (pruning report, selection-bias reports, the problem instance) so
that the benchmark harness and the unexplained-subgroup analysis can reuse
them without re-running the pipeline.  ``repro.mesa.system.MESAResult`` is
an alias of this class for backward compatibility.

For results that must cross a process boundary (a result cache, a serving
tier, a worker pool), convert to a JSON-safe
:class:`~repro.engine.envelope.ExplanationEnvelope` with
:meth:`ExplanationResult.to_envelope` — the envelope drops the live problem
instance and keeps only plain data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.candidates import CandidateSet
from repro.core.explanation import Explanation
from repro.core.problem import CorrelationExplanationProblem
from repro.core.pruning import PruningResult
from repro.missingness.ipw import IPWWeights
from repro.missingness.recoverability import RecoverabilityReport
from repro.query.aggregate_query import AggregateQuery


@dataclass
class ExplanationResult:
    """Everything the engine produces for one query."""

    query: AggregateQuery
    explanation: Explanation
    candidate_set: CandidateSet
    pruning: PruningResult
    selection_bias_reports: List[RecoverabilityReport] = field(default_factory=list)
    ipw_weights: Dict[str, IPWWeights] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    problem: Optional[CorrelationExplanationProblem] = None
    n_candidates_after_pruning: int = 0

    @property
    def attributes(self) -> Tuple[str, ...]:
        """The selected explanation attributes."""
        return self.explanation.attributes

    @property
    def explainability(self) -> float:
        """``I(O;T | E, C)`` of the returned explanation."""
        return self.explanation.explainability

    def biased_attributes(self) -> List[str]:
        """Candidates for which selection bias was detected."""
        return [report.attribute for report in self.selection_bias_reports
                if report.selection_bias]

    def total_runtime(self) -> float:
        """Total wall-clock time of the pipeline in seconds."""
        return sum(self.timings.values())

    def to_envelope(self) -> "ExplanationEnvelope":
        """The JSON-serializable envelope of this result."""
        from repro.engine.envelope import ExplanationEnvelope

        return ExplanationEnvelope.from_result(self)
