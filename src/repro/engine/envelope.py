"""JSON-serializable result envelopes for batch and serving workloads.

An :class:`ExplanationEnvelope` is the process-boundary form of an
explanation result: unlike :class:`~repro.engine.result.ExplanationResult`
it carries no live problem instance, table or weight vectors — only plain
data (strings, numbers, dicts, tuples) — so it survives
``json.dumps``/``json.loads``, a result cache, or a queue between a worker
and a serving tier.  ``to_dict``/``from_dict`` round-trip exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.core.explanation import Explanation
from repro.exceptions import ExplanationError
from repro.query.aggregate_query import AggregateQuery

#: Bumped whenever the envelope's dict layout changes incompatibly.
ENVELOPE_SCHEMA_VERSION = 1


def query_descriptor(query: AggregateQuery) -> Dict[str, Optional[str]]:
    """A plain-string description of an aggregate query (one-way)."""
    return {
        "exposure": query.exposure,
        "outcome": query.outcome,
        "aggregate": query.aggregate,
        "context": repr(query.context),
        "table_name": query.table_name,
        "name": query.name,
        "sql": query.to_sql(),
    }


@dataclass(frozen=True)
class ExplanationEnvelope:
    """A serializable explanation result.

    Attributes
    ----------
    explanation:
        The :class:`Explanation` (fully reconstructed on ``from_dict``).
    query:
        Plain-string descriptor of the explained query (see
        :func:`query_descriptor`); the live predicate object is not
        serialized.
    timings:
        Per-phase wall-clock seconds of the producing pipeline run.
    pruning_kept / pruning_dropped:
        The pruning report: surviving candidates and ``attribute -> rule``
        for the dropped ones.
    biased_attributes:
        Attributes for which selection bias was detected (IPW-corrected).
    extracted_attributes:
        Selected attributes that came from the knowledge source.
    n_candidates:
        Candidate-set size after pruning.
    schema_version:
        Layout version for forward-compatible consumers.
    """

    explanation: Explanation
    query: Dict[str, Optional[str]] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    pruning_kept: Tuple[str, ...] = ()
    pruning_dropped: Dict[str, str] = field(default_factory=dict)
    biased_attributes: Tuple[str, ...] = ()
    extracted_attributes: Tuple[str, ...] = ()
    n_candidates: int = 0
    schema_version: int = ENVELOPE_SCHEMA_VERSION

    def __hash__(self) -> int:
        # The generated frozen-dataclass hash would choke on the dict
        # fields; hash the canonical JSON rendering instead so envelopes
        # work as cache keys and in sets.
        return hash(self.to_json(sort_keys=True))

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_result(cls, result) -> "ExplanationEnvelope":
        """Build the envelope of an :class:`ExplanationResult`."""
        extracted = tuple(a for a in result.explanation.attributes
                          if result.candidate_set.is_extracted(a))
        return cls(
            explanation=result.explanation,
            query=query_descriptor(result.query),
            timings=dict(result.timings),
            pruning_kept=tuple(result.pruning.kept),
            pruning_dropped=dict(result.pruning.dropped),
            biased_attributes=tuple(result.biased_attributes()),
            extracted_attributes=extracted,
            n_candidates=result.n_candidates_after_pruning,
        )

    @classmethod
    def from_explanation(cls, explanation: Explanation,
                         query: Optional[AggregateQuery] = None,
                         timings: Optional[Mapping[str, float]] = None,
                         ) -> "ExplanationEnvelope":
        """Wrap a bare :class:`Explanation` (e.g. from a baseline explainer)."""
        return cls(
            explanation=explanation,
            query=query_descriptor(query) if query is not None else {},
            timings=dict(timings or {}),
        )

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """Plain-data rendering; safe for ``json.dumps``."""
        explanation = self.explanation
        return {
            "schema_version": self.schema_version,
            "query": dict(self.query),
            "explanation": {
                "method": explanation.method,
                "attributes": list(explanation.attributes),
                "explainability": float(explanation.explainability),
                "baseline_cmi": float(explanation.baseline_cmi),
                "objective": float(explanation.objective),
                "responsibilities": {name: float(value) for name, value
                                     in explanation.responsibilities.items()},
                "runtime_seconds": float(explanation.runtime_seconds),
                "trace": [[attribute, float(score)]
                          for attribute, score in explanation.trace],
            },
            "timings": {name: float(seconds) for name, seconds in self.timings.items()},
            "pruning": {"kept": list(self.pruning_kept),
                        "dropped": dict(self.pruning_dropped)},
            "biased_attributes": list(self.biased_attributes),
            "extracted_attributes": list(self.extracted_attributes),
            "n_candidates": self.n_candidates,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ExplanationEnvelope":
        """Reconstruct an envelope from :meth:`to_dict` output.

        The payload's ``schema_version`` (absent means 1, the pre-field
        layout) must be one this build can read; durably stored envelopes
        written by a *newer* build raise a clear error instead of being
        silently misparsed.
        """
        version = data.get("schema_version", 1)
        if not isinstance(version, int) or isinstance(version, bool) \
                or not 1 <= version <= ENVELOPE_SCHEMA_VERSION:
            raise ExplanationError(
                f"unsupported envelope schema_version {version!r}: this "
                f"build reads versions 1..{ENVELOPE_SCHEMA_VERSION}; the "
                "envelope was likely written by a newer build")
        raw = data.get("explanation", {})
        explanation = Explanation(
            attributes=tuple(raw.get("attributes", ())),
            explainability=float(raw.get("explainability", 0.0)),
            baseline_cmi=float(raw.get("baseline_cmi", 0.0)),
            objective=float(raw.get("objective", 0.0)),
            responsibilities={str(k): float(v)
                              for k, v in raw.get("responsibilities", {}).items()},
            method=str(raw.get("method", "mcimr")),
            runtime_seconds=float(raw.get("runtime_seconds", 0.0)),
            trace=tuple((str(attribute), float(score))
                        for attribute, score in raw.get("trace", ())),
        )
        pruning = data.get("pruning", {})
        return cls(
            explanation=explanation,
            query={str(k): v for k, v in data.get("query", {}).items()},
            timings={str(k): float(v) for k, v in data.get("timings", {}).items()},
            pruning_kept=tuple(pruning.get("kept", ())),
            pruning_dropped={str(k): str(v)
                             for k, v in pruning.get("dropped", {}).items()},
            biased_attributes=tuple(data.get("biased_attributes", ())),
            extracted_attributes=tuple(data.get("extracted_attributes", ())),
            n_candidates=int(data.get("n_candidates", 0)),
            schema_version=version,
        )

    def to_json(self, **kwargs) -> str:
        """``json.dumps(self.to_dict())``."""
        return json.dumps(self.to_dict(), **kwargs)

    def canonical_dict(self) -> Dict[str, object]:
        """The dict rendering with the run-dependent timings nulled out.

        Two runs of the same query produce equal canonical dicts exactly
        when they found the same explanation — wall-clock timings are the
        only envelope fields that legitimately differ between runs, so
        equality tests across serving tiers (local vs. cluster worker vs. a
        fresh engine) compare this form.
        """
        data = self.to_dict()
        data["timings"] = None
        data["explanation"]["runtime_seconds"] = None
        return data

    def canonical_json(self) -> str:
        """Sorted-key JSON of :meth:`canonical_dict` (byte-comparable)."""
        return json.dumps(self.canonical_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "ExplanationEnvelope":
        """Parse an envelope serialized with :meth:`to_json`."""
        return cls.from_dict(json.loads(payload))
