"""The evaluation queries.

* :func:`representative_queries` — the 14 representative queries of Table 2,
  each with its planted ground-truth confounders (derived from the
  structural models in the dataset generators, and therefore known exactly
  here, unlike the paper which relies on external literature).
* :func:`random_queries` — the random-query generator of Section 5.1 (pick a
  KG-extraction column as the exposure, a numeric attribute as the outcome,
  and a random WHERE clause selecting at least 10 % of the tuples).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.query.aggregate_query import AggregateQuery
from repro.table.expressions import Eq, TRUE
from repro.table.table import Table
from repro.utils.rng import SeedLike, make_rng

#: Groups of attribute names considered equivalent when scoring an
#: explanation against the ground truth (DBpedia-style graphs carry both a
#: statistic and its rank, and either one controls the same confounder).
EQUIVALENCE_GROUPS: Tuple[FrozenSet[str], ...] = (
    frozenset({"HDI", "HDI Rank"}),
    frozenset({"GDP", "GDP Rank", "GDP Nominal"}),
    frozenset({"Gini", "Gini Rank"}),
    frozenset({"Population Census", "Population Estimate", "Population Rank"}),
    frozenset({"Population Total", "Population Urban", "Population Metropolitan",
               "Population Ranking"}),
    frozenset({"State Population estimation", "State Population Rank",
               "State Population Urban"}),
    frozenset({"Year Low F", "Year Avg F", "December Low F"}),
    frozenset({"Precipitation Days", "Year Snow", "Year UV", "December percent sun"}),
    frozenset({"State Year Low F", "State Record Low F", "State Dec Record Low F",
               "State Year Snow", "State Precipitation Days"}),
    frozenset({"Fleet size", "Num of Employees", "Revenue"}),
    frozenset({"Equity", "Net Income"}),
    frozenset({"Net Worth", "Years Active", "ActiveSince", "Age"}),
    frozenset({"Cups", "Total Cups", "National Cups"}),
)


def expand_equivalents(attribute: str) -> FrozenSet[str]:
    """All attribute names considered equivalent to ``attribute``."""
    for group in EQUIVALENCE_GROUPS:
        if attribute in group:
            return group
    return frozenset({attribute})


@dataclass(frozen=True)
class RepresentativeQuery:
    """One evaluation query plus its planted ground truth.

    Attributes
    ----------
    query_id:
        Identifier matching Table 2 (``"SO-Q1"``, ``"Flights-Q3"``, ...).
    dataset:
        Name of the dataset the query runs over.
    query:
        The aggregate query itself.
    ground_truth:
        The planted confounders; each entry is a frozenset of acceptable
        (equivalent) attribute names, and an explanation "covers" the entry
        if it contains any of them.
    description:
        One-line description mirroring the paper's Table 2 row.
    """

    query_id: str
    dataset: str
    query: AggregateQuery
    ground_truth: Tuple[FrozenSet[str], ...]
    description: str

    def coverage(self, attributes: Sequence[str]) -> float:
        """Fraction of ground-truth confounders covered by ``attributes``."""
        if not self.ground_truth:
            return 0.0
        attribute_set = set(attributes)
        hit = sum(1 for group in self.ground_truth if attribute_set & group)
        return hit / len(self.ground_truth)

    def precision(self, attributes: Sequence[str]) -> float:
        """Fraction of ``attributes`` that belong to some ground-truth group."""
        attributes = list(attributes)
        if not attributes:
            return 0.0
        acceptable = set()
        for group in self.ground_truth:
            acceptable |= group
        hits = sum(1 for attribute in attributes if attribute in acceptable)
        return hits / len(attributes)


def _gt(*names: str) -> Tuple[FrozenSet[str], ...]:
    return tuple(expand_equivalents(name) for name in names)


def representative_queries(dataset: Optional[str] = None) -> List[RepresentativeQuery]:
    """The 14 representative queries of Table 2 (optionally for one dataset)."""
    queries = [
        # ----------------------------- Stack Overflow ----------------------
        RepresentativeQuery(
            query_id="SO-Q1", dataset="SO",
            query=AggregateQuery(exposure="Country", outcome="Salary", aggregate="avg",
                                 table_name="SO", name="SO-Q1"),
            ground_truth=_gt("HDI", "Gini", "GDP"),
            description="Average salary per country",
        ),
        RepresentativeQuery(
            query_id="SO-Q2", dataset="SO",
            query=AggregateQuery(exposure="Continent", outcome="Salary", aggregate="avg",
                                 table_name="SO", name="SO-Q2"),
            ground_truth=_gt("GDP", "HDI"),
            description="Average salary per continent",
        ),
        RepresentativeQuery(
            query_id="SO-Q3", dataset="SO",
            query=AggregateQuery(exposure="Country", outcome="Salary", aggregate="avg",
                                 context=Eq("Continent", "Europe"), table_name="SO",
                                 name="SO-Q3"),
            ground_truth=_gt("GDP", "Gini", "Population Census"),
            description="Average salary per country in Europe",
        ),
        # ----------------------------- Flights ------------------------------
        RepresentativeQuery(
            query_id="Flights-Q1", dataset="Flights",
            query=AggregateQuery(exposure="Origin_City", outcome="Departure_Delay",
                                 aggregate="avg", table_name="Flights", name="Flights-Q1"),
            ground_truth=_gt("Precipitation Days", "Year Low F", "Population Metropolitan"),
            description="Average delay per origin city",
        ),
        RepresentativeQuery(
            query_id="Flights-Q2", dataset="Flights",
            query=AggregateQuery(exposure="Origin_State", outcome="Departure_Delay",
                                 aggregate="avg", table_name="Flights", name="Flights-Q2"),
            ground_truth=_gt("State Year Snow", "State Population estimation",
                             "Year Low F", "Population Metropolitan"),
            description="Average delay per origin state",
        ),
        RepresentativeQuery(
            query_id="Flights-Q3", dataset="Flights",
            query=AggregateQuery(exposure="Origin_City", outcome="Departure_Delay",
                                 aggregate="avg", context=Eq("Origin_State", "California"),
                                 table_name="Flights", name="Flights-Q3"),
            ground_truth=_gt("Population Metropolitan", "Density"),
            description="Average delay per origin city in California",
        ),
        RepresentativeQuery(
            query_id="Flights-Q4", dataset="Flights",
            query=AggregateQuery(exposure="Origin_State", outcome="Departure_Delay",
                                 aggregate="avg",
                                 context=Eq("Airline", "Southwest Airlines"),
                                 table_name="Flights", name="Flights-Q4"),
            ground_truth=_gt("State Population estimation", "State Year Snow"),
            description="Average delay per origin state for one airline",
        ),
        RepresentativeQuery(
            query_id="Flights-Q5", dataset="Flights",
            query=AggregateQuery(exposure="Airline", outcome="Departure_Delay",
                                 aggregate="avg", table_name="Flights", name="Flights-Q5"),
            ground_truth=_gt("Equity", "Fleet size"),
            description="Average delay per airline",
        ),
        # ----------------------------- Covid-19 -----------------------------
        RepresentativeQuery(
            query_id="Covid-Q1", dataset="Covid-19",
            query=AggregateQuery(exposure="Country", outcome="Deaths_per_100_cases",
                                 aggregate="avg", table_name="Covid-19", name="Covid-Q1"),
            ground_truth=_gt("HDI", "GDP", "Confirmed_cases"),
            description="Deaths per 100 cases per country",
        ),
        RepresentativeQuery(
            query_id="Covid-Q2", dataset="Covid-19",
            query=AggregateQuery(exposure="Country", outcome="Deaths_per_100_cases",
                                 aggregate="avg", context=Eq("WHO_Region", "Europe"),
                                 table_name="Covid-19", name="Covid-Q2"),
            ground_truth=_gt("GDP", "HDI", "Density", "Confirmed_cases"),
            description="Deaths per 100 cases per country in Europe",
        ),
        RepresentativeQuery(
            query_id="Covid-Q3", dataset="Covid-19",
            query=AggregateQuery(exposure="WHO_Region", outcome="Deaths_per_100_cases",
                                 aggregate="avg", table_name="Covid-19", name="Covid-Q3"),
            ground_truth=_gt("Density", "HDI", "GDP", "Confirmed_cases"),
            description="Average deaths per WHO region",
        ),
        # ----------------------------- Forbes -------------------------------
        RepresentativeQuery(
            query_id="Forbes-Q1", dataset="Forbes",
            query=AggregateQuery(exposure="Name", outcome="Pay", aggregate="avg",
                                 context=Eq("Category", "Actors"), table_name="Forbes",
                                 name="Forbes-Q1"),
            ground_truth=_gt("Net Worth", "Gender"),
            description="Pay of actors",
        ),
        RepresentativeQuery(
            query_id="Forbes-Q2", dataset="Forbes",
            query=AggregateQuery(exposure="Name", outcome="Pay", aggregate="avg",
                                 context=Eq("Category", "Directors/Producers"),
                                 table_name="Forbes", name="Forbes-Q2"),
            ground_truth=_gt("Net Worth", "Awards"),
            description="Pay of directors and producers",
        ),
        RepresentativeQuery(
            query_id="Forbes-Q3", dataset="Forbes",
            query=AggregateQuery(exposure="Name", outcome="Pay", aggregate="avg",
                                 context=Eq("Category", "Athletes"), table_name="Forbes",
                                 name="Forbes-Q3"),
            ground_truth=_gt("Cups", "Draft Pick"),
            description="Pay of athletes",
        ),
    ]
    if dataset is not None:
        queries = [query for query in queries if query.dataset == dataset]
    return queries


def random_queries(table: Table, exposure_columns: Sequence[str], n_queries: int = 10,
                   seed: SeedLike = 0, min_context_fraction: float = 0.1,
                   outcome_columns: Optional[Sequence[str]] = None) -> List[AggregateQuery]:
    """The random-query generator of Section 5.1.

    ``T`` is drawn from ``exposure_columns`` (the columns used for KG
    extraction), ``O`` from the numeric columns, and a random equality WHERE
    clause is added when it keeps at least ``min_context_fraction`` of the
    tuples (otherwise the query is generated without a context).
    """
    rng = make_rng(seed)
    numeric = outcome_columns or table.schema.numeric_names()
    queries: List[AggregateQuery] = []
    attempts = 0
    while len(queries) < n_queries and attempts < n_queries * 30:
        attempts += 1
        exposure = str(rng.choice(list(exposure_columns)))
        outcome_candidates = [name for name in numeric if name != exposure]
        if not outcome_candidates:
            break
        outcome = str(rng.choice(outcome_candidates))
        context = TRUE
        categorical = [name for name in table.schema.categorical_names()
                       if name not in (exposure, outcome)]
        if categorical and rng.random() < 0.8:
            attribute = str(rng.choice(categorical))
            values = table.column(attribute).unique()
            if values:
                value = values[int(rng.integers(0, len(values)))]
                candidate_context = Eq(attribute, value)
                kept = int(candidate_context.mask(table).sum())
                if kept >= min_context_fraction * table.n_rows:
                    context = candidate_context
        queries.append(AggregateQuery(exposure=exposure, outcome=outcome, aggregate="avg",
                                      context=context, table_name=table.name,
                                      name=f"random-{len(queries) + 1}"))
    return queries
