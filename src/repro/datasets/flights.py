"""Synthetic US flight-delay dataset.

One row per flight with the columns the paper's Flights queries use:
``Airline``, ``Origin_City``, ``Origin_State``, ``Destination_City``,
``Destination_State``, ``Month``, ``Day``, ``Distance``, ``Security_Delay``,
``Cancelled`` and the outcome ``Departure_Delay`` (plus ``Arrival_Delay``).

Delays are generated from facts held in the knowledge graph: origin-city
weather (precipitation days, snowfall, winter temperature), origin-city
congestion (metropolitan population), and airline operational scale (fleet
size, equity).  Those drivers are not columns of the table, so the planted
explanations of the paper's Flights queries (weather + population + airline)
are only reachable through KG extraction.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro import world
from repro.table.table import Table
from repro.utils.rng import SeedLike, make_rng


def expected_departure_delay(city: world.CityFacts, airline: world.AirlineFacts,
                             month: int) -> float:
    """Structural (noise-free) expected departure delay in minutes.

    Weather drives delays (rainy / snowy / cold cities, worse in winter),
    congestion drives delays (large metropolitan areas), and airline scale
    drives delays (big fleets are harder to keep on schedule; well-funded
    airlines recover faster).
    """
    winter = month in (12, 1, 2)
    weather = 0.12 * city.precipitation_days + 0.28 * city.year_snow_inches * (1.6 if winter else 0.6)
    cold = max(0.0, 45.0 - city.year_low_f) * 0.25
    congestion = 2.2 * np.log1p(city.metro_population_thousands / 100.0)
    airline_effect = 0.02 * airline.fleet_size - 1.1 * airline.equity_billion
    return float(max(0.0, 3.0 + weather + cold + congestion + airline_effect))


def generate_flights_dataset(n_rows: int = 20000, seed: SeedLike = 13,
                             noise_scale: float = 7.0) -> Table:
    """Generate the synthetic flight-delay table.

    Parameters
    ----------
    n_rows:
        Number of flights; the paper's dataset has 5.8M rows — the scaling
        benchmark (Figure 5) increases this parameter instead of shipping a
        multi-gigabyte table.
    seed:
        Generator seed.
    noise_scale:
        Standard deviation (minutes) of the idiosyncratic delay noise.
    """
    rng = make_rng(seed)
    cities = world.cities()
    airlines = world.airlines()
    state_of = {city.name: city.state for city in cities}

    # Busier airports appear more often, proportional to metro population.
    city_weights = np.array([city.metro_population_thousands for city in cities])
    city_weights = city_weights / city_weights.sum()
    airline_weights = np.array([airline.fleet_size for airline in airlines], dtype=np.float64)
    airline_weights /= airline_weights.sum()

    rows: List[Dict[str, object]] = []
    for flight in range(n_rows):
        origin = cities[int(rng.choice(len(cities), p=city_weights))]
        destination = cities[int(rng.choice(len(cities), p=city_weights))]
        while destination.name == origin.name:
            destination = cities[int(rng.choice(len(cities), p=city_weights))]
        airline = airlines[int(rng.choice(len(airlines), p=airline_weights))]
        month = int(rng.integers(1, 13))
        day = int(rng.integers(1, 29))
        distance = float(np.clip(rng.normal(1100, 600), 100, 4800))
        delay = expected_departure_delay(origin, airline, month)
        delay += float(rng.normal(0.0, noise_scale))
        delay = max(-15.0, delay)
        security_delay = float(max(0.0, rng.normal(1.0, 2.0)))
        arrival_delay = delay + float(rng.normal(0.0, 5.0))
        cancelled = 1 if rng.random() < 0.015 else 0
        rows.append({
            "Flight": flight + 1,
            "Airline": airline.name,
            "Origin_City": origin.name,
            "Origin_State": origin.state,
            "Destination_City": destination.name,
            "Destination_State": state_of[destination.name],
            "Month": month,
            "Day": day,
            "Distance": round(distance, 1),
            "Departure_Delay": round(delay, 2),
            "Arrival_Delay": round(arrival_delay, 2),
            "Security_Delay": round(security_delay, 2),
            "Cancelled": cancelled,
        })
    return Table.from_rows(rows, name="Flights")
