"""Synthetic Covid-19 country-level dataset.

One row per country and month of 2020 with the columns used by the
paper's Covid queries: ``Country``, ``WHO_Region``, ``Month``,
``Confirmed_cases``, ``New_cases``, ``Recovered_per_100_cases``,
``Active_per_100_cases`` and the outcome ``Deaths_per_100_cases``.

The death rate is generated from country facts held in the knowledge graph
(HDI, GDP per capita, population density) plus the in-table confirmed-case
load — so the planted explanation of the Country↔death-rate correlation is
``{HDI, GDP, Confirmed_cases}``, matching Covid Q1 in Table 2 of the paper.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro import world
from repro.table.table import Table
from repro.utils.rng import SeedLike, make_rng

_MONTHS = list(range(1, 13))


def expected_death_rate(country: world.CountryFacts, confirmed_per_million: float) -> float:
    """Structural (noise-free) deaths per 100 confirmed cases.

    Lower for countries with a high HDI and GDP (better health systems),
    higher for dense countries and for a heavier confirmed-case load.
    """
    base = 9.0
    development = -14.0 * (country.hdi - 0.7) - 0.045 * country.gdp_per_capita
    density_effect = 0.0022 * min(country.density, 1500.0)
    load = 1.1 * np.log1p(confirmed_per_million / 1000.0)
    return float(max(0.2, base + development + density_effect + load))


def generate_covid_dataset(seed: SeedLike = 11, noise_scale: float = 0.9) -> Table:
    """Generate the synthetic Covid-19 table (one row per country per month)."""
    rng = make_rng(seed)
    rows: List[Dict[str, object]] = []
    for country in world.countries():
        # Case load grows over the year and scales with density and population.
        base_rate = rng.uniform(800, 12000)  # confirmed per million over the year
        for month in _MONTHS:
            growth = month / len(_MONTHS)
            confirmed_per_million = base_rate * growth * (1.0 + 0.0004 * country.density)
            confirmed = int(confirmed_per_million * country.population_millions)
            new_cases = int(confirmed * rng.uniform(0.1, 0.35))
            death_rate = expected_death_rate(country, confirmed_per_million)
            death_rate += float(rng.normal(0.0, noise_scale))
            death_rate = max(0.05, death_rate)
            recovered = float(np.clip(rng.normal(70.0, 12.0), 5.0, 98.0))
            active = max(0.0, 100.0 - recovered - death_rate)
            rows.append({
                "Country": country.name,
                "WHO_Region": country.who_region,
                "Month": month,
                "Confirmed_cases": confirmed,
                "New_cases": new_cases,
                "Deaths_per_100_cases": round(death_rate, 3),
                "Recovered_per_100_cases": round(recovered, 3),
                "Active_per_100_cases": round(active, 3),
            })
    return Table.from_rows(rows, name="Covid-19")
