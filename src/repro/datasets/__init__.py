"""Synthetic versions of the paper's four evaluation datasets.

The paper evaluates on Stack Overflow's developer survey, a Covid-19
country-level dataset, the US flight-delay dataset and the Forbes celebrity
earnings dataset.  Those CSVs are not available offline, so this package
generates seeded synthetic equivalents whose outcomes are *driven by* the
properties stored in the synthetic knowledge graph (HDI, GDP, Gini, city
climate, airline fleet size, celebrity net worth, ...).  Planting the
confounders this way gives every evaluation query a known ground truth —
which the quality benchmarks (Tables 2 and 3) score against.
"""

from repro.datasets.covid import generate_covid_dataset
from repro.datasets.flights import generate_flights_dataset
from repro.datasets.forbes import generate_forbes_dataset
from repro.datasets.stackoverflow import generate_so_dataset
from repro.datasets.registry import DatasetBundle, load_dataset, DATASET_NAMES
from repro.datasets.queries import (
    RepresentativeQuery,
    random_queries,
    representative_queries,
)

__all__ = [
    "generate_covid_dataset",
    "generate_flights_dataset",
    "generate_forbes_dataset",
    "generate_so_dataset",
    "DatasetBundle",
    "load_dataset",
    "DATASET_NAMES",
    "RepresentativeQuery",
    "random_queries",
    "representative_queries",
]
