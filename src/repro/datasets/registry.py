"""Dataset bundles: table + knowledge graph + extraction specification.

A :class:`DatasetBundle` packages everything MESA needs to run on one of the
four evaluation datasets: the generated table, the synthetic knowledge
graph, which columns to extract from (and against which entity class), and
the representative queries of Table 2 for that dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets.covid import generate_covid_dataset
from repro.datasets.flights import generate_flights_dataset
from repro.datasets.forbes import generate_forbes_dataset
from repro.datasets.queries import RepresentativeQuery, representative_queries
from repro.datasets.stackoverflow import generate_so_dataset
from repro.exceptions import ConfigurationError
from repro.kg.graph import KnowledgeGraph
from repro.kg.synthetic import SyntheticKGConfig, build_world_knowledge_graph
from repro.table.table import Table

DATASET_NAMES: Tuple[str, ...] = ("SO", "Covid-19", "Flights", "Forbes")


@dataclass(frozen=True)
class ExtractionSpec:
    """How one column of a dataset is linked against the knowledge graph.

    Attributes
    ----------
    column:
        Column of the table whose values are linked to KG entities.
    entity_class:
        Entity class the linker is restricted to (``None`` = whole graph).
    prefix:
        Prefix prepended to the extracted attribute names (used to keep the
        city-, state- and airline-derived attributes of Flights apart).
    """

    column: str
    entity_class: Optional[str] = None
    prefix: str = ""


@dataclass
class DatasetBundle:
    """A dataset, its knowledge source and its evaluation queries."""

    name: str
    table: Table
    knowledge_graph: KnowledgeGraph
    extraction_specs: Tuple[ExtractionSpec, ...]
    queries: List[RepresentativeQuery] = field(default_factory=list)
    id_columns: Tuple[str, ...] = ()

    @property
    def n_rows(self) -> int:
        """Number of rows of the dataset table."""
        return self.table.n_rows

    def extraction_columns(self) -> List[str]:
        """The columns used for extraction (Table 1's last column)."""
        return [spec.column for spec in self.extraction_specs]


_EXTRACTION_SPECS: Dict[str, Tuple[ExtractionSpec, ...]] = {
    "SO": (ExtractionSpec(column="Country", entity_class="Country"),),
    "Covid-19": (ExtractionSpec(column="Country", entity_class="Country"),),
    "Flights": (
        ExtractionSpec(column="Origin_City", entity_class="City"),
        ExtractionSpec(column="Origin_State", entity_class="State", prefix="State "),
        ExtractionSpec(column="Airline", entity_class="Airline"),
    ),
    "Forbes": (ExtractionSpec(column="Name", entity_class="Person"),),
}

#: Columns excluded from the candidate set: row identifiers, plus columns
#: that are alternative measurements of a query outcome (``Arrival_Delay``
#: is the same delay as ``Departure_Delay`` measured at the other end of the
#: flight and would trivially "explain" it).
_ID_COLUMNS: Dict[str, Tuple[str, ...]] = {
    "SO": ("Respondent",),
    "Covid-19": (),
    "Flights": ("Flight", "Arrival_Delay"),
    "Forbes": (),
}


def load_dataset(name: str, seed: int = 7, n_rows: Optional[int] = None,
                 kg_config: Optional[SyntheticKGConfig] = None,
                 knowledge_graph: Optional[KnowledgeGraph] = None) -> DatasetBundle:
    """Load one of the four evaluation datasets as a bundle.

    Parameters
    ----------
    name:
        One of ``"SO"``, ``"Covid-19"``, ``"Flights"``, ``"Forbes"``.
    seed:
        Seed forwarded to the dataset generator (and the KG builder unless a
        graph or config is supplied).
    n_rows:
        Number of rows for the row-parameterised datasets (SO and Flights);
        ignored for Covid-19 and Forbes, whose size is determined by the
        world model.
    kg_config:
        Configuration of the synthetic KG builder.
    knowledge_graph:
        An already-built graph to share across bundles (building the graph
        once and reusing it is what the benchmark harness does).
    """
    if name not in DATASET_NAMES:
        raise ConfigurationError(f"Unknown dataset {name!r}; available: {DATASET_NAMES}")
    if name == "SO":
        table = generate_so_dataset(n_rows=n_rows or 4000, seed=seed)
    elif name == "Covid-19":
        table = generate_covid_dataset(seed=seed)
    elif name == "Flights":
        table = generate_flights_dataset(n_rows=n_rows or 20000, seed=seed)
    else:
        table = generate_forbes_dataset(seed=seed)
    if knowledge_graph is None:
        knowledge_graph = build_world_knowledge_graph(kg_config or SyntheticKGConfig(seed=seed))
    return DatasetBundle(
        name=name,
        table=table,
        knowledge_graph=knowledge_graph,
        extraction_specs=_EXTRACTION_SPECS[name],
        queries=representative_queries(dataset=name),
        id_columns=_ID_COLUMNS[name],
    )


def load_all_datasets(seed: int = 7, n_rows: Optional[Dict[str, int]] = None,
                      kg_config: Optional[SyntheticKGConfig] = None) -> Dict[str, DatasetBundle]:
    """Load all four datasets sharing a single knowledge graph."""
    graph = build_world_knowledge_graph(kg_config or SyntheticKGConfig(seed=seed))
    n_rows = n_rows or {}
    return {name: load_dataset(name, seed=seed, n_rows=n_rows.get(name),
                               knowledge_graph=graph)
            for name in DATASET_NAMES}
