"""Synthetic Forbes celebrity-earnings dataset.

One row per celebrity and year (2005-2015, like the original dataset) with
the columns used by the paper's Forbes queries: ``Name``, ``Category``,
``Year`` and the outcome ``Pay`` (annual earnings in $M).

Earnings are generated per category from career facts stored in the
knowledge graph:

* actors — net worth (a proxy for experience/stardom) with a gender pay gap;
* directors / producers — net worth and awards;
* athletes — cups won, draft pick and years active;
* musicians — net worth only (a control category with a single driver).

The drivers are not columns of this table, so all Forbes explanations must
come from KG extraction, and the per-category structure reproduces the heavy
property sparsity the paper reports for Forbes (DBpedia describes an actor
and an athlete with different attributes).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro import world
from repro.table.table import Table
from repro.utils.rng import SeedLike, make_rng

_YEARS = list(range(2005, 2016))


def expected_pay(celebrity: world.CelebrityFacts) -> float:
    """Structural (noise-free) annual pay in $M for one celebrity."""
    if celebrity.category == "Actors":
        pay = 6.0 + 0.055 * celebrity.net_worth_million
        pay += 14.0 if celebrity.gender == "Male" else 0.0
    elif celebrity.category == "Directors/Producers":
        pay = 8.0 + 0.009 * celebrity.net_worth_million + 1.6 * (celebrity.awards or 0)
    elif celebrity.category == "Athletes":
        cups = celebrity.cups or 0
        draft = celebrity.draft_pick
        draft_bonus = max(0.0, (210 - draft) * 0.06) if draft is not None else 6.0
        pay = 5.0 + 1.3 * cups + draft_bonus + 0.4 * celebrity.years_active
    else:  # Musicians and anything else
        pay = 10.0 + 0.04 * celebrity.net_worth_million
    return float(max(1.0, pay))


def generate_forbes_dataset(seed: SeedLike = 17, noise_scale: float = 6.0) -> Table:
    """Generate the synthetic Forbes table (one row per celebrity per year)."""
    rng = make_rng(seed)
    rows: List[Dict[str, object]] = []
    for celebrity in world.celebrities():
        base = expected_pay(celebrity)
        for year in _YEARS:
            # Careers drift mildly over the decade.
            drift = 1.0 + 0.02 * (year - 2010) + float(rng.normal(0.0, 0.05))
            pay = max(0.5, base * drift + float(rng.normal(0.0, noise_scale)))
            rows.append({
                "Name": celebrity.name,
                "Category": celebrity.category,
                "Year": year,
                "Pay": round(pay, 2),
            })
    return Table.from_rows(rows, name="Forbes")
