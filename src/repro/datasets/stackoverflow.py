"""Synthetic Stack Overflow developer-survey dataset.

One row per survey respondent with the columns the paper's SO queries use:
``Country``, ``Continent``, ``Gender``, ``Age``, ``DevType``, ``Hobby``,
``YearsCode``, ``EdLevel`` and the outcome ``Salary``.

The salary is *generated from* country-level economic facts of the world
model (GDP per capita, HDI, Gini, developer-population scarcity) plus
individual factors (experience, developer type, a gender pay gap) and noise.
Crucially, the economic drivers are **not** columns of this table — they
live in the knowledge graph — so explaining the Country↔Salary correlation
requires the KG extraction pipeline, exactly as in Example 2.1 of the paper.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro import world
from repro.table.table import Table
from repro.utils.rng import SeedLike, make_rng

_DEV_TYPES = ["Back-end", "Front-end", "Full-stack", "Data scientist", "DevOps", "Mobile",
              "Embedded", "QA"]
_DEV_TYPE_PREMIUM = {
    "Back-end": 4.0, "Front-end": 0.0, "Full-stack": 3.0, "Data scientist": 8.0,
    "DevOps": 6.0, "Mobile": 2.0, "Embedded": 3.0, "QA": -4.0,
}
_ED_LEVELS = ["Secondary", "Bachelor", "Master", "PhD"]
_ED_PREMIUM = {"Secondary": -3.0, "Bachelor": 0.0, "Master": 4.0, "PhD": 7.0}

# Sampling weight of each country: roughly proportional to the size of its
# developer population in the real survey (US / India / Germany heavy).
_COUNTRY_WEIGHTS: Dict[str, float] = {
    "United States": 16.0, "India": 11.0, "Germany": 7.0, "United Kingdom": 6.0,
    "Canada": 4.0, "France": 4.0, "Brazil": 4.0, "Poland": 3.5, "Netherlands": 3.0,
    "Spain": 3.0, "Italy": 3.0, "Russia": 3.0, "Australia": 2.5, "Sweden": 2.0,
    "Switzerland": 1.5, "Israel": 1.5, "Ukraine": 2.0, "Romania": 1.5, "China": 2.5,
    "Japan": 1.5, "Mexico": 2.0, "Argentina": 1.5, "South Africa": 1.2, "Nigeria": 1.5,
    "Pakistan": 1.5, "Turkey": 1.5, "Indonesia": 1.2, "Vietnam": 1.0, "Egypt": 1.0,
    "Kenya": 0.7, "Greece": 1.0, "Portugal": 1.0, "Czech Republic": 1.2, "Austria": 1.0,
    "Ireland": 1.0, "Denmark": 1.0, "Norway": 1.0, "Bangladesh": 0.8, "Colombia": 0.8,
    "New Zealand": 0.8, "South Korea": 1.0, "Singapore": 0.8, "Morocco": 0.5,
    "Ethiopia": 0.3, "Iran": 1.0,
}


def expected_salary(country: world.CountryFacts, years_code: float, dev_type: str,
                    ed_level: str, gender: str) -> float:
    """The structural (noise-free) salary of a developer, in k$/year.

    This function *is* the planted ground truth: country economics (GDP, HDI,
    Gini), developer-population scarcity, experience, role, education and a
    gender gap.  Tests and the evaluation oracle rely on it.
    """
    base = 12.0
    economy = 0.85 * country.gdp_per_capita + 30.0 * (country.hdi - 0.6) \
        - 0.25 * (country.gini - 30.0)
    scarcity = -0.012 * country.population_millions
    individual = 0.9 * years_code + _DEV_TYPE_PREMIUM[dev_type] + _ED_PREMIUM[ed_level]
    gender_gap = 3.5 if gender == "Male" else 0.0
    return max(4.0, base + economy + scarcity + individual + gender_gap)


def generate_so_dataset(n_rows: int = 4000, seed: SeedLike = 7,
                        noise_scale: float = 7.0) -> Table:
    """Generate the synthetic Stack Overflow survey table.

    Parameters
    ----------
    n_rows:
        Number of respondents.
    seed:
        Seed of the generator (the default reproduces the benchmark numbers).
    noise_scale:
        Standard deviation (k$) of the idiosyncratic salary noise.
    """
    rng = make_rng(seed)
    facts = world.country_index()
    names = [name for name in _COUNTRY_WEIGHTS if name in facts]
    weights = np.array([_COUNTRY_WEIGHTS[name] for name in names], dtype=np.float64)
    weights /= weights.sum()

    rows: List[Dict[str, object]] = []
    for respondent in range(n_rows):
        country_name = str(rng.choice(names, p=weights))
        country = facts[country_name]
        gender = "Male" if rng.random() < 0.88 else "Female"
        age = int(np.clip(rng.normal(31, 8), 18, 70))
        years_code = float(np.clip(rng.normal(age - 22, 4), 0, 45))
        dev_type = str(rng.choice(_DEV_TYPES))
        ed_level = str(rng.choice(_ED_LEVELS, p=[0.15, 0.5, 0.28, 0.07]))
        hobby = "Yes" if rng.random() < 0.75 else "No"
        salary = expected_salary(country, years_code, dev_type, ed_level, gender)
        salary += float(rng.normal(0.0, noise_scale))
        salary = max(2.0, salary)
        rows.append({
            "Respondent": respondent + 1,
            "Country": country_name,
            "Continent": country.continent,
            "Gender": gender,
            "Age": age,
            "YearsCode": round(years_code, 1),
            "DevType": dev_type,
            "EdLevel": ed_level,
            "Hobby": hobby,
            "Salary": round(salary, 2),
        })
    return Table.from_rows(rows, name="SO")
