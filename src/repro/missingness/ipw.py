"""Inverse-probability weighting (IPW) for selection-biased attributes.

When the recoverability analysis flags an attribute ``E`` as selection
biased, the complete cases are re-weighted: each row with an observed value
receives weight ``W = P(R_E = 1) / P(R_E = 1 | X)`` where the selection
probability ``P(R_E = 1 | X)`` is predicted by a logistic regression fitted
on the *fully observed* attributes of the input dataset (Section 3.2).  The
weights then flow into the weighted entropy estimators of
:mod:`repro.infotheory`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import MissingDataError
from repro.infotheory.encoding import EncodedFrame
from repro.missingness.logistic import LogisticRegression, one_hot_encode_codes


@dataclass(frozen=True)
class IPWWeights:
    """Per-row inverse-probability weights for one attribute.

    Attributes
    ----------
    attribute:
        The selection-biased attribute the weights correct for.
    weights:
        One non-negative weight per row of the table.  Rows whose value is
        missing keep weight 1 (they form their own "missing" stratum in the
        estimators); observed rows get ``P(R=1) / P(R=1 | X)``.
    selection_rate:
        The marginal probability ``P(R_E = 1)``.
    model_converged:
        Whether the logistic regression converged.
    """

    attribute: str
    weights: np.ndarray
    selection_rate: float
    model_converged: bool

    def effective_sample_size(self) -> float:
        """Kish effective sample size of the weights (observed rows only)."""
        observed = self.weights[self.weights > 0]
        if observed.size == 0:
            return 0.0
        return float(observed.sum() ** 2 / (observed ** 2).sum())


def compute_ipw_weights(frame: EncodedFrame, attribute: str,
                        predictor_columns: Sequence[str],
                        clip: float = 10.0,
                        l2: float = 1e-3,
                        features: Optional[np.ndarray] = None,
                        row_groups: Optional[np.ndarray] = None) -> IPWWeights:
    """Compute IPW weights for ``attribute`` using the listed predictors.

    Parameters
    ----------
    frame:
        Encoded frame over the (augmented) table.
    attribute:
        The attribute whose missingness is being corrected.
    predictor_columns:
        Fully observed columns of the original dataset used as features of
        the selection model.  Columns that are themselves partially missing
        are tolerated (their missing rows form an implicit category).
    clip:
        Upper bound on the individual weights; extreme weights blow up the
        variance of the weighted estimators, so they are clipped as is
        standard practice in the IPW literature.
    l2:
        Ridge penalty passed to the logistic regression.
    features:
        Optional pre-built one-hot feature matrix for ``predictor_columns``
        (the selection models of many attributes share the same predictors,
        so the caller can encode once and reuse).
    row_groups:
        Optional per-row id of the distinct predictor-value combination
        (see :meth:`LogisticRegression.fit`); like ``features`` it is
        shared across every biased attribute of a query, so the caller
        computes it once.
    """
    if clip <= 0:
        raise MissingDataError(f"clip must be positive, got {clip}")
    observed = frame.observed_mask(attribute)
    n_rows = frame.n_rows
    selection_rate = float(observed.mean()) if n_rows else 0.0
    weights = np.ones(n_rows, dtype=np.float64)
    if n_rows == 0 or selection_rate in (0.0, 1.0) or not predictor_columns:
        # Degenerate cases: nothing observed, everything observed, or no
        # predictors — the best estimate of P(R=1|X) is P(R=1), so every row
        # keeps weight 1.
        return IPWWeights(attribute=attribute, weights=weights,
                          selection_rate=selection_rate, model_converged=True)

    if features is None:
        features = one_hot_encode_codes([frame.codes(column) for column in predictor_columns])
    model = LogisticRegression(l2=l2)
    model.fit(features, observed.astype(np.float64), row_groups=row_groups)
    predicted = np.clip(model.predict_proba(features), 1e-3, 1.0)
    raw = np.clip(selection_rate / predicted, 0.0, clip)
    weights[observed] = raw[observed]
    return IPWWeights(attribute=attribute, weights=weights,
                      selection_rate=selection_rate, model_converged=model.converged_)
