"""Cached, batched IPW selection-model fits — the fit half of the backend.

The IPW correction fits one logistic selection model per biased attribute
(Section 3.2).  Two structural facts make most of those fits redundant:

* attributes extracted from the same knowledge-graph property often share
  their missingness pattern, so their selection models — which depend only
  on the observed mask and the design matrix — are *identical*;
* every biased attribute of one query fits over the same design matrix
  (the fully observed predictor columns of the context frame), so the
  uncached fits can run as one multi-label IRLS solve
  (:func:`repro.missingness.logistic.fit_logistic_multi`) instead of one
  Newton loop per attribute.

:class:`SelectionFitCache` memoises finished fits under
``(design signature, observed-mask hash)`` — the full input of a selection
fit — and :func:`compute_ipw_weights_batched` drains a query's biased
attributes through the cache, batching every miss into a single solve.
The :class:`~repro.engine.context.PipelineContext` owns one cache per
dataset, so repeated contexts (the common serving shape) skip the fits
entirely; ``ipw_fit_hit`` / ``ipw_fit_miss`` counters surface via
``GET /stats``.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.missingness.ipw import IPWWeights
from repro.missingness.logistic import fit_logistic_multi, one_hot_encode_codes
from repro.obs import trace


@dataclass(frozen=True)
class CachedSelectionFit:
    """The attribute-independent outcome of one selection-model fit."""

    weights: np.ndarray
    selection_rate: float
    model_converged: bool

    def as_ipw(self, attribute: str) -> IPWWeights:
        """Materialise the cached fit for a concrete attribute name."""
        return IPWWeights(attribute=attribute, weights=self.weights,
                          selection_rate=self.selection_rate,
                          model_converged=self.model_converged)


def observed_mask_key(mask: np.ndarray) -> bytes:
    """A compact digest of an observed-row mask (the fit's label vector)."""
    mask = np.asarray(mask, dtype=bool)
    digest = hashlib.sha1()
    digest.update(str(len(mask)).encode("ascii"))
    digest.update(np.packbits(mask).tobytes())
    return digest.digest()


def design_signature(predictor_columns: Sequence[str],
                     predictor_codes: Sequence[np.ndarray],
                     clip: float, l2: float) -> bytes:
    """A digest of everything besides the mask that determines a fit.

    The one-hot design matrix is a pure function of the predictor code
    arrays (hashing those avoids touching the ``n x d`` float matrix), and
    ``clip`` / ``l2`` change the resulting weights, so they key too.
    """
    digest = hashlib.sha1()
    digest.update(repr((tuple(predictor_columns), float(clip), float(l2)))
                  .encode("utf-8"))
    for codes in predictor_codes:
        codes = np.asarray(codes, dtype=np.int64)
        digest.update(str(len(codes)).encode("ascii"))
        digest.update(codes.tobytes())
    return digest.digest()


class SelectionFitCache:
    """A bounded LRU of finished selection fits (thread-safe).

    Entries are immutable (:class:`CachedSelectionFit` with a read-only
    weight array), so sharing them across queries — and handing copies of
    the cache to forked worker contexts — is safe.
    """

    def __init__(self, max_entries: int = 256):
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple[bytes, bytes], CachedSelectionFit]" = \
            OrderedDict()
        self._lock = threading.Lock()
        #: Keys inserted since the last :meth:`drain_new_entries` call —
        #: what a worker context has learned that its parent has not.
        self._new_keys: set = set()

    def get(self, key: Tuple[bytes, bytes]) -> Optional[CachedSelectionFit]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def put(self, key: Tuple[bytes, bytes], value: CachedSelectionFit) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            self._new_keys.add(key)
            while len(self._entries) > self.max_entries:
                evicted, _ = self._entries.popitem(last=False)
                self._new_keys.discard(evicted)

    def copy(self) -> "SelectionFitCache":
        """A new cache pre-populated with this one's (immutable) entries.

        The copy starts with an empty new-entry set: everything it holds
        came from this cache, so only fits performed *after* the copy count
        as new when the copy's entries are merged back.
        """
        forked = SelectionFitCache(self.max_entries)
        with self._lock:
            forked._entries = OrderedDict(self._entries)
        return forked

    def drain_new_entries(self) -> List[Tuple[Tuple[bytes, bytes], CachedSelectionFit]]:
        """Entries inserted since the last drain (and reset the marker).

        The parallel batch executors call this on worker caches after a
        chunk and merge the returned fits into the parent context — the
        fit-cache write-back that warms the parent for the next batch.
        """
        with self._lock:
            drained = [(key, self._entries[key]) for key in self._new_keys
                       if key in self._entries]
            self._new_keys.clear()
        return drained

    def merge_new_entries(self, entries: Sequence[Tuple[Tuple[bytes, bytes],
                                                        CachedSelectionFit]]) -> int:
        """Adopt another cache's drained entries; returns how many were new.

        Entries already present are skipped (first write wins — fits are
        deterministic for a given key, so the values are interchangeable),
        keeping the parent's recency order intact for its own hot keys.
        """
        added = 0
        for key, entry in entries:
            with self._lock:
                known = key in self._entries
            if not known:
                if entry.weights.flags.writeable:  # crossed a process boundary
                    entry.weights.setflags(write=False)
                self.put(key, entry)
                added += 1
        return added

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def compute_ipw_weights_batched(frame, attributes: Sequence[str],
                                predictor_columns: Sequence[str],
                                clip: float = 10.0, l2: float = 1e-3,
                                features: Optional[np.ndarray] = None,
                                row_groups: Optional[np.ndarray] = None,
                                design_factory=None,
                                cache: Optional[SelectionFitCache] = None,
                                counter_hook=None,
                                fitter=None) -> Dict[str, IPWWeights]:
    """IPW weights for several attributes: cache hits first, one solve for the rest.

    Semantics per attribute match
    :func:`repro.missingness.ipw.compute_ipw_weights` (degenerate selection
    rates keep unit weights, the same clipping applies); attributes whose
    observed mask and design coincide share a single fit, and all remaining
    distinct masks batch into one :func:`fit_logistic_multi` call.

    ``design_factory`` — a zero-argument callable returning
    ``(features, row_groups)`` — is invoked only when at least one fit
    actually has to run, so a fully cached batch (the warm serving shape)
    never pays for building the one-hot design matrix.  Pass ``features``
    / ``row_groups`` directly when they are already built.

    ``counter_hook`` (``(name, increment)``) observes ``ipw_fit_hit`` — a
    cache hit *or* a same-mask sibling inside the batch — and
    ``ipw_fit_miss`` for every fit actually performed.

    ``fitter`` substitutes the multi-label solver — same signature and
    return type as :func:`fit_logistic_multi`.  The row-sharded data plane
    passes a distributed IRLS driver here; everything around the solve
    (caching, sibling sharing, weight clipping) is row-count-agnostic and
    stays on this side.
    """
    from repro.exceptions import MissingDataError

    if clip <= 0:
        raise MissingDataError(f"clip must be positive, got {clip}")

    tallies = {"ipw_fit_hit": 0, "ipw_fit_miss": 0}

    def count(name: str, increment: int = 1) -> None:
        if name in tallies:
            tallies[name] += increment
        if counter_hook is not None:
            counter_hook(name, increment)

    with trace.span("ipw.fit_batch", attributes=len(attributes)):
        try:
            return _ipw_weights_batched(
                frame, attributes, predictor_columns, clip, l2, features,
                row_groups, design_factory, cache, count, fitter)
        finally:
            trace.annotate(fit_hits=tallies["ipw_fit_hit"],
                           fit_misses=tallies["ipw_fit_miss"])


def _ipw_weights_batched(frame, attributes: Sequence[str],
                         predictor_columns: Sequence[str],
                         clip: float, l2: float,
                         features: Optional[np.ndarray],
                         row_groups: Optional[np.ndarray],
                         design_factory,
                         cache: Optional[SelectionFitCache],
                         count,
                         fitter) -> Dict[str, IPWWeights]:

    results: Dict[str, IPWWeights] = {}
    if not attributes:
        return results
    n_rows = frame.n_rows
    signature: Optional[bytes] = None
    pending: "OrderedDict[bytes, List[str]]" = OrderedDict()
    pending_masks: Dict[bytes, np.ndarray] = {}
    for attribute in attributes:
        observed = frame.observed_mask(attribute)
        selection_rate = float(observed.mean()) if n_rows else 0.0
        if n_rows == 0 or selection_rate in (0.0, 1.0) or not predictor_columns:
            # Degenerate cases mirror compute_ipw_weights: every row keeps
            # weight 1 and no model is fitted (or cached).
            results[attribute] = IPWWeights(
                attribute=attribute, weights=np.ones(n_rows, dtype=np.float64),
                selection_rate=selection_rate, model_converged=True)
            continue
        if signature is None:
            signature = design_signature(
                predictor_columns,
                [frame.codes(column) for column in predictor_columns],
                clip, l2)
        mask_key = observed_mask_key(observed)
        cached = cache.get((signature, mask_key)) if cache is not None else None
        if cached is not None:
            count("ipw_fit_hit")
            results[attribute] = cached.as_ipw(attribute)
            continue
        siblings = pending.get(mask_key)
        if siblings is not None:
            count("ipw_fit_hit")
            siblings.append(attribute)
        else:
            count("ipw_fit_miss")
            pending[mask_key] = [attribute]
            pending_masks[mask_key] = observed
    if not pending:
        return results
    if features is None and design_factory is not None:
        features, row_groups = design_factory()
    if features is None:
        features = one_hot_encode_codes(
            [frame.codes(column) for column in predictor_columns])
    mask_keys = list(pending)
    labels = np.stack(
        [pending_masks[mask_key].astype(np.float64) for mask_key in mask_keys],
        axis=1)
    solve = fitter if fitter is not None else fit_logistic_multi
    models = solve(features, labels, row_groups=row_groups, l2=l2)
    for mask_key, model in zip(mask_keys, models):
        observed = pending_masks[mask_key]
        selection_rate = float(observed.mean())
        predicted = np.clip(model.predict_proba(features), 1e-3, 1.0)
        raw = np.clip(selection_rate / predicted, 0.0, clip)
        weights = np.ones(n_rows, dtype=np.float64)
        weights[observed] = raw[observed]
        weights.setflags(write=False)
        entry = CachedSelectionFit(weights=weights, selection_rate=selection_rate,
                                   model_converged=model.converged_)
        if cache is not None:
            cache.put((signature, mask_key), entry)
        for attribute in pending[mask_key]:
            results[attribute] = entry.as_ipw(attribute)
    return results
