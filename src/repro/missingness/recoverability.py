"""Recoverability analysis for complete-case estimates (Propositions 3.1 / 3.2).

For an extracted attribute ``E`` with missing values, let ``R_E`` be the
selection indicator (1 when the value was extracted).  Complete-case
estimates of ``I(O;T|C,E)`` are *recoverable* — unbiased — when

* ``O ⊥ R_E | E, C``  and  ``O ⊥ R_E | E, T, C``   (Proposition 3.1),

and estimates of ``I(E; E')`` are recoverable when

* ``E ⊥ R_E, R_E'``  and  ``E ⊥ R_E, R_E' | E'``   (Proposition 3.2).

When the conditions fail the attribute suffers from selection bias and the
MCIMR computation must use the IPW weights of :mod:`repro.missingness.ipw`.
The conditional-independence tests reuse the permutation test of
:mod:`repro.infotheory.independence`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.infotheory.encoding import EncodedFrame, joint_codes
from repro.infotheory.independence import conditional_independence_test
from repro.infotheory.kernel import code_cardinality, fast_independence_test


def _independence(x: np.ndarray, y: np.ndarray, conditioning: Sequence[np.ndarray],
                  use_kernel: bool, **kwargs):
    """Dispatch one CI test to the kernel or the reference implementation.

    The recoverability conditions only ever condition on a single variable,
    so the kernel path needs no joint coding — the conditioning codes are
    their own strata, and verdicts match the reference test exactly.  The
    kernel path runs on the blocked permutation engine by default
    (``use_blocked`` / ``early_exit`` forward through ``kwargs``).
    """
    if not use_kernel:
        kwargs.pop("use_blocked", None)
        return conditional_independence_test(x, y, conditioning, **kwargs)
    if not conditioning:
        return fast_independence_test(x, y, None, **kwargs)
    z = np.asarray(conditioning[0], dtype=np.int64)
    return fast_independence_test(x, y, z, n_z=code_cardinality(z), **kwargs)


@dataclass(frozen=True)
class RecoverabilityReport:
    """Outcome of the recoverability analysis for one attribute.

    Attributes
    ----------
    attribute:
        The attribute ``E`` under analysis.
    missing_fraction:
        Fraction of rows in which ``E`` is missing.
    cmi_recoverable:
        Whether ``I(O;T|C,E)`` is recoverable from complete cases
        (Proposition 3.1).
    selection_bias:
        ``True`` when the attribute has missing values *and* the
        recoverability conditions fail — the case where IPW weights are
        required.
    details:
        The verdicts of the individual conditional-independence tests.
    """

    attribute: str
    missing_fraction: float
    cmi_recoverable: bool
    selection_bias: bool
    details: Dict[str, bool]


def _selection_indicator(frame: EncodedFrame, attribute: str) -> np.ndarray:
    """The ``R_E`` indicator as a 0/1 code array (never missing)."""
    return frame.observed_mask(attribute).astype(np.int64)


def cmi_is_recoverable(frame: EncodedFrame, outcome: str, treatment: str, attribute: str,
                       cmi_threshold: float = 0.02, n_permutations: int = 20,
                       seed: Optional[int] = 0, use_kernel: bool = True,
                       **test_kwargs) -> Dict[str, bool]:
    """Check the (testable surrogate of the) conditions of Proposition 3.1.

    The proposition's conditions condition on ``E`` itself, which cannot be
    evaluated on the rows where ``E`` is missing; the standard observable
    surrogate — also what makes selection bias *detectable* from data — is
    to test whether the selection indicator is associated with the outcome,
    marginally and within exposure strata:

    * ``O ⊥ R_E | C``  and  ``O ⊥ R_E | T, C``.

    When both hold, the missingness carries no information about the outcome
    and the complete-case estimate of ``I(O;T|C,E)`` is treated as
    recoverable; otherwise IPW weights are required.  Returns a dict with
    the two individual verdicts and their conjunction under ``"recoverable"``.
    """
    selection = _selection_indicator(frame, attribute)
    outcome_codes = frame.codes(outcome)
    treatment_codes = frame.codes(treatment)
    first = _independence(
        outcome_codes, selection, [], use_kernel,
        threshold=cmi_threshold, n_permutations=n_permutations, seed=seed,
        **test_kwargs,
    )
    second = _independence(
        outcome_codes, selection, [treatment_codes], use_kernel,
        threshold=cmi_threshold, n_permutations=n_permutations, seed=seed,
        **test_kwargs,
    )
    return {
        "O_indep_R": first.independent,
        "O_indep_R_given_T": second.independent,
        "recoverable": first.independent and second.independent,
    }


def mi_is_recoverable(frame: EncodedFrame, attribute: str, other: str,
                      cmi_threshold: float = 0.02, n_permutations: int = 20,
                      seed: Optional[int] = 0, use_kernel: bool = True,
                      **test_kwargs) -> Dict[str, bool]:
    """Check the two conditions of Proposition 3.2 for ``I(E; E')``."""
    selection_pair = joint_codes([
        _selection_indicator(frame, attribute),
        _selection_indicator(frame, other),
    ])
    attribute_codes = frame.codes(attribute)
    other_codes = frame.codes(other)
    first = _independence(
        attribute_codes, selection_pair, [], use_kernel,
        threshold=cmi_threshold, n_permutations=n_permutations, seed=seed,
        **test_kwargs,
    )
    second = _independence(
        attribute_codes, selection_pair, [other_codes], use_kernel,
        threshold=cmi_threshold, n_permutations=n_permutations, seed=seed,
        **test_kwargs,
    )
    return {
        "E_indep_R": first.independent,
        "E_indep_R_given_other": second.independent,
        "recoverable": first.independent and second.independent,
    }


def attribute_selection_bias(frame: EncodedFrame, outcome: str, treatment: str,
                             attribute: str, cmi_threshold: float = 0.02,
                             n_permutations: int = 20,
                             seed: Optional[int] = 0,
                             use_kernel: bool = True,
                             **test_kwargs) -> RecoverabilityReport:
    """Full recoverability report for one candidate attribute.

    An attribute with no missing values is trivially recoverable.  Otherwise
    the Proposition 3.1 conditions are tested; selection bias is flagged when
    they fail.
    """
    column = frame.table.column(attribute)
    missing_fraction = column.missing_fraction()
    if missing_fraction == 0.0:
        return RecoverabilityReport(
            attribute=attribute, missing_fraction=0.0, cmi_recoverable=True,
            selection_bias=False,
            details={"O_indep_R": True, "O_indep_R_given_T": True},
        )
    verdicts = cmi_is_recoverable(frame, outcome, treatment, attribute,
                                  cmi_threshold=cmi_threshold,
                                  n_permutations=n_permutations, seed=seed,
                                  use_kernel=use_kernel, **test_kwargs)
    recoverable = verdicts.pop("recoverable")
    return RecoverabilityReport(
        attribute=attribute,
        missing_fraction=missing_fraction,
        cmi_recoverable=recoverable,
        selection_bias=not recoverable,
        details=verdicts,
    )


def selection_bias_summary(frame: EncodedFrame, outcome: str, treatment: str,
                           attributes: Sequence[str], **kwargs) -> List[RecoverabilityReport]:
    """Recoverability reports for a list of candidate attributes."""
    return [attribute_selection_bias(frame, outcome, treatment, attribute, **kwargs)
            for attribute in attributes]
