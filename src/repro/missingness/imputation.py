"""Imputation baselines: mean/mode imputation and complete-case restriction.

The paper compares its IPW approach against the common mean-imputation
technique (Figure 3 shows imputation degrading explanation quality badly)
and against plain complete-case analysis.  Both are provided here so that
the robustness benchmark can reproduce the comparison.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.table.column import Column, DType
from repro.table.table import Table


def impute_mean(table: Table, columns: Optional[Sequence[str]] = None) -> Table:
    """Replace missing numeric values with the column mean.

    Non-numeric columns in ``columns`` are imputed with the mode instead, so
    that a single call can sanitise a heterogeneous attribute list.
    """
    if columns is None:
        columns = table.column_names
    result = table
    for column_name in columns:
        column = table.column(column_name)
        if column.missing_count() == 0:
            continue
        if column.is_numeric():
            present = column.non_missing_values()
            if not present:
                continue
            fill = float(np.mean(present))
            values = [fill if column.missing_mask[i] else column[i] for i in range(len(column))]
            result = result.with_column(Column(column_name, values, dtype=DType.FLOAT))
        else:
            result = impute_mode(result, [column_name])
    return result


def impute_mode(table: Table, columns: Optional[Sequence[str]] = None) -> Table:
    """Replace missing values with the most frequent value of the column."""
    if columns is None:
        columns = table.column_names
    result = table
    for column_name in columns:
        column = table.column(column_name)
        if column.missing_count() == 0:
            continue
        counts = column.value_counts()
        if not counts:
            continue
        fill = max(counts, key=lambda value: (counts[value], str(value)))
        values = [fill if column.missing_mask[i] else column[i] for i in range(len(column))]
        result = result.with_column(Column(column_name, values, dtype=column.dtype))
    return result


def complete_cases(table: Table, columns: Sequence[str]) -> Table:
    """Keep only the rows where every listed column is present."""
    mask = np.ones(table.n_rows, dtype=bool)
    for column_name in columns:
        mask &= ~table.column(column_name).missing_mask
    return table.filter(mask)
