"""Missing-data handling (Section 3.2 of the paper).

Attributes extracted from a sparse knowledge graph contain many missing
values, and naive complete-case analysis can introduce *selection bias*.
This package provides:

* missingness injectors (missing-completely-at-random and biased removal of
  the highest values) used by the robustness experiment of Figure 3;
* the recoverability tests of Propositions 3.1 and 3.2, which decide whether
  complete-case estimates of ``I(O;T|C,E)`` and ``I(E;E')`` are unbiased;
* a from-scratch logistic-regression model and the inverse-probability
  weighting (IPW) correction built on it;
* the imputation baselines (mean/mode imputation, complete-case analysis)
  that the paper compares against.
"""

from repro.missingness.fitcache import (
    SelectionFitCache,
    compute_ipw_weights_batched,
)
from repro.missingness.imputation import complete_cases, impute_mean, impute_mode
from repro.missingness.ipw import IPWWeights, compute_ipw_weights
from repro.missingness.logistic import LogisticRegression, fit_logistic_multi
from repro.missingness.patterns import inject_biased_removal, inject_mcar
from repro.missingness.recoverability import (
    RecoverabilityReport,
    attribute_selection_bias,
    cmi_is_recoverable,
    mi_is_recoverable,
)

__all__ = [
    "complete_cases",
    "impute_mean",
    "impute_mode",
    "IPWWeights",
    "SelectionFitCache",
    "compute_ipw_weights",
    "compute_ipw_weights_batched",
    "LogisticRegression",
    "fit_logistic_multi",
    "inject_biased_removal",
    "inject_mcar",
    "RecoverabilityReport",
    "attribute_selection_bias",
    "cmi_is_recoverable",
    "mi_is_recoverable",
]
