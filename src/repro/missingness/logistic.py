"""Binary logistic regression, implemented from scratch with numpy.

The IPW correction fits a logistic model of the selection indicator
``R_E`` (is the extracted value present for this row?) on the fully observed
attributes of the input dataset (Section 3.2: "a logistic regression model is
fitted ... Data available for this are the values of the attributes in D").
No external ML library is available offline, so the model is implemented
here with L2-regularised Newton/IRLS optimisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.exceptions import MissingDataError


def _sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


@dataclass
class LogisticRegression:
    """L2-regularised binary logistic regression fitted with IRLS.

    Parameters
    ----------
    l2:
        Ridge penalty on the weights (not on the intercept); a small penalty
        keeps the Newton updates stable when features are collinear, which
        happens routinely with one-hot encoded categorical attributes.
    max_iter:
        Maximum number of Newton iterations.
    tol:
        Convergence tolerance on the change of the coefficient vector.
    """

    l2: float = 1e-3
    max_iter: int = 50
    tol: float = 1e-8
    coefficients_: Optional[np.ndarray] = field(default=None, repr=False)
    intercept_: float = 0.0
    converged_: bool = False
    n_iterations_: int = 0

    def fit(self, features: np.ndarray, labels: np.ndarray,
            row_groups: Optional[np.ndarray] = None) -> "LogisticRegression":
        """Fit the model on a dense feature matrix and 0/1 labels.

        ``row_groups`` optionally maps each row to the id (``0..k-1``) of
        its distinct feature combination.  One-hot designs over a handful
        of categorical predictors have far fewer distinct rows than rows;
        collapsing duplicates into binomial groups (``t_i`` trials,
        ``s_i`` successes per distinct row) yields the identical gradient
        and Hessian at every beta, so Newton follows the same trajectory
        at a fraction of the per-iteration cost.  The IPW layer fits one
        selection model per biased attribute over the *same* features, so
        the caller computes the grouping once and reuses it for every fit.
        """
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        if features.ndim != 2:
            raise MissingDataError(f"features must be 2-dimensional, got shape {features.shape}")
        if len(features) != len(labels):
            raise MissingDataError(
                f"features ({len(features)} rows) and labels ({len(labels)}) differ in length"
            )
        if not np.isin(labels, (0.0, 1.0)).all():
            raise MissingDataError("labels must be binary (0/1)")
        n_rows, n_features = features.shape
        design = np.hstack([np.ones((n_rows, 1)), features])
        beta = np.zeros(n_features + 1)
        penalty = np.full(n_features + 1, self.l2)
        penalty[0] = 0.0  # do not penalise the intercept

        # Degenerate labels (all 0 or all 1) have no unique MLE; fall back to
        # the intercept-only model at the empirical rate.
        if labels.min() == labels.max():
            rate = float(np.clip(labels.mean(), 1e-6, 1 - 1e-6))
            beta[0] = np.log(rate / (1 - rate))
            self._store(beta, converged=True, iterations=0)
            return self

        totals = np.ones(n_rows)
        successes = labels
        if row_groups is not None:
            row_groups = np.asarray(row_groups, dtype=np.int64)
            if len(row_groups) != n_rows:
                raise MissingDataError(
                    f"row_groups ({len(row_groups)} rows) and features "
                    f"({n_rows}) differ in length")
            n_groups = int(row_groups.max()) + 1 if n_rows else 0
            if 0 < n_groups <= n_rows // 2:
                # First-occurrence representative of each group (O(n)).
                representatives = np.zeros(n_groups, dtype=np.int64)
                representatives[row_groups[::-1]] = np.arange(n_rows - 1, -1, -1)
                design = design[representatives]
                totals = np.bincount(row_groups, minlength=n_groups).astype(np.float64)
                successes = np.bincount(row_groups, weights=labels, minlength=n_groups)

        for iteration in range(1, self.max_iter + 1):
            linear = design @ beta
            probabilities = np.clip(_sigmoid(linear), 1e-9, 1 - 1e-9)
            weights = totals * probabilities * (1.0 - probabilities)
            gradient = design.T @ (successes - totals * probabilities) - penalty * beta
            hessian = (design * weights[:, None]).T @ design + np.diag(penalty + 1e-12)
            try:
                step = np.linalg.solve(hessian, gradient)
            except np.linalg.LinAlgError:
                step = np.linalg.lstsq(hessian, gradient, rcond=None)[0]
            beta = beta + step
            if np.max(np.abs(step)) < self.tol:
                self._store(beta, converged=True, iterations=iteration)
                return self
        self._store(beta, converged=False, iterations=self.max_iter)
        return self

    def _store(self, beta: np.ndarray, converged: bool, iterations: int) -> None:
        self.intercept_ = float(beta[0])
        self.coefficients_ = beta[1:].copy()
        self.converged_ = converged
        self.n_iterations_ = iterations

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Probability of the positive class for each row."""
        if self.coefficients_ is None:
            raise MissingDataError("LogisticRegression.predict_proba called before fit")
        features = np.asarray(features, dtype=np.float64)
        return _sigmoid(self.intercept_ + features @ self.coefficients_)

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions."""
        return (self.predict_proba(features) >= threshold).astype(np.int64)


def one_hot_encode_codes(code_arrays: List[np.ndarray]) -> np.ndarray:
    """One-hot encode a list of integer code arrays into a dense feature matrix.

    Missing codes (``-1``) get an all-zero row for that variable, which acts
    as its own implicit "missing" category once the intercept absorbs the
    baseline.  Used to turn the fully observed dataset attributes into
    features for the selection model.
    """
    if not code_arrays:
        raise MissingDataError("one_hot_encode_codes requires at least one code array")
    n = len(code_arrays[0])
    blocks = []
    for codes in code_arrays:
        codes = np.asarray(codes, dtype=np.int64)
        if len(codes) != n:
            raise MissingDataError("code arrays have different lengths")
        n_categories = int(codes.max()) + 1 if codes.max() >= 0 else 0
        if n_categories == 0:
            continue
        block = np.zeros((n, n_categories), dtype=np.float64)
        present = codes >= 0
        block[np.arange(n)[present], codes[present]] = 1.0
        # Drop the first category as the reference level to limit collinearity.
        if n_categories > 1:
            block = block[:, 1:]
        blocks.append(block)
    if not blocks:
        return np.zeros((n, 0), dtype=np.float64)
    return np.hstack(blocks)
