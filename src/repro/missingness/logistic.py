"""Binary logistic regression, implemented from scratch with numpy.

The IPW correction fits a logistic model of the selection indicator
``R_E`` (is the extracted value present for this row?) on the fully observed
attributes of the input dataset (Section 3.2: "a logistic regression model is
fitted ... Data available for this are the values of the attributes in D").
No external ML library is available offline, so the model is implemented
here with L2-regularised Newton/IRLS optimisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import MissingDataError


def _sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


@dataclass
class LogisticRegression:
    """L2-regularised binary logistic regression fitted with IRLS.

    Parameters
    ----------
    l2:
        Ridge penalty on the weights (not on the intercept); a small penalty
        keeps the Newton updates stable when features are collinear, which
        happens routinely with one-hot encoded categorical attributes.
    max_iter:
        Maximum number of Newton iterations.
    tol:
        Convergence tolerance on the change of the coefficient vector.
    """

    l2: float = 1e-3
    max_iter: int = 50
    tol: float = 1e-8
    coefficients_: Optional[np.ndarray] = field(default=None, repr=False)
    intercept_: float = 0.0
    converged_: bool = False
    n_iterations_: int = 0

    def fit(self, features: np.ndarray, labels: np.ndarray,
            row_groups: Optional[np.ndarray] = None) -> "LogisticRegression":
        """Fit the model on a dense feature matrix and 0/1 labels.

        ``row_groups`` optionally maps each row to the id (``0..k-1``) of
        its distinct feature combination.  One-hot designs over a handful
        of categorical predictors have far fewer distinct rows than rows;
        collapsing duplicates into binomial groups (``t_i`` trials,
        ``s_i`` successes per distinct row) yields the identical gradient
        and Hessian at every beta, so Newton follows the same trajectory
        at a fraction of the per-iteration cost.  The IPW layer fits one
        selection model per biased attribute over the *same* features, so
        the caller computes the grouping once and reuses it for every fit.
        """
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        if features.ndim != 2:
            raise MissingDataError(f"features must be 2-dimensional, got shape {features.shape}")
        if len(features) != len(labels):
            raise MissingDataError(
                f"features ({len(features)} rows) and labels ({len(labels)}) differ in length"
            )
        if not np.isin(labels, (0.0, 1.0)).all():
            raise MissingDataError("labels must be binary (0/1)")
        n_rows, n_features = features.shape
        design = np.hstack([np.ones((n_rows, 1)), features])
        beta = np.zeros(n_features + 1)
        penalty = np.full(n_features + 1, self.l2)
        penalty[0] = 0.0  # do not penalise the intercept

        # Degenerate labels (all 0 or all 1) have no unique MLE; fall back to
        # the intercept-only model at the empirical rate.
        if labels.min() == labels.max():
            rate = float(np.clip(labels.mean(), 1e-6, 1 - 1e-6))
            beta[0] = np.log(rate / (1 - rate))
            self._store(beta, converged=True, iterations=0)
            return self

        totals = np.ones(n_rows)
        successes = labels
        if row_groups is not None:
            row_groups = np.asarray(row_groups, dtype=np.int64)
            if len(row_groups) != n_rows:
                raise MissingDataError(
                    f"row_groups ({len(row_groups)} rows) and features "
                    f"({n_rows}) differ in length")
            n_groups = int(row_groups.max()) + 1 if n_rows else 0
            if 0 < n_groups <= n_rows // 2:
                # First-occurrence representative of each group (O(n)).
                representatives = np.zeros(n_groups, dtype=np.int64)
                representatives[row_groups[::-1]] = np.arange(n_rows - 1, -1, -1)
                design = design[representatives]
                totals = np.bincount(row_groups, minlength=n_groups).astype(np.float64)
                successes = np.bincount(row_groups, weights=labels, minlength=n_groups)

        for iteration in range(1, self.max_iter + 1):
            linear = design @ beta
            probabilities = np.clip(_sigmoid(linear), 1e-9, 1 - 1e-9)
            weights = totals * probabilities * (1.0 - probabilities)
            gradient = design.T @ (successes - totals * probabilities) - penalty * beta
            hessian = (design * weights[:, None]).T @ design + np.diag(penalty + 1e-12)
            try:
                step = np.linalg.solve(hessian, gradient)
            except np.linalg.LinAlgError:
                step = np.linalg.lstsq(hessian, gradient, rcond=None)[0]
            beta = beta + step
            if np.max(np.abs(step)) < self.tol:
                self._store(beta, converged=True, iterations=iteration)
                return self
        self._store(beta, converged=False, iterations=self.max_iter)
        return self

    def _store(self, beta: np.ndarray, converged: bool, iterations: int) -> None:
        self.intercept_ = float(beta[0])
        self.coefficients_ = beta[1:].copy()
        self.converged_ = converged
        self.n_iterations_ = iterations

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Probability of the positive class for each row."""
        if self.coefficients_ is None:
            raise MissingDataError("LogisticRegression.predict_proba called before fit")
        features = np.asarray(features, dtype=np.float64)
        return _sigmoid(self.intercept_ + features @ self.coefficients_)

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions."""
        return (self.predict_proba(features) >= threshold).astype(np.int64)


def fit_logistic_multi(features: np.ndarray, labels_matrix: np.ndarray,
                       row_groups: Optional[np.ndarray] = None,
                       l2: float = 1e-3, max_iter: int = 50,
                       tol: float = 1e-8) -> List[LogisticRegression]:
    """Fit one logistic model per column of ``labels_matrix`` in one solve.

    The IPW layer fits a selection model per biased attribute over the
    *same* design matrix; running those fits one by one repeats the whole
    Newton machinery per attribute.  This multi-label IRLS path batches the
    per-iteration work across all labels:

    * one ``design @ Beta`` matmul evaluates every label's linear
      predictor;
    * one ``einsum`` assembles every label's Hessian
      ``X^T diag(w_l) X``;
    * one *batched* ``np.linalg.solve`` over the stacked ``(L, d, d)``
      Hessians performs every label's Newton step.

    Per label, every iteration computes exactly the quantities of
    :meth:`LogisticRegression.fit` (same grouping decision, same degenerate
    fallback, same per-label convergence test on the step norm), so each
    returned model follows the same Newton trajectory as an individual fit
    up to floating-point summation order — coefficients agree to well below
    the tolerances the estimators care about.  Labels that converge are
    frozen; the loop continues with the still-active columns only.
    """
    features = np.asarray(features, dtype=np.float64)
    labels_matrix = np.asarray(labels_matrix, dtype=np.float64)
    if features.ndim != 2:
        raise MissingDataError(f"features must be 2-dimensional, got shape {features.shape}")
    if labels_matrix.ndim != 2:
        raise MissingDataError(
            f"labels_matrix must be 2-dimensional, got shape {labels_matrix.shape}")
    if len(features) != len(labels_matrix):
        raise MissingDataError(
            f"features ({len(features)} rows) and labels_matrix "
            f"({len(labels_matrix)}) differ in length")
    if not np.isin(labels_matrix, (0.0, 1.0)).all():
        raise MissingDataError("labels must be binary (0/1)")
    n_rows, n_features = features.shape
    n_labels = labels_matrix.shape[1]
    models = [LogisticRegression(l2=l2, max_iter=max_iter, tol=tol)
              for _ in range(n_labels)]
    if n_labels == 0:
        return models
    design = np.hstack([np.ones((n_rows, 1)), features])
    penalty = np.full(n_features + 1, l2)
    penalty[0] = 0.0
    beta = np.zeros((n_features + 1, n_labels))

    active: List[int] = []
    for label in range(n_labels):
        column = labels_matrix[:, label]
        if n_rows == 0 or column.min() == column.max():
            rate = float(np.clip(column.mean() if n_rows else 0.5, 1e-6, 1 - 1e-6))
            frozen = np.zeros(n_features + 1)
            frozen[0] = np.log(rate / (1 - rate))
            models[label]._store(frozen, converged=True, iterations=0)
            beta[:, label] = frozen
        else:
            active.append(label)
    active_idx = np.array(active, dtype=np.int64)

    totals = np.ones(n_rows)
    successes = labels_matrix
    if row_groups is not None and len(active_idx):
        row_groups = np.asarray(row_groups, dtype=np.int64)
        if len(row_groups) != n_rows:
            raise MissingDataError(
                f"row_groups ({len(row_groups)} rows) and features "
                f"({n_rows}) differ in length")
        n_groups = int(row_groups.max()) + 1 if n_rows else 0
        if 0 < n_groups <= n_rows // 2:
            representatives = np.zeros(n_groups, dtype=np.int64)
            representatives[row_groups[::-1]] = np.arange(n_rows - 1, -1, -1)
            design = design[representatives]
            totals = np.bincount(row_groups, minlength=n_groups).astype(np.float64)
            successes = np.stack(
                [np.bincount(row_groups, weights=labels_matrix[:, label],
                             minlength=n_groups)
                 for label in range(n_labels)], axis=1)

    for iteration in range(1, max_iter + 1):
        if not len(active_idx):
            break
        current = beta[:, active_idx]
        linear = design @ current
        probabilities = np.clip(_sigmoid(linear), 1e-9, 1 - 1e-9)
        weights = totals[:, None] * probabilities * (1.0 - probabilities)
        gradients = design.T @ (successes[:, active_idx]
                                - totals[:, None] * probabilities) \
            - penalty[:, None] * current
        # Batched X^T diag(w_l) X via stacked GEMMs: (A, d, n) @ (A, n, d).
        weighted = design[None, :, :] * weights.T[:, :, None]
        hessians = np.matmul(
            np.broadcast_to(design.T, (len(active_idx),) + design.T.shape),
            weighted)
        hessians += np.diag(penalty + 1e-12)[None, :, :]
        try:
            steps = np.linalg.solve(hessians, gradients.T[:, :, None])[:, :, 0]
        except np.linalg.LinAlgError:
            steps = np.empty((len(active_idx), n_features + 1))
            for position in range(len(active_idx)):
                try:
                    steps[position] = np.linalg.solve(
                        hessians[position], gradients[:, position])
                except np.linalg.LinAlgError:
                    steps[position] = np.linalg.lstsq(
                        hessians[position], gradients[:, position], rcond=None)[0]
        updated = current + steps.T
        beta[:, active_idx] = updated
        converged_now = np.abs(steps).max(axis=1) < tol
        for position in np.flatnonzero(converged_now):
            label = int(active_idx[position])
            models[label]._store(beta[:, label], converged=True,
                                 iterations=iteration)
        active_idx = active_idx[~converged_now]
    for label in active_idx:
        models[int(label)]._store(beta[:, int(label)], converged=False,
                                  iterations=max_iter)
    return models


def one_hot_encode_codes(code_arrays: List[np.ndarray],
                         cards: Optional[List[int]] = None) -> np.ndarray:
    """One-hot encode a list of integer code arrays into a dense feature matrix.

    Missing codes (``-1``) get an all-zero row for that variable, which acts
    as its own implicit "missing" category once the intercept absorbs the
    baseline.  Used to turn the fully observed dataset attributes into
    features for the selection model.

    ``cards`` optionally pins each variable's category count.  A row shard
    may never observe the top categories of a column, so encoding from the
    local maximum would misalign its design columns against the other
    shards; passing the *global* cardinalities gives every shard the same
    layout (extra categories only append all-zero columns, which the ridge
    penalty keeps harmless).
    """
    if not code_arrays:
        raise MissingDataError("one_hot_encode_codes requires at least one code array")
    if cards is not None and len(cards) != len(code_arrays):
        raise MissingDataError(
            f"cards ({len(cards)}) and code arrays ({len(code_arrays)}) "
            f"differ in length")
    n = len(code_arrays[0])
    blocks = []
    for position, codes in enumerate(code_arrays):
        codes = np.asarray(codes, dtype=np.int64)
        if len(codes) != n:
            raise MissingDataError("code arrays have different lengths")
        if cards is not None:
            n_categories = int(cards[position])
        else:
            n_categories = int(codes.max()) + 1 if n and codes.max() >= 0 else 0
        if n_categories == 0:
            continue
        block = np.zeros((n, n_categories), dtype=np.float64)
        present = codes >= 0
        block[np.arange(n)[present], codes[present]] = 1.0
        # Drop the first category as the reference level to limit collinearity.
        if n_categories > 1:
            block = block[:, 1:]
        blocks.append(block)
    if not blocks:
        return np.zeros((n, 0), dtype=np.float64)
    return np.hstack(blocks)


def logistic_partials(design: np.ndarray, successes: np.ndarray,
                      beta: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-shard Newton partials: unpenalised gradients and Hessians.

    ``design`` is this shard's slice of the (intercept-augmented) design
    matrix, ``successes`` its ``(n, L)`` label slice, and ``beta`` the
    current ``(d, L)`` coefficients broadcast by the coordinator.  Returns
    ``(gradients, hessians)`` of shapes ``(d, L)`` and ``(L, d, d)`` —
    exactly the ``X^T (s - p)`` and ``X^T diag(w) X`` terms of
    :func:`fit_logistic_multi` restricted to this shard's rows, with no
    penalty (the coordinator applies it once after merging).  Both terms
    are sums over rows, so the merged partials of any row partition equal
    the whole-table quantities up to float summation order.
    """
    design = np.asarray(design, dtype=np.float64)
    successes = np.asarray(successes, dtype=np.float64)
    beta = np.asarray(beta, dtype=np.float64)
    linear = design @ beta
    probabilities = np.clip(_sigmoid(linear), 1e-9, 1 - 1e-9)
    weights = probabilities * (1.0 - probabilities)
    gradients = design.T @ (successes - probabilities)
    weighted = design[None, :, :] * weights.T[:, :, None]
    hessians = np.matmul(
        np.broadcast_to(design.T, (beta.shape[1],) + design.T.shape),
        weighted)
    return gradients, hessians
