"""Missingness injectors used by the robustness experiment (Figure 3).

Two removal regimes are studied in the paper:

* *missing at random* — a uniformly random fraction of an attribute's values
  is removed;
* *biased removal* — the top-``x`` highest values of the attribute are
  removed, the missing-not-at-random situation in which complete-case
  analysis becomes selection-biased.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import MissingDataError
from repro.table.table import Table
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import require_probability


def inject_mcar(table: Table, columns: Sequence[str], fraction: float,
                seed: SeedLike = 0) -> Table:
    """Remove a uniformly random ``fraction`` of the values of each column.

    Only currently-present cells are counted: injecting 30 % missingness into
    a column that already has missing values removes 30 % of the *present*
    cells.
    """
    require_probability(fraction, "fraction", MissingDataError)
    rng = make_rng(seed)
    result = table
    for column_name in columns:
        column = table.column(column_name)
        present_indices = np.where(~column.missing_mask)[0]
        n_remove = int(round(fraction * len(present_indices)))
        if n_remove == 0:
            continue
        chosen = rng.choice(present_indices, size=n_remove, replace=False)
        extra = np.zeros(len(column), dtype=bool)
        extra[chosen] = True
        result = result.with_column(column.with_missing(extra))
    return result


def inject_biased_removal(table: Table, columns: Sequence[str], fraction: float) -> Table:
    """Remove the top-``fraction`` highest values of each (numeric) column.

    For a categorical column the removal is applied to the lexicographically
    largest values, which keeps the injector total and deterministic.
    """
    require_probability(fraction, "fraction", MissingDataError)
    result = table
    for column_name in columns:
        column = table.column(column_name)
        present_indices = [i for i in range(len(column)) if not column.missing_mask[i]]
        n_remove = int(round(fraction * len(present_indices)))
        if n_remove == 0:
            continue
        ordered = sorted(present_indices, key=lambda i: column[i], reverse=True)
        chosen = ordered[:n_remove]
        extra = np.zeros(len(column), dtype=bool)
        extra[chosen] = True
        result = result.with_column(column.with_missing(extra))
    return result
