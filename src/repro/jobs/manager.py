"""The :class:`JobManager`: a durable work queue for serving backends.

State machine (rows in the metastore's ``jobs`` table)::

    PENDING --claim--> RUNNING --+--> DONE
       ^                         +--> FAILED
       |                         +--> CANCELLED
       +------checkpoint / crash recovery------+

* **Submission** writes a PENDING row synchronously (the id is handed to
  the client) and wakes the worker thread.
* **Execution** claims the row (PENDING -> RUNNING, guarded — a row
  cancelled before the claim stays cancelled), then streams per-query
  results into ``job_results`` keyed by position.  Progress and
  heartbeats ride the write-behind queue; terminal transitions are
  synchronous and preceded by a flush, so DONE implies every result row
  is on disk.
* **Cancellation** flips the row to CANCELLED; the runner polls the
  durable state between queries and stops at the next boundary.
* **Recovery**: :meth:`resume_incomplete` re-queues RUNNING rows whose
  ``owner_epoch`` is stale (their process died) and enqueues every
  PENDING row.  A resumed ``explain_batch`` skips positions already in
  ``job_results`` — the killed run's completed prefix — and recomputes
  only the rest.
* **Checkpoint**: :meth:`close` flips an in-flight RUNNING job back to
  PENDING before returning, so a graceful shutdown resumes exactly like
  a crash, minus the lost tail.

The manager is backend-agnostic: anything with ``explain(dataset, query,
k=...)`` returning an object with an ``.envelope`` and ``warm(dataset,
top=...)`` works — an :class:`~repro.serving.service.ExplanationService`
and a :class:`~repro.serving.cluster.ServiceCluster` both qualify.
"""

from __future__ import annotations

import json
import queue
import threading
import time
import uuid
from typing import Dict, List, Optional, Sequence

from repro.engine.envelope import ExplanationEnvelope
from repro.exceptions import ConfigurationError, QueryError
from repro.obs import trace
from repro.query.aggregate_query import AggregateQuery
from repro.serving.schema import ExplainRequest, query_payload
from repro.storage.envelopes import key_digest
from repro.storage.metastore import (
    JOB_TERMINAL_STATES,
    MetaStore,
    job_public_dict,
)

JOB_KINDS = ("explain_batch", "warm")


class JobManager:
    """Run serving workloads as durable, resumable background jobs.

    Parameters
    ----------
    store:
        The shared :class:`MetaStore`; job rows and per-query results
        live here.  The manager claims work under ``store.epoch``.
    backend:
        The serving tier that executes queries (a service or a cluster).
    tracer:
        Optional :class:`repro.obs.trace.Tracer`; every job run records a
        request trace (``job.run``) with per-query spans.
    resume:
        Run :meth:`resume_incomplete` on construction (crash recovery).
    """

    def __init__(self, store: MetaStore, backend,
                 tracer: Optional[trace.Tracer] = None,
                 resume: bool = True):
        self.store = store
        self.backend = backend
        self.tracer = tracer
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._running_job: Optional[str] = None
        self._counters = {"submitted": 0, "completed": 0, "failed": 0,
                          "cancelled": 0, "resumed": 0, "queries_resumed": 0,
                          "queries_executed": 0}
        self._worker = threading.Thread(target=self._worker_loop,
                                        name="repro-jobs-worker", daemon=True)
        self._worker.start()
        if resume:
            self.resume_incomplete()

    # ------------------------------------------------------------------ #
    # submission / inspection / cancellation
    # ------------------------------------------------------------------ #
    def submit(self, dataset: str, kind: str = "explain_batch",
               queries: Optional[Sequence] = None, k: Optional[int] = None,
               top: int = 8) -> str:
        """Create a job and hand back its id (the row is durable on return).

        ``queries`` accepts :class:`AggregateQuery` objects or wire-form
        payload dicts (they are normalized to payload dicts — the durable
        form must survive a restart with no live objects).  Every payload
        is validated *now* via :class:`ExplainRequest`, so a malformed
        batch fails at submission, not halfway through a background run.
        """
        if kind not in JOB_KINDS:
            raise ConfigurationError(
                f"unknown job kind {kind!r}; expected one of {JOB_KINDS}")
        if self._stop.is_set():
            raise ConfigurationError("JobManager is closed")
        if kind == "explain_batch":
            if not queries:
                raise QueryError("explain_batch job requires a non-empty "
                                 "'queries' list")
            payloads = []
            for query in queries:
                if isinstance(query, AggregateQuery):
                    payloads.append(query_payload(query))
                else:
                    payloads.append(dict(query))
            for position, payload in enumerate(payloads):
                try:
                    ExplainRequest.from_dict(payload)
                except Exception as error:
                    raise type(error)(
                        *(error.args or (f"queries[{position}] is invalid",)))
            body = {"queries": payloads, "k": k}
            total = len(payloads)
        else:
            body = {"top": int(top), "k": k}
            total = int(top)
        job_id = uuid.uuid4().hex[:12]
        self.store.create_job(job_id, kind, dataset,
                              json.dumps(body, sort_keys=True), total)
        with self._lock:
            self._counters["submitted"] += 1
        self._queue.put(job_id)
        return job_id

    def status(self, job_id: str,
               include_result: bool = False) -> Dict[str, object]:
        """The client-facing status dict; raises for unknown ids."""
        job = self.store.get_job(job_id)
        if job is None:
            raise QueryError(f"no such job {job_id!r}")
        public = job_public_dict(job)
        if include_result and job["state"] == "DONE" \
                and job["kind"] == "explain_batch":
            public["results"] = [json.loads(envelope) for _position, envelope
                                 in self.store.job_results(job_id)]
        return public

    def list_jobs(self, dataset: Optional[str] = None,
                  limit: int = 100) -> List[Dict[str, object]]:
        return [job_public_dict(job)
                for job in self.store.list_jobs(dataset, limit)]

    def cancel(self, job_id: str) -> Dict[str, object]:
        """Request cancellation; PENDING/RUNNING jobs flip to CANCELLED.

        A RUNNING job stops at its next between-queries boundary; its
        completed prefix stays durable (a re-submitted identical batch
        would still hit the envelope store).
        """
        if self.store.get_job(job_id) is None:
            raise QueryError(f"no such job {job_id!r}")
        changed = self.store.set_job_state(job_id, "CANCELLED",
                                           expect=("PENDING", "RUNNING"))
        if changed:
            with self._lock:
                self._counters["cancelled"] += 1
        return self.status(job_id)

    def wait(self, job_id: str, timeout: Optional[float] = None,
             poll_seconds: float = 0.02) -> Dict[str, object]:
        """Block until the job reaches a terminal state (or time out)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in JOB_TERMINAL_STATES:
                return status
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after {timeout}s")
            time.sleep(poll_seconds)

    def resume_incomplete(self) -> List[str]:
        """Crash recovery: re-queue stale RUNNING jobs, enqueue PENDING.

        Called on construction (``resume=True``); safe to call again.
        Returns the re-queued (previously RUNNING) job ids.
        """
        stale = self.store.requeue_stale_running()
        if stale:
            with self._lock:
                self._counters["resumed"] += len(stale)
        for job_id in self.store.pending_jobs():
            self._queue.put(job_id)
        return stale

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            try:
                job_id = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            if job_id is None:
                break
            try:
                self._run(job_id)
            except Exception:  # pragma: no cover - _run records failures
                pass

    def _run(self, job_id: str) -> None:
        if not self.store.claim_job(job_id):
            return  # cancelled before the claim, already claimed, or done
        job = self.store.get_job(job_id)
        if job is None:  # pragma: no cover - claimed rows exist
            return
        with self._lock:
            self._running_job = job_id
        request = None
        if self.tracer is not None:
            request = trace.begin_request(self.tracer, "job.run",
                                          dataset=str(job["dataset"]),
                                          job_id=job_id,
                                          kind=str(job["kind"]))
        try:
            if job["kind"] == "explain_batch":
                self._run_explain_batch(job)
            else:
                self._run_warm(job)
        except Exception as error:
            self.store.set_job_state(job_id, "FAILED", error=repr(error),
                                     expect=("RUNNING",))
            with self._lock:
                self._counters["failed"] += 1
        finally:
            with self._lock:
                self._running_job = None
            if request is not None:
                request.finish()

    def _checkpoint_or_cancel(self, job_id: str) -> Optional[str]:
        """Between-queries poll: 'stop', 'cancelled' or None (keep going)."""
        if self._stop.is_set():
            return "stop"
        if self.store.job_state(job_id) == "CANCELLED":
            return "cancelled"
        return None

    def _run_explain_batch(self, job: Dict[str, object]) -> None:
        job_id = str(job["id"])
        dataset = str(job["dataset"])
        body = json.loads(str(job["payload"]))
        default_k = body.get("k")
        requests = [ExplainRequest.from_dict(payload)
                    for payload in body["queries"]]
        total = len(requests)
        completed = self.store.job_result_positions(job_id)
        resumed = len([p for p in completed if p < total])
        if resumed:
            with self._lock:
                self._counters["queries_resumed"] += resumed
            trace.annotate(resumed_prefix=resumed)
        done = resumed
        self.store.job_progress(job_id, done, total)
        for position, parsed in enumerate(requests):
            if position in completed:
                continue
            verdict = self._checkpoint_or_cancel(job_id)
            if verdict is not None:
                self._abort(job_id, verdict)
                return
            with trace.span("job.query", position=position):
                served = self.backend.explain(
                    dataset, parsed.query,
                    k=parsed.k if parsed.k is not None else default_k)
            envelope: ExplanationEnvelope = served.envelope
            digest = key_digest(query_payload(parsed.query))
            self.store.add_job_result(job_id, position, digest,
                                      envelope.to_json())
            done += 1
            with self._lock:
                self._counters["queries_executed"] += 1
            # Progress doubles as the heartbeat: every completed query
            # rides the write-behind queue, so liveness costs no fsync.
            self.store.job_progress(job_id, done, total)
        # DONE must imply every result row is durable: barrier first.
        self.store.flush()
        summary = json.dumps({"queries": total, "resumed": resumed},
                             sort_keys=True)
        if self.store.set_job_state(job_id, "DONE", result_json=summary,
                                    expect=("RUNNING",)):
            with self._lock:
                self._counters["completed"] += 1

    def _run_warm(self, job: Dict[str, object]) -> None:
        job_id = str(job["id"])
        dataset = str(job["dataset"])
        body = json.loads(str(job["payload"]))
        top = int(body.get("top") or 8)
        with trace.span("job.warm", dataset=dataset, top=top):
            warmed = self.backend.warm(dataset, top=top)
        self.store.job_progress(job_id, int(warmed), int(warmed))
        self.store.flush()
        summary = json.dumps({"warmed": int(warmed)}, sort_keys=True)
        if self.store.set_job_state(job_id, "DONE", result_json=summary,
                                    expect=("RUNNING",)):
            with self._lock:
                self._counters["completed"] += 1

    def _abort(self, job_id: str, verdict: str) -> None:
        """Stop a RUNNING job: checkpoint (-> PENDING) or honor a cancel."""
        self.store.flush()
        if verdict == "stop":
            # Graceful shutdown: put the job back so a restart resumes it.
            self.store.set_job_state(job_id, "PENDING", expect=("RUNNING",))
        # verdict == "cancelled": the row already says CANCELLED.

    # ------------------------------------------------------------------ #
    # lifecycle / observability
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        with self._lock:
            counters = dict(self._counters)
            running = self._running_job
        counters["running_job"] = running
        counters["by_state"] = self.store.jobs_by_state()
        return counters

    def close(self, checkpoint: bool = True, timeout: float = 30.0) -> None:
        """Stop the worker; with ``checkpoint`` an in-flight job is
        flipped back to PENDING (after a flush) so a restart resumes it."""
        if self._stop.is_set():
            return
        self._stop.set()
        self._queue.put(None)
        self._worker.join(timeout=timeout)
        if not checkpoint:
            return
        # The worker's _abort already checkpointed if it saw the stop
        # event; this covers a worker that died without checkpointing.
        with self._lock:
            running = self._running_job
        if running is not None:  # pragma: no cover - worker join races
            self.store.flush()
            self.store.set_job_state(running, "PENDING", expect=("RUNNING",))
