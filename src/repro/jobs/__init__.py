"""Resumable background jobs over the durable metastore.

A :class:`~repro.jobs.manager.JobManager` runs ``explain_batch`` and
``warm`` workloads as jobs: submitted over HTTP (``POST /jobs``), claimed
by a worker thread, streaming every finished query's envelope into the
metastore as it completes.  A SIGKILLed process loses at most the
in-flight tail of the write-behind queue — on restart the stale RUNNING
job is re-queued by owner-epoch recovery and resumes *after* its
completed prefix instead of recomputing it.
"""

from repro.jobs.manager import JobManager

__all__ = ["JobManager"]
