"""Exception hierarchy for the repro package.

All exceptions raised deliberately by the library derive from
:class:`ReproError` so that callers can catch library failures with a single
``except`` clause while still letting programming errors (``TypeError``,
``KeyError`` from misuse of plain Python objects, ...) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SchemaError(ReproError):
    """A table or column was used in a way incompatible with its schema.

    Examples: referencing a column that does not exist, joining on columns
    with incompatible types, or adding a column whose length does not match
    the table.
    """


class QueryError(ReproError):
    """An aggregate query is malformed or references missing attributes."""


class ExtractionError(ReproError):
    """Knowledge-graph attribute extraction failed.

    Raised for instance when the extraction column does not exist in the
    input table or when the requested number of hops is not positive.
    """


class EntityLinkingError(ReproError):
    """The entity linker was configured or invoked incorrectly."""


class EstimationError(ReproError):
    """An information-theoretic quantity could not be estimated.

    Typically raised when arrays have mismatched lengths or when weights are
    negative.
    """


class MissingDataError(ReproError):
    """Missing-data handling (IPW, recoverability analysis) failed."""


class ExplanationError(ReproError):
    """The explanation search (MCIMR, brute force, baselines) was misused."""


class ConfigurationError(ReproError):
    """A configuration object contains invalid settings."""


class RequestValidationError(ReproError):
    """A serving-layer request payload failed strict validation.

    The HTTP front end maps this (and :class:`QueryError`) to a 400
    response whose body lists ``errors``.
    """

    def __init__(self, errors):
        if isinstance(errors, str):
            errors = [errors]
        self.errors = list(errors)
        super().__init__("; ".join(self.errors))


class DatasetNotRegisteredError(ReproError):
    """A request named a dataset the service has not registered (HTTP 404)."""
