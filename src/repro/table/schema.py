"""Table schemas: ordered column names with logical types."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.exceptions import SchemaError
from repro.table.column import DType


@dataclass(frozen=True)
class Schema:
    """An ordered mapping from column name to :class:`DType`.

    Schemas are value objects: comparing two schemas compares both the
    names, the order and the types, which the tests use to assert that
    relational operators preserve or transform schemas correctly.
    """

    fields: Tuple[Tuple[str, DType], ...] = field(default_factory=tuple)

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[str, DType]]) -> "Schema":
        """Build a schema from (name, dtype) pairs, checking for duplicates."""
        pairs = tuple((str(name), DType(dtype)) for name, dtype in pairs)
        names = [name for name, _ in pairs]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise SchemaError(f"Duplicate column name(s) in schema: {sorted(duplicates)}")
        return cls(pairs)

    @property
    def names(self) -> List[str]:
        """Column names in schema order."""
        return [name for name, _ in self.fields]

    @property
    def types(self) -> Dict[str, DType]:
        """Mapping from column name to its dtype."""
        return {name: dtype for name, dtype in self.fields}

    def dtype(self, name: str) -> DType:
        """The dtype of column ``name``; raises :class:`SchemaError` if absent."""
        for field_name, dtype in self.fields:
            if field_name == name:
                return dtype
        raise SchemaError(f"Column {name!r} not in schema; available: {self.names}")

    def __contains__(self, name: str) -> bool:
        return any(field_name == name for field_name, _ in self.fields)

    def __len__(self) -> int:
        return len(self.fields)

    def select(self, names: Iterable[str]) -> "Schema":
        """Schema restricted to ``names``, in the requested order."""
        types = self.types
        missing = [name for name in names if name not in types]
        if missing:
            raise SchemaError(f"Column(s) {missing} not in schema; available: {self.names}")
        return Schema(tuple((name, types[name]) for name in names))

    def drop(self, names: Iterable[str]) -> "Schema":
        """Schema without the columns in ``names``."""
        drop_set = set(names)
        return Schema(tuple((name, dtype) for name, dtype in self.fields if name not in drop_set))

    def merge(self, other: "Schema") -> "Schema":
        """Concatenate two schemas, raising on duplicate column names."""
        return Schema.from_pairs(tuple(self.fields) + tuple(other.fields))

    def numeric_names(self) -> List[str]:
        """Names of the numeric columns."""
        return [name for name, dtype in self.fields if dtype.is_numeric]

    def categorical_names(self) -> List[str]:
        """Names of the non-numeric columns."""
        return [name for name, dtype in self.fields if not dtype.is_numeric]
