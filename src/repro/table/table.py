"""The columnar :class:`Table` and its relational operators.

This is the dataframe substitute the rest of the library is built on.  A
table is an ordered collection of equally long :class:`~repro.table.column.Column`
objects.  Operations never mutate an existing table; they return new tables,
which keeps the explanation-search algorithms free of aliasing surprises.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SchemaError
from repro.table.aggregates import aggregate_values
from repro.table.column import Column, DType
from repro.table.expressions import Predicate
from repro.table.schema import Schema


class Table:
    """An immutable, in-memory columnar table."""

    def __init__(self, columns: Sequence[Column], name: str = "table"):
        names = [column.name for column in columns]
        duplicates = {name for name, count in Counter(names).items() if count > 1}
        if duplicates:
            raise SchemaError(f"Duplicate column name(s): {sorted(duplicates)}")
        lengths = {len(column) for column in columns}
        if len(lengths) > 1:
            raise SchemaError(f"Columns have differing lengths: {sorted(lengths)}")
        self.name = name
        self._columns: Dict[str, Column] = {column.name: column for column in columns}
        self._order: List[str] = names
        self._n_rows = lengths.pop() if lengths else 0

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_columns(cls, data: Mapping[str, Sequence[Any]], name: str = "table") -> "Table":
        """Build a table from a mapping of column name to raw values."""
        columns = [Column(column_name, values) for column_name, values in data.items()]
        return cls(columns, name=name)

    @classmethod
    def from_rows(cls, rows: Sequence[Mapping[str, Any]], columns: Optional[Sequence[str]] = None,
                  name: str = "table") -> "Table":
        """Build a table from a list of row dictionaries.

        Column order follows ``columns`` when given, otherwise the key order
        of the first row (with any extra keys from later rows appended).
        Missing keys become missing cells.
        """
        if columns is None:
            ordered: List[str] = []
            seen = set()
            for row in rows:
                for key in row:
                    if key not in seen:
                        ordered.append(key)
                        seen.add(key)
            columns = ordered
        data = {column: [row.get(column) for row in rows] for column in columns}
        return cls.from_columns(data, name=name)

    @classmethod
    def empty(cls, schema: Schema, name: str = "table") -> "Table":
        """A zero-row table with the given schema."""
        columns = [Column(field_name, [], dtype=dtype) for field_name, dtype in schema.fields]
        return cls(columns, name=name)

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self._n_rows

    @property
    def n_columns(self) -> int:
        """Number of columns."""
        return len(self._order)

    def __len__(self) -> int:
        return self._n_rows

    @property
    def column_names(self) -> List[str]:
        """Column names in table order."""
        return list(self._order)

    @property
    def schema(self) -> Schema:
        """The table's schema as a value object."""
        return Schema(tuple((name, self._columns[name].dtype) for name in self._order))

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._columns

    def column(self, name: str) -> Column:
        """Return the named column; raises :class:`SchemaError` if absent."""
        try:
            return self._columns[name]
        except KeyError as exc:
            raise SchemaError(
                f"Column {name!r} not found in table {self.name!r}; "
                f"available: {self._order}"
            ) from exc

    def __getitem__(self, name: str) -> Column:
        return self.column(name)

    def row(self, index: int) -> Dict[str, Any]:
        """Return row ``index`` as a dict (None for missing cells)."""
        if not 0 <= index < self._n_rows:
            raise IndexError(f"Row index {index} out of range for table with {self._n_rows} rows")
        return {name: self._columns[name][index] for name in self._order}

    def iter_rows(self) -> Iterable[Dict[str, Any]]:
        """Iterate over rows as dictionaries."""
        for index in range(self._n_rows):
            yield self.row(index)

    def to_rows(self) -> List[Dict[str, Any]]:
        """Materialise all rows as a list of dictionaries."""
        return list(self.iter_rows())

    def __repr__(self) -> str:
        return f"Table(name={self.name!r}, n_rows={self._n_rows}, columns={self._order})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self._order != other._order:
            return False
        return all(self._columns[name] == other._columns[name] for name in self._order)

    # ------------------------------------------------------------------ #
    # projection / column manipulation
    # ------------------------------------------------------------------ #
    def select(self, columns: Sequence[str], name: Optional[str] = None) -> "Table":
        """Project onto the given columns (in the given order)."""
        selected = [self.column(column_name) for column_name in columns]
        return Table(selected, name=name or self.name)

    def drop(self, columns: Iterable[str], name: Optional[str] = None) -> "Table":
        """Return a table without the given columns (absent names are ignored)."""
        drop_set = set(columns)
        kept = [self._columns[column_name] for column_name in self._order
                if column_name not in drop_set]
        return Table(kept, name=name or self.name)

    def with_column(self, column: Column, name: Optional[str] = None) -> "Table":
        """Add (or replace) a column."""
        if len(column) != self._n_rows and self._n_rows > 0:
            raise SchemaError(
                f"Cannot add column {column.name!r} of length {len(column)} "
                f"to a table with {self._n_rows} rows"
            )
        columns = [self._columns[existing] for existing in self._order
                   if existing != column.name]
        columns.append(column)
        return Table(columns, name=name or self.name)

    def rename(self, mapping: Mapping[str, str], name: Optional[str] = None) -> "Table":
        """Rename columns according to ``mapping`` (old name -> new name)."""
        columns = []
        for column_name in self._order:
            column = self._columns[column_name]
            if column_name in mapping:
                column = column.rename(mapping[column_name])
            columns.append(column)
        return Table(columns, name=name or self.name)

    def with_name(self, name: str) -> "Table":
        """Return the same table under a different name."""
        return Table([self._columns[column_name] for column_name in self._order], name=name)

    # ------------------------------------------------------------------ #
    # row selection
    # ------------------------------------------------------------------ #
    def filter(self, predicate_or_mask, name: Optional[str] = None) -> "Table":
        """Keep only the rows selected by a predicate or boolean mask."""
        if isinstance(predicate_or_mask, Predicate):
            mask = predicate_or_mask.mask(self)
        else:
            mask = np.asarray(predicate_or_mask, dtype=bool)
            if len(mask) != self._n_rows:
                raise SchemaError(
                    f"Filter mask length {len(mask)} does not match table with {self._n_rows} rows"
                )
        columns = [self._columns[column_name].filter(mask) for column_name in self._order]
        return Table(columns, name=name or self.name)

    def filter_view(self, predicate_or_mask,
                    name: Optional[str] = None) -> "Table":
        """Like :meth:`filter`, but columns materialise on first access.

        The returned :class:`FilteredTableView` answers the full table
        protocol and is value-identical to ``filter``'s result, yet it
        copies a column's rows only when that column is actually read.
        This is what keeps a context restriction over a wide table from
        fancy-indexing hundreds of columns the downstream computation
        never touches — the explanation pipeline reads a handful of
        candidate, exposure/outcome and predictor columns out of
        arbitrarily wide datasets.
        """
        if isinstance(predicate_or_mask, Predicate):
            mask = predicate_or_mask.mask(self)
        else:
            mask = np.asarray(predicate_or_mask, dtype=bool)
            if len(mask) != self._n_rows:
                raise SchemaError(
                    f"Filter mask length {len(mask)} does not match table "
                    f"with {self._n_rows} rows"
                )
        return FilteredTableView(self, mask, name=name)

    def take(self, indices: Sequence[int], name: Optional[str] = None) -> "Table":
        """Return the rows at ``indices`` (in that order)."""
        columns = [self._columns[column_name].take(indices) for column_name in self._order]
        return Table(columns, name=name or self.name)

    def head(self, n: int) -> "Table":
        """The first ``n`` rows."""
        n = max(0, min(n, self._n_rows))
        return self.take(list(range(n)))

    def sample(self, n: int, rng: np.random.Generator) -> "Table":
        """A uniform random sample of ``n`` rows without replacement."""
        n = min(n, self._n_rows)
        indices = rng.choice(self._n_rows, size=n, replace=False)
        return self.take(sorted(int(i) for i in indices))

    def sort_by(self, column: str, descending: bool = False) -> "Table":
        """Sort rows by a column (missing values sort last)."""
        col = self.column(column)
        keyed = []
        for index in range(self._n_rows):
            value = col[index]
            missing = value is None
            keyed.append((missing, value, index))
        keyed.sort(key=lambda item: (item[0], item[1] if not item[0] else 0),
                   reverse=descending)
        # Missing rows must stay last even in descending order.
        present = [item for item in keyed if not item[0]]
        absent = [item for item in keyed if item[0]]
        ordered = [item[2] for item in present + absent]
        return self.take(ordered)

    # ------------------------------------------------------------------ #
    # grouping and joining
    # ------------------------------------------------------------------ #
    def group_by(self, keys: Sequence[str]) -> "GroupBy":
        """Start a group-by over the given key columns."""
        return GroupBy(self, list(keys))

    def join(self, other: "Table", on: str, right_on: Optional[str] = None,
             how: str = "left", name: Optional[str] = None) -> "Table":
        """Join this table with ``other`` on equality of a key column.

        ``how`` may be ``"left"`` (keep all left rows; unmatched right columns
        become missing) or ``"inner"`` (keep only matching rows).  When the
        right key matches several right rows, the first match is used — the
        one-to-many handling of the paper is performed upstream by the
        knowledge-graph extractor, which aggregates multi-valued properties
        before the join.
        """
        right_key = right_on or on
        if how not in ("left", "inner"):
            raise SchemaError(f"Unsupported join type {how!r}; use 'left' or 'inner'")
        left_key_column = self.column(on)
        right_key_column = other.column(right_key)

        right_index: Dict[Any, int] = {}
        for row_index in range(other.n_rows):
            value = right_key_column[row_index]
            if value is None:
                continue
            right_index.setdefault(value, row_index)

        matches: List[Optional[int]] = []
        keep_rows: List[int] = []
        for row_index in range(self._n_rows):
            value = left_key_column[row_index]
            match = right_index.get(value) if value is not None else None
            if how == "inner" and match is None:
                continue
            keep_rows.append(row_index)
            matches.append(match)

        left_part = self.take(keep_rows)
        right_columns = []
        taken_names = set(self._order)
        for column_name in other.column_names:
            if column_name == right_key and right_key == on:
                continue
            column = other.column(column_name)
            values = [column[m] if m is not None else None for m in matches]
            out_name = column_name
            if out_name in taken_names:
                out_name = f"{other.name}.{column_name}"
            right_columns.append(Column(out_name, values, dtype=column.dtype))
        columns = [left_part.column(column_name) for column_name in left_part.column_names]
        columns.extend(right_columns)
        return Table(columns, name=name or self.name)

    def concat_rows(self, other: "Table", name: Optional[str] = None) -> "Table":
        """Stack another table with the same schema below this one."""
        if self._order != other._order:
            raise SchemaError(
                f"Cannot concatenate tables with different columns: {self._order} vs {other._order}"
            )
        columns = [self._columns[column_name].concat(other.column(column_name))
                   for column_name in self._order]
        return Table(columns, name=name or self.name)

    # ------------------------------------------------------------------ #
    # summaries
    # ------------------------------------------------------------------ #
    def missing_report(self) -> Dict[str, float]:
        """Fraction of missing cells per column."""
        return {column_name: self._columns[column_name].missing_fraction()
                for column_name in self._order}

    def describe(self) -> Dict[str, Dict[str, Any]]:
        """A light-weight per-column summary used by the MESA report."""
        summary: Dict[str, Dict[str, Any]] = {}
        for column_name in self._order:
            column = self._columns[column_name]
            entry: Dict[str, Any] = {
                "dtype": column.dtype.value,
                "missing_fraction": column.missing_fraction(),
                "n_unique": column.n_unique(),
            }
            if column.is_numeric():
                present = [v for v in column.non_missing_values()]
                if present:
                    entry["min"] = min(present)
                    entry["max"] = max(present)
                    entry["mean"] = sum(present) / len(present)
            summary[column_name] = entry
        return summary


class GroupBy:
    """Deferred group-by over a table; call :meth:`aggregate` to evaluate."""

    def __init__(self, table: Table, keys: List[str]):
        for key in keys:
            table.column(key)  # validates existence
        self.table = table
        self.keys = keys

    def groups(self) -> Dict[Tuple[Any, ...], List[int]]:
        """Mapping from key tuple to the list of row indices in that group.

        Rows whose key value is missing in any key column are excluded, the
        way SQL GROUP BY places NULLs in their own group — the explanation
        algorithms never want a "missing exposure" group.
        """
        key_columns = [self.table.column(key) for key in self.keys]
        result: Dict[Tuple[Any, ...], List[int]] = {}
        for row_index in range(self.table.n_rows):
            key_values = tuple(column[row_index] for column in key_columns)
            if any(value is None for value in key_values):
                continue
            result.setdefault(key_values, []).append(row_index)
        return result

    def aggregate(self, aggregations: Mapping[str, Tuple[str, str]],
                  name: Optional[str] = None) -> Table:
        """Aggregate each group.

        ``aggregations`` maps output column name to ``(aggregate_name,
        input_column)``, e.g. ``{"avg_salary": ("avg", "Salary")}``.  The
        result has one row per group with the key columns first.
        """
        groups = self.groups()
        ordered_keys = sorted(groups.keys(), key=lambda key: tuple(str(part) for part in key))
        rows: List[Dict[str, Any]] = []
        for key_values in ordered_keys:
            indices = groups[key_values]
            row: Dict[str, Any] = dict(zip(self.keys, key_values))
            for output_name, (aggregate_name, input_column) in aggregations.items():
                column = self.table.column(input_column)
                values = [column[i] for i in indices]
                row[output_name] = aggregate_values(aggregate_name, values)
            rows.append(row)
        output_columns = self.keys + list(aggregations.keys())
        return Table.from_rows(rows, columns=output_columns,
                               name=name or f"{self.table.name}_grouped")

    def sizes(self) -> Dict[Tuple[Any, ...], int]:
        """Number of rows in each group."""
        return {key: len(indices) for key, indices in self.groups().items()}

    def apply(self, function: Callable[[Table], Any]) -> Dict[Tuple[Any, ...], Any]:
        """Apply a function to the sub-table of each group."""
        return {key: function(self.table.take(indices))
                for key, indices in self.groups().items()}


class _LazyFilteredColumns(dict):
    """Column store of a :class:`FilteredTableView`.

    A plain dict whose ``__missing__`` materialises the requested column
    by filtering the source column with the view's row mask.  Every
    ``Table`` method reads columns through ``self._columns[name]``, so
    subclassing the store (rather than the access sites) makes the whole
    table protocol lazy at once.  Concurrent first reads of the same
    column are benign: both compute the same immutable value and the
    last assignment wins.
    """

    def __init__(self, source: Table, mask: np.ndarray):
        super().__init__()
        self.source = source
        self.mask = mask

    def __missing__(self, name: str) -> Column:
        if name not in self.source:
            raise KeyError(name)
        column = self.source.column(name).filter(self.mask)
        self[name] = column
        return column


class FilteredTableView(Table):
    """A row-filtered table whose columns copy lazily on first access.

    Value-identical to ``source.filter(mask)`` under every operation —
    unread columns simply have not been sliced yet.  Reading a column
    touches only that column's source pages, so a view over a shared-
    memory backed table keeps a worker's private footprint proportional
    to the columns it actually uses, not to the dataset width.
    """

    def __init__(self, source: Table, mask: np.ndarray,
                 name: Optional[str] = None):
        self.name = name or source.name
        self._columns = _LazyFilteredColumns(source, mask)
        self._order = list(source.column_names)
        self._n_rows = int(np.count_nonzero(mask))

    @property
    def schema(self) -> Schema:
        """Filtering preserves dtypes, so the source schema answers."""
        return self._columns.source.schema

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._columns.source

    def materialised_columns(self) -> List[str]:
        """The columns read (and therefore copied) so far, for tests."""
        return sorted(self._columns)
