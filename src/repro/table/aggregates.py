"""Aggregate functions for group-by queries.

The paper's query class supports "different aggregations" over the outcome
attribute; the functions here implement the usual SQL aggregates over a
column slice, skipping missing values the way SQL aggregates skip NULLs.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Sequence

from repro.exceptions import QueryError


def _present(values: Sequence[Any]) -> list:
    return [v for v in values if v is not None and not (isinstance(v, float) and math.isnan(v))]


def agg_mean(values: Sequence[Any]) -> float:
    """Arithmetic mean of the present values (None if no value is present)."""
    present = _present(values)
    if not present:
        return None
    return float(sum(present)) / len(present)


def agg_sum(values: Sequence[Any]) -> float:
    """Sum of present values (0.0 when empty, matching SQL's SUM over no rows as NULL→0 convention
    used throughout the benchmarks)."""
    present = _present(values)
    if not present:
        return None
    return float(sum(present))


def agg_count(values: Sequence[Any]) -> int:
    """Count of present (non-missing) values."""
    return len(_present(values))


def agg_count_all(values: Sequence[Any]) -> int:
    """Count of rows, including rows whose value is missing (SQL COUNT(*))."""
    return len(values)


def agg_min(values: Sequence[Any]) -> Any:
    """Minimum of the present values."""
    present = _present(values)
    if not present:
        return None
    return min(present)


def agg_max(values: Sequence[Any]) -> Any:
    """Maximum of the present values."""
    present = _present(values)
    if not present:
        return None
    return max(present)


def agg_median(values: Sequence[Any]) -> float:
    """Median of the present values."""
    present = sorted(_present(values))
    if not present:
        return None
    n = len(present)
    mid = n // 2
    if n % 2 == 1:
        return float(present[mid])
    return (float(present[mid - 1]) + float(present[mid])) / 2.0


def agg_std(values: Sequence[Any]) -> float:
    """Population standard deviation of the present values."""
    present = _present(values)
    if not present:
        return None
    mean = sum(present) / len(present)
    variance = sum((v - mean) ** 2 for v in present) / len(present)
    return math.sqrt(variance)


def agg_first(values: Sequence[Any]) -> Any:
    """First present value (used for one-to-many KG aggregation)."""
    present = _present(values)
    if not present:
        return None
    return present[0]


AGGREGATE_FUNCTIONS: Dict[str, Callable[[Sequence[Any]], Any]] = {
    "avg": agg_mean,
    "mean": agg_mean,
    "sum": agg_sum,
    "count": agg_count,
    "count_all": agg_count_all,
    "min": agg_min,
    "max": agg_max,
    "median": agg_median,
    "std": agg_std,
    "first": agg_first,
}


def aggregate_values(name: str, values: Sequence[Any]) -> Any:
    """Apply the named aggregate to a sequence of values.

    Raises :class:`QueryError` for an unknown aggregate name so that a typo
    in a query surfaces as a query error, not a ``KeyError``.
    """
    try:
        function = AGGREGATE_FUNCTIONS[name.lower()]
    except KeyError as exc:
        raise QueryError(
            f"Unknown aggregate {name!r}; supported: {sorted(AGGREGATE_FUNCTIONS)}"
        ) from exc
    return function(values)
