"""Typed columns with explicit missing-value masks.

A :class:`Column` stores its values in a numpy array plus a boolean
``missing`` mask of the same length.  Keeping the mask separate (instead of
using ``NaN`` sentinels) lets the same machinery work uniformly for string,
integer, float and boolean columns, and makes the missing-data handling of
Section 3.2 of the paper (selection attributes ``R_E``) a first-class
concept rather than an afterthought.
"""

from __future__ import annotations

import enum
import math
from typing import Any, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SchemaError


class DType(str, enum.Enum):
    """Logical column types supported by the table engine."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BOOL = "bool"

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type can take part in numeric aggregation."""
        return self in (DType.INT, DType.FLOAT)


_MISSING_SENTINELS = (None,)


def _is_missing_value(value: Any) -> bool:
    """Return True when ``value`` denotes a missing cell."""
    if value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    return False


def infer_dtype(values: Iterable[Any]) -> DType:
    """Infer the logical dtype of a sequence of raw Python values.

    Missing values are ignored during inference.  A mixed int/float column is
    promoted to float; any non-numeric, non-bool value makes the column a
    string column.
    """
    seen_float = False
    seen_int = False
    seen_bool = False
    seen_str = False
    for value in values:
        if _is_missing_value(value):
            continue
        if isinstance(value, bool) or isinstance(value, np.bool_):
            seen_bool = True
        elif isinstance(value, (int, np.integer)):
            seen_int = True
        elif isinstance(value, (float, np.floating)):
            seen_float = True
        else:
            seen_str = True
    if seen_str:
        return DType.STRING
    if seen_bool and not (seen_int or seen_float):
        return DType.BOOL
    if seen_float:
        return DType.FLOAT
    if seen_int:
        return DType.INT
    # An all-missing column defaults to string: it carries no information
    # either way and string is the safest round-trip type.
    return DType.STRING


class Column:
    """A single named, typed column with a missing-value mask."""

    __slots__ = ("name", "dtype", "_values", "_missing")

    def __init__(self, name: str, values: Sequence[Any], dtype: Optional[DType] = None,
                 missing: Optional[Sequence[bool]] = None):
        self.name = str(name)
        raw = list(values)
        if missing is None:
            missing_mask = np.array([_is_missing_value(v) for v in raw], dtype=bool)
        else:
            missing_mask = np.asarray(missing, dtype=bool)
            if len(missing_mask) != len(raw):
                raise SchemaError(
                    f"Column {name!r}: missing mask length {len(missing_mask)} "
                    f"does not match value length {len(raw)}"
                )
            explicit = np.array([_is_missing_value(v) for v in raw], dtype=bool)
            missing_mask = missing_mask | explicit
        if dtype is None:
            dtype = infer_dtype(raw)
        self.dtype = dtype
        self._missing = missing_mask
        self._values = self._coerce(raw, dtype, missing_mask)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce(raw: List[Any], dtype: DType, missing: np.ndarray) -> np.ndarray:
        """Coerce raw values into the storage array for ``dtype``."""
        n = len(raw)
        if dtype is DType.FLOAT:
            out = np.zeros(n, dtype=np.float64)
            for i, value in enumerate(raw):
                out[i] = np.nan if missing[i] else float(value)
            return out
        if dtype is DType.INT:
            # Integers are stored as float64 so that missing cells can keep a
            # NaN placeholder without forcing an object array.
            out = np.zeros(n, dtype=np.float64)
            for i, value in enumerate(raw):
                out[i] = np.nan if missing[i] else float(int(value))
            return out
        if dtype is DType.BOOL:
            out = np.zeros(n, dtype=object)
            for i, value in enumerate(raw):
                out[i] = None if missing[i] else bool(value)
            return out
        out = np.zeros(n, dtype=object)
        for i, value in enumerate(raw):
            out[i] = None if missing[i] else str(value)
        return out

    @classmethod
    def from_numpy(cls, name: str, values: np.ndarray, dtype: DType,
                   missing: Optional[np.ndarray] = None) -> "Column":
        """Fast-path constructor used internally when arrays are already coerced."""
        column = cls.__new__(cls)
        column.name = str(name)
        column.dtype = dtype
        column._values = values
        if missing is None:
            if dtype.is_numeric:
                missing = np.isnan(values.astype(np.float64))
            else:
                missing = np.array([v is None for v in values], dtype=bool)
        column._missing = np.asarray(missing, dtype=bool)
        return column

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]

    def __getitem__(self, index: int) -> Any:
        if self._missing[index]:
            return None
        value = self._values[index]
        if self.dtype is DType.INT:
            return int(value)
        if self.dtype is DType.FLOAT:
            return float(value)
        return value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        return (self.name == other.name and self.dtype == other.dtype
                and list(self.to_list()) == list(other.to_list()))

    def __repr__(self) -> str:
        return f"Column(name={self.name!r}, dtype={self.dtype.value}, n={len(self)})"

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def missing_mask(self) -> np.ndarray:
        """Boolean array, True where the cell is missing."""
        return self._missing.copy()

    @property
    def values(self) -> np.ndarray:
        """The raw storage array (floats for numeric columns, objects otherwise)."""
        return self._values

    def missing_count(self) -> int:
        """Number of missing cells."""
        return int(self._missing.sum())

    def missing_fraction(self) -> float:
        """Fraction of missing cells (0.0 for an empty column)."""
        if len(self) == 0:
            return 0.0
        return float(self._missing.mean())

    def is_numeric(self) -> bool:
        """Whether the column holds int or float values."""
        return self.dtype.is_numeric

    def to_list(self) -> List[Any]:
        """Materialise the column as a Python list with ``None`` for missing."""
        return [self[i] for i in range(len(self))]

    def non_missing_values(self) -> List[Any]:
        """All present (non-missing) values, in row order."""
        return [self[i] for i in range(len(self)) if not self._missing[i]]

    def unique(self) -> List[Any]:
        """Sorted list of distinct present values."""
        present = self.non_missing_values()
        return sorted(set(present), key=lambda v: (str(type(v)), v))

    def n_unique(self) -> int:
        """Number of distinct present values."""
        return len(set(self.non_missing_values()))

    def value_counts(self) -> dict:
        """Mapping from present value to its number of occurrences."""
        counts: dict = {}
        for value in self.non_missing_values():
            counts[value] = counts.get(value, 0) + 1
        return counts

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #
    def take(self, indices: Sequence[int]) -> "Column":
        """Return a new column with the rows at ``indices`` (in that order)."""
        idx = np.asarray(indices, dtype=np.intp)
        return Column.from_numpy(self.name, self._values[idx], self.dtype, self._missing[idx])

    def filter(self, mask: Sequence[bool]) -> "Column":
        """Return a new column keeping rows where ``mask`` is True."""
        mask_arr = np.asarray(mask, dtype=bool)
        if len(mask_arr) != len(self):
            raise SchemaError(
                f"Column {self.name!r}: filter mask length {len(mask_arr)} != {len(self)}"
            )
        return Column.from_numpy(self.name, self._values[mask_arr], self.dtype,
                                  self._missing[mask_arr])

    def rename(self, new_name: str) -> "Column":
        """Return a copy of this column under a different name."""
        return Column.from_numpy(new_name, self._values.copy(), self.dtype, self._missing.copy())

    def with_missing(self, missing: Sequence[bool]) -> "Column":
        """Return a copy with additional cells marked missing."""
        extra = np.asarray(missing, dtype=bool)
        if len(extra) != len(self):
            raise SchemaError("missing mask length mismatch")
        new_missing = self._missing | extra
        values = self._values.copy()
        if self.dtype.is_numeric:
            values[new_missing] = np.nan
        else:
            values[new_missing] = None
        return Column.from_numpy(self.name, values, self.dtype, new_missing)

    def numeric_array(self) -> np.ndarray:
        """Return float64 values with NaN for missing cells.

        Raises :class:`SchemaError` for non-numeric columns.
        """
        if not self.dtype.is_numeric:
            raise SchemaError(f"Column {self.name!r} of type {self.dtype.value} is not numeric")
        return self._values.astype(np.float64)

    def concat(self, other: "Column") -> "Column":
        """Stack another column of the same name/dtype below this one."""
        if other.dtype != self.dtype:
            raise SchemaError(
                f"Cannot concatenate column {self.name!r}: dtype {self.dtype.value} "
                f"vs {other.dtype.value}"
            )
        values = np.concatenate([self._values, other._values])
        missing = np.concatenate([self._missing, other._missing])
        return Column.from_numpy(self.name, values, self.dtype, missing)

    def codes(self) -> Tuple[np.ndarray, List[Any]]:
        """Factorise the column into integer codes.

        Returns ``(codes, categories)`` where missing cells receive code -1
        and ``categories[code]`` recovers the original value.  This is the
        encoding used throughout :mod:`repro.infotheory`.

        The factorisation is a single vectorised ``np.unique`` pass over the
        present cells; category order matches :meth:`unique` (all present
        values of a column share one logical type, so the sort is plain
        ascending order).
        """
        codes = np.full(len(self), -1, dtype=np.int64)
        present = ~self._missing
        if not present.any():
            return codes, []
        values = self._values[present]
        categories_array, inverse = np.unique(values, return_inverse=True)
        codes[present] = inverse
        if self.dtype is DType.INT:
            categories: List[Any] = [int(value) for value in categories_array]
        elif self.dtype is DType.FLOAT:
            categories = [float(value) for value in categories_array]
        elif self.dtype is DType.BOOL:
            categories = [bool(value) for value in categories_array]
        else:
            categories = list(categories_array)
        return codes, categories
