"""Row predicates used for WHERE clauses and context refinements.

The paper's queries carry a *context* ``C`` — the WHERE clause — and the
unexplained-subgroup search of Section 4.3 refines that context by adding
attribute-value assignments.  Predicates here are small immutable objects
that can evaluate themselves against a :class:`repro.table.Table` to produce
a boolean selection mask, and that print as readable SQL-ish fragments for
the MESA report.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, FrozenSet, Iterable, Sequence, Tuple

import numpy as np


class Predicate(ABC):
    """Base class for all row predicates."""

    @abstractmethod
    def mask(self, table) -> np.ndarray:
        """Return a boolean numpy array selecting the rows that satisfy the predicate."""

    @abstractmethod
    def columns(self) -> FrozenSet[str]:
        """Names of the columns the predicate reads."""

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


@dataclass(frozen=True)
class _AlwaysTrue(Predicate):
    """The empty context: selects every row."""

    def mask(self, table) -> np.ndarray:
        return np.ones(table.n_rows, dtype=bool)

    def columns(self) -> FrozenSet[str]:
        return frozenset()

    def __repr__(self) -> str:
        return "TRUE"

    def __reduce__(self):
        # Unpickle to the module singleton: code tests the empty context
        # with ``query.context is TRUE``, which must keep working for
        # queries that crossed a process boundary (the parallel batch
        # executor ships queries to forked workers).
        return (_resolve_true, ())


TRUE = _AlwaysTrue()


def _resolve_true() -> "_AlwaysTrue":
    return TRUE


def _column_values(table, column: str):
    return table.column(column)


@dataclass(frozen=True)
class Eq(Predicate):
    """``column = value`` (missing cells never match)."""

    column: str
    value: Any

    def mask(self, table) -> np.ndarray:
        col = _column_values(table, self.column)
        return np.array([(not m) and v == self.value
                         for v, m in zip(col.to_list(), col.missing_mask)], dtype=bool)

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.column})

    def __repr__(self) -> str:
        return f"{self.column} = {self.value!r}"


@dataclass(frozen=True)
class Ne(Predicate):
    """``column != value`` (missing cells never match)."""

    column: str
    value: Any

    def mask(self, table) -> np.ndarray:
        col = _column_values(table, self.column)
        return np.array([(not m) and v != self.value
                         for v, m in zip(col.to_list(), col.missing_mask)], dtype=bool)

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.column})

    def __repr__(self) -> str:
        return f"{self.column} != {self.value!r}"


@dataclass(frozen=True)
class In(Predicate):
    """``column IN (values)``."""

    column: str
    values: Tuple[Any, ...]

    def __init__(self, column: str, values: Iterable[Any]):
        object.__setattr__(self, "column", column)
        object.__setattr__(self, "values", tuple(values))

    def mask(self, table) -> np.ndarray:
        col = _column_values(table, self.column)
        allowed = set(self.values)
        return np.array([(not m) and v in allowed
                         for v, m in zip(col.to_list(), col.missing_mask)], dtype=bool)

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.column})

    def __repr__(self) -> str:
        return f"{self.column} IN {tuple(self.values)!r}"


class _NumericComparison(Predicate):
    """Shared implementation of the ordered comparisons."""

    _symbol = "?"

    def __init__(self, column: str, value: float):
        self.column = column
        self.value = value

    def _compare(self, array: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def mask(self, table) -> np.ndarray:
        col = _column_values(table, self.column)
        values = col.numeric_array()
        with np.errstate(invalid="ignore"):
            result = self._compare(values)
        result[col.missing_mask] = False
        return result

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.column})

    def __repr__(self) -> str:
        return f"{self.column} {self._symbol} {self.value!r}"

    def __eq__(self, other: object) -> bool:
        return (type(self) is type(other) and self.column == other.column
                and self.value == other.value)

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.column, self.value))


class Gt(_NumericComparison):
    """``column > value``."""

    _symbol = ">"

    def _compare(self, array: np.ndarray) -> np.ndarray:
        return array > self.value


class Ge(_NumericComparison):
    """``column >= value``."""

    _symbol = ">="

    def _compare(self, array: np.ndarray) -> np.ndarray:
        return array >= self.value


class Lt(_NumericComparison):
    """``column < value``."""

    _symbol = "<"

    def _compare(self, array: np.ndarray) -> np.ndarray:
        return array < self.value


class Le(_NumericComparison):
    """``column <= value``."""

    _symbol = "<="

    def _compare(self, array: np.ndarray) -> np.ndarray:
        return array <= self.value


@dataclass(frozen=True)
class Between(Predicate):
    """``low <= column <= high`` on a numeric column."""

    column: str
    low: float
    high: float

    def mask(self, table) -> np.ndarray:
        col = _column_values(table, self.column)
        values = col.numeric_array()
        with np.errstate(invalid="ignore"):
            result = (values >= self.low) & (values <= self.high)
        result[col.missing_mask] = False
        return result

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.column})

    def __repr__(self) -> str:
        return f"{self.column} BETWEEN {self.low!r} AND {self.high!r}"


@dataclass(frozen=True)
class IsNull(Predicate):
    """``column IS NULL``."""

    column: str

    def mask(self, table) -> np.ndarray:
        return _column_values(table, self.column).missing_mask

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.column})

    def __repr__(self) -> str:
        return f"{self.column} IS NULL"


@dataclass(frozen=True)
class NotNull(Predicate):
    """``column IS NOT NULL``."""

    column: str

    def mask(self, table) -> np.ndarray:
        return ~_column_values(table, self.column).missing_mask

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.column})

    def __repr__(self) -> str:
        return f"{self.column} IS NOT NULL"


class And(Predicate):
    """Conjunction of predicates."""

    def __init__(self, *operands: Predicate):
        flat = []
        for operand in operands:
            if isinstance(operand, And):
                flat.extend(operand.operands)
            elif isinstance(operand, _AlwaysTrue):
                continue
            else:
                flat.append(operand)
        self.operands: Tuple[Predicate, ...] = tuple(flat)

    def mask(self, table) -> np.ndarray:
        result = np.ones(table.n_rows, dtype=bool)
        for operand in self.operands:
            result &= operand.mask(table)
        return result

    def columns(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for operand in self.operands:
            result = result | operand.columns()
        return result

    def __repr__(self) -> str:
        if not self.operands:
            return "TRUE"
        return " AND ".join(f"({operand!r})" for operand in self.operands)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, And) and self.operands == other.operands

    def __hash__(self) -> int:
        return hash(("And", self.operands))


class Or(Predicate):
    """Disjunction of predicates."""

    def __init__(self, *operands: Predicate):
        self.operands: Tuple[Predicate, ...] = tuple(operands)

    def mask(self, table) -> np.ndarray:
        result = np.zeros(table.n_rows, dtype=bool)
        for operand in self.operands:
            result |= operand.mask(table)
        return result

    def columns(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for operand in self.operands:
            result = result | operand.columns()
        return result

    def __repr__(self) -> str:
        return " OR ".join(f"({operand!r})" for operand in self.operands)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Or) and self.operands == other.operands

    def __hash__(self) -> int:
        return hash(("Or", self.operands))


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a predicate."""

    operand: Predicate

    def mask(self, table) -> np.ndarray:
        return ~self.operand.mask(table)

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"NOT ({self.operand!r})"


def canonical_predicate_key(predicate: Predicate) -> str:
    """A canonical string key for a predicate, for use in context caches.

    Two predicates that select the same rows *by construction* — the same
    conjunction/disjunction up to operand order, the same ``IN`` list up to
    value order — map to the same key.  (Semantic equivalence beyond that,
    e.g. De Morgan rewrites, is not detected; a cache keyed on this string
    is still correct, it just stores such contexts separately.)
    """
    if isinstance(predicate, And):
        parts = sorted(canonical_predicate_key(operand) for operand in predicate.operands)
        if not parts:
            return "TRUE"
        return "AND(" + ",".join(parts) + ")"
    if isinstance(predicate, Or):
        parts = sorted(canonical_predicate_key(operand) for operand in predicate.operands)
        return "OR(" + ",".join(parts) + ")"
    if isinstance(predicate, Not):
        return "NOT(" + canonical_predicate_key(predicate.operand) + ")"
    if isinstance(predicate, In):
        values = ",".join(sorted(repr(value) for value in predicate.values))
        return f"IN({predicate.column},[{values}])"
    return repr(predicate)


def stable_key_digest(key: Sequence) -> int:
    """A process-stable 64-bit digest of a canonical cache key.

    Python's builtin ``hash`` is salted per process, so it cannot route a
    canonical query key consistently across the processes of a serving
    cluster (or across restarts).  This digest hashes the ``repr`` of the
    key tuple — canonical keys are built from plain strings, numbers and
    ``None``, whose reprs are deterministic — so every process maps the
    same key to the same shard.
    """
    payload = repr(tuple(key)).encode("utf-8")
    return int.from_bytes(hashlib.sha1(payload).digest()[:8], "big")


class Condition:
    """An ordered conjunction of attribute-value equality assignments.

    This is the representation of query *contexts* and their refinements
    used by the unexplained-subgroup search (Section 4.3).  A ``Condition``
    behaves like a predicate (it has :meth:`mask`), supports refinement by
    adding one more assignment, and has a canonical hashable form so that
    the pattern-graph traversal can generate each refinement at most once.
    """

    def __init__(self, assignments: Iterable[Tuple[str, Any]] = ()):  # noqa: D401
        pairs = tuple(sorted(((str(a), v) for a, v in assignments), key=lambda p: p[0]))
        seen = set()
        for attribute, _ in pairs:
            if attribute in seen:
                raise ValueError(f"Condition assigns attribute {attribute!r} more than once")
            seen.add(attribute)
        self.assignments: Tuple[Tuple[str, Any], ...] = pairs

    @classmethod
    def from_predicate(cls, predicate: Predicate) -> "Condition":
        """Build a Condition from a conjunction of equality predicates.

        Non-equality predicates cannot be represented and raise ``ValueError``.
        """
        if isinstance(predicate, _AlwaysTrue):
            return cls()
        if isinstance(predicate, Eq):
            return cls([(predicate.column, predicate.value)])
        if isinstance(predicate, And):
            assignments = []
            for operand in predicate.operands:
                if not isinstance(operand, Eq):
                    raise ValueError(f"Cannot convert {operand!r} into a Condition assignment")
                assignments.append((operand.column, operand.value))
            return cls(assignments)
        raise ValueError(f"Cannot convert {predicate!r} into a Condition")

    def mask(self, table) -> np.ndarray:
        result = np.ones(table.n_rows, dtype=bool)
        for attribute, value in self.assignments:
            result &= Eq(attribute, value).mask(table)
        return result

    def columns(self) -> FrozenSet[str]:
        return frozenset(attribute for attribute, _ in self.assignments)

    def refine(self, attribute: str, value: Any) -> "Condition":
        """Return a new condition with one more assignment."""
        return Condition(self.assignments + ((attribute, value),))

    def is_refinement_of(self, other: "Condition") -> bool:
        """True if this condition contains all assignments of ``other``."""
        return set(other.assignments).issubset(set(self.assignments))

    def to_predicate(self) -> Predicate:
        """Render the condition as a plain predicate."""
        if not self.assignments:
            return TRUE
        return And(*[Eq(attribute, value) for attribute, value in self.assignments])

    def __len__(self) -> int:
        return len(self.assignments)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Condition) and self.assignments == other.assignments

    def __hash__(self) -> int:
        return hash(self.assignments)

    def __repr__(self) -> str:
        if not self.assignments:
            return "Condition()"
        body = " AND ".join(f"{attribute} = {value!r}" for attribute, value in self.assignments)
        return f"Condition({body})"
