"""CSV input/output for :class:`repro.table.Table`.

The paper's datasets ship as CSV files; this module provides a small,
dependency-free reader/writer with automatic type inference so that the
synthetic datasets can be exported, inspected and re-loaded in examples and
tests.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.table.column import DType
from repro.table.table import Table

PathLike = Union[str, Path]

_MISSING_TOKENS = {"", "na", "n/a", "nan", "null", "none"}


def _parse_cell(raw: str) -> Any:
    """Parse a CSV cell into None / int / float / str."""
    stripped = raw.strip()
    if stripped.lower() in _MISSING_TOKENS:
        return None
    try:
        return int(stripped)
    except ValueError:
        pass
    try:
        return float(stripped)
    except ValueError:
        pass
    if stripped.lower() == "true":
        return True
    if stripped.lower() == "false":
        return False
    return stripped


def read_csv(path: PathLike, name: Optional[str] = None,
             columns: Optional[Sequence[str]] = None) -> Table:
    """Read a CSV file into a table, inferring column types.

    ``columns`` optionally restricts and orders the loaded columns.
    """
    path = Path(path)
    rows: List[Dict[str, Any]] = []
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        field_names = reader.fieldnames or []
        for record in reader:
            rows.append({key: _parse_cell(value) if value is not None else None
                         for key, value in record.items()})
    if columns is None:
        columns = field_names
    return Table.from_rows(rows, columns=list(columns), name=name or path.stem)


def write_csv(table: Table, path: PathLike) -> None:
    """Write a table to a CSV file, with empty cells for missing values."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        for row in table.iter_rows():
            output = []
            for column_name in table.column_names:
                value = row[column_name]
                if value is None:
                    output.append("")
                elif table.column(column_name).dtype is DType.INT:
                    output.append(str(int(value)))
                else:
                    output.append(str(value))
            writer.writerow(output)
