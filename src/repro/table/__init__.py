"""A small in-memory columnar table engine.

The paper's implementation sits on top of pandas; this package provides the
equivalent substrate from scratch: typed columns with explicit missing-value
masks, relational operators (filter, project, join, group-by with
aggregation), CSV input/output and numeric discretisation.  Everything the
core algorithms need — and nothing else — which keeps the behaviour easy to
verify in tests.
"""

from repro.table.aggregates import AGGREGATE_FUNCTIONS, aggregate_values
from repro.table.column import Column, DType, infer_dtype
from repro.table.discretize import (
    discretize_column,
    discretize_table,
    equal_frequency_bins,
    equal_width_bins,
)
from repro.table.expressions import (
    And,
    Between,
    Condition,
    Eq,
    Ge,
    Gt,
    In,
    IsNull,
    Le,
    Lt,
    Ne,
    Not,
    NotNull,
    Or,
    Predicate,
    TRUE,
)
from repro.table.io import read_csv, write_csv
from repro.table.schema import Schema
from repro.table.table import GroupBy, Table

__all__ = [
    "AGGREGATE_FUNCTIONS",
    "aggregate_values",
    "Column",
    "DType",
    "infer_dtype",
    "discretize_column",
    "discretize_table",
    "equal_frequency_bins",
    "equal_width_bins",
    "And",
    "Between",
    "Condition",
    "Eq",
    "Ge",
    "Gt",
    "In",
    "IsNull",
    "Le",
    "Lt",
    "Ne",
    "Not",
    "NotNull",
    "Or",
    "Predicate",
    "TRUE",
    "read_csv",
    "write_csv",
    "Schema",
    "GroupBy",
    "Table",
]
