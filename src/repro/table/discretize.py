"""Discretisation of numeric attributes.

The paper assumes numeric exposures and numeric candidate attributes are
binned before information-theoretic quantities are estimated ("To handle a
numerical exposure, one may bin this attribute", Section 2.1; "numerical
attributes are assumed to be binned", Section 4.3).  This module provides
equal-width and equal-frequency binning over columns and whole tables.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SchemaError
from repro.table.column import Column, DType
from repro.table.table import Table

DEFAULT_BINS = 8


def equal_width_bins(values: np.ndarray, n_bins: int) -> np.ndarray:
    """Bin edges dividing [min, max] of the finite values into equal widths."""
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return np.array([0.0, 1.0])
    low, high = float(finite.min()), float(finite.max())
    if low == high:
        high = low + 1.0
    return np.linspace(low, high, n_bins + 1)


def equal_frequency_bins(values: np.ndarray, n_bins: int) -> np.ndarray:
    """Bin edges placing (approximately) the same number of values per bin."""
    finite = np.sort(values[np.isfinite(values)])
    if finite.size == 0:
        return np.array([0.0, 1.0])
    quantiles = np.linspace(0.0, 1.0, n_bins + 1)
    edges = np.quantile(finite, quantiles)
    edges = np.unique(edges)
    if edges.size < 2:
        edges = np.array([float(finite.min()), float(finite.min()) + 1.0])
    return edges


def _bin_labels(edges: np.ndarray) -> List[str]:
    labels = []
    for i in range(len(edges) - 1):
        labels.append(f"[{edges[i]:.4g}, {edges[i + 1]:.4g}]")
    return labels


def discretize_column(column: Column, n_bins: int = DEFAULT_BINS,
                      strategy: str = "frequency") -> Tuple[Column, List[str]]:
    """Discretise a numeric column into labelled string bins.

    Returns ``(binned_column, labels)``.  Missing cells stay missing.  A
    non-numeric column is returned unchanged (with its unique values as
    labels) so that callers can discretise a heterogeneous attribute list
    without special-casing.
    """
    if not column.is_numeric():
        return column, [str(value) for value in column.unique()]
    if n_bins < 1:
        raise SchemaError(f"n_bins must be >= 1, got {n_bins}")
    values = column.numeric_array()
    if strategy == "width":
        edges = equal_width_bins(values, n_bins)
    elif strategy == "frequency":
        edges = equal_frequency_bins(values, n_bins)
    else:
        raise SchemaError(f"Unknown binning strategy {strategy!r}; use 'width' or 'frequency'")
    labels = _bin_labels(edges)
    # np.digitize assigns indices in 1..len(edges); clip so the max value
    # falls into the last bin rather than an overflow bin.
    bin_index = np.digitize(values, edges[1:-1], right=True)
    bin_index = np.clip(bin_index, 0, len(labels) - 1)
    out_values: List[Optional[str]] = []
    for i in range(len(column)):
        if column.missing_mask[i]:
            out_values.append(None)
        else:
            out_values.append(labels[int(bin_index[i])])
    return Column(column.name, out_values, dtype=DType.STRING), labels


def discretize_table(table: Table, columns: Optional[Sequence[str]] = None,
                     n_bins: int = DEFAULT_BINS, strategy: str = "frequency",
                     skip: Sequence[str] = ()) -> Table:
    """Discretise every numeric column of a table (or a chosen subset).

    ``skip`` lists columns that must be left untouched (typically the outcome
    attribute, whose raw numeric values are needed for aggregation).
    """
    if columns is None:
        columns = table.schema.numeric_names()
    skip_set = set(skip)
    result = table
    for column_name in columns:
        if column_name in skip_set:
            continue
        column = table.column(column_name)
        if not column.is_numeric():
            continue
        binned, _ = discretize_column(column, n_bins=n_bins, strategy=strategy)
        result = result.with_column(binned)
    return result
