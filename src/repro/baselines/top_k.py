"""Top-K baseline: rank attributes by individual explanation power only.

Equivalent to the Max-Relevance criterion without any redundancy control —
the paper shows it tends to pick highly correlated attributes (e.g. both
``Year Low F`` and ``Year Avg F``), which wastes explanation slots.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.core.explanation import Explanation
from repro.core.problem import CorrelationExplanationProblem
from repro.core.responsibility import responsibilities


def top_k(problem: CorrelationExplanationProblem, k: int = 3,
          candidates: Optional[Sequence[str]] = None) -> Explanation:
    """Select the ``k`` attributes with the lowest individual ``I(O;T|C,E)``."""
    if candidates is None:
        candidates = problem.candidates
    start = time.perf_counter()
    relevance = problem.score_candidates(candidates)
    ranked = sorted(candidates, key=relevance.__getitem__)
    selected = tuple(ranked[:max(0, k)])
    runtime = time.perf_counter() - start
    baseline = problem.baseline_cmi()
    explainability = problem.explanation_score(selected) if selected else baseline
    return Explanation(
        attributes=selected,
        explainability=explainability,
        baseline_cmi=baseline,
        objective=problem.objective(selected),
        responsibilities=responsibilities(problem, selected),
        method="top_k",
        runtime_seconds=runtime,
    )
