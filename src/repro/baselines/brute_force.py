"""Brute-force optimal solution of the Correlation-Explanation problem.

Enumerates every attribute subset up to a maximum size and returns the one
minimising the Definition 2.1 objective ``I(O;T|E,C) * |E|``.  The paper
uses this as the gold standard for explanation quality (Table 2, Figure 2)
but can only run it on the small datasets after pruning; the same practical
limits apply here, so the function guards against explosively large
candidate sets.
"""

from __future__ import annotations

import itertools
import time
from typing import Optional, Sequence

from repro.core.explanation import Explanation
from repro.core.problem import CorrelationExplanationProblem
from repro.core.responsibility import responsibilities
from repro.exceptions import ExplanationError


def brute_force(problem: CorrelationExplanationProblem, k: int = 3,
                candidates: Optional[Sequence[str]] = None,
                max_candidates: int = 40,
                improvement_epsilon: float = 1e-9) -> Explanation:
    """Exhaustively search all subsets of size 1..k.

    Parameters
    ----------
    problem:
        The problem instance.
    k:
        Maximum subset size considered.
    candidates:
        Candidate attributes (defaults to ``problem.candidates``).
    max_candidates:
        Safety bound — with more candidates the enumeration is refused, the
        same way the paper only runs Brute-Force on the small datasets.
    improvement_epsilon:
        A subset only replaces the incumbent when its objective is smaller by
        more than this epsilon, which makes ties deterministic (first, i.e.
        smallest / lexicographically earliest, subset wins).
    """
    if candidates is None:
        candidates = problem.candidates
    candidates = list(candidates)
    if len(candidates) > max_candidates:
        raise ExplanationError(
            f"Brute-force search over {len(candidates)} candidates is infeasible "
            f"(limit {max_candidates}); prune the candidate set first"
        )
    start = time.perf_counter()
    baseline = problem.baseline_cmi()
    best_attributes: tuple = ()
    best_objective = baseline  # the empty explanation has objective I(O;T|C)
    for size in range(1, max(1, k) + 1):
        for subset in itertools.combinations(candidates, size):
            objective = problem.objective(subset)
            if objective < best_objective - improvement_epsilon:
                best_objective = objective
                best_attributes = subset
    runtime = time.perf_counter() - start
    explainability = (problem.explanation_score(best_attributes)
                      if best_attributes else baseline)
    return Explanation(
        attributes=tuple(best_attributes),
        explainability=explainability,
        baseline_cmi=baseline,
        objective=best_objective if best_attributes else baseline,
        responsibilities=responsibilities(problem, best_attributes),
        method="brute_force",
        runtime_seconds=runtime,
    )
