"""HypDB-style causal-analysis baseline.

HypDB [Salimi et al., SIGMOD 2018] detects confounders of an OLAP query by
causal analysis: a candidate must be statistically associated with both the
exposure and the outcome (a covariate on a back-door path), and candidates
are ranked by responsibility.  Its runtime grows exponentially with the
number of candidate attributes, which is why the paper caps the candidate
set at 50 attributes (chosen uniformly at random) to keep it feasible.  This
re-implementation reproduces the comparison behaviour:

1. cap the candidate list at ``max_attributes`` (random subsample);
2. keep candidates associated with the exposure *and* with the outcome given
   the exposure (the back-door requirement);
3. greedily rank the survivors by the drop in ``I(O;T|C,·)`` they produce and
   return the top-k by responsibility.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.core.explanation import Explanation
from repro.core.problem import CorrelationExplanationProblem
from repro.core.responsibility import responsibilities
from repro.utils.rng import SeedLike, make_rng


def hypdb(problem: CorrelationExplanationProblem, k: int = 3,
          candidates: Optional[Sequence[str]] = None,
          max_attributes: int = 50,
          association_threshold: float = 0.01,
          seed: SeedLike = 0) -> Explanation:
    """Run the HypDB-style confounder detection.

    Parameters
    ----------
    problem:
        The problem instance.
    k:
        Number of confounders reported (top-k by responsibility).
    candidates:
        Candidate attributes (defaults to ``problem.candidates``).
    max_attributes:
        Cap on the number of candidates considered; excess candidates are
        dropped uniformly at random, mirroring the paper's experimental
        protocol for HypDB.
    association_threshold:
        Mutual-information threshold below which a candidate is considered
        not associated with the exposure / outcome.
    seed:
        Seed of the random subsampling.
    """
    if candidates is None:
        candidates = problem.candidates
    candidates = list(candidates)
    rng = make_rng(seed)
    start = time.perf_counter()
    if len(candidates) > max_attributes:
        chosen = rng.choice(len(candidates), size=max_attributes, replace=False)
        candidates = [candidates[int(i)] for i in sorted(chosen)]

    confounders: List[str] = []
    for attribute in candidates:
        associated_with_exposure = problem.pairwise_mi(attribute, problem.exposure) \
            > association_threshold
        if not associated_with_exposure:
            continue
        outcome_test = problem.independence_test(problem.outcome, attribute,
                                                 [problem.exposure],
                                                 threshold=association_threshold,
                                                 n_permutations=0)
        if outcome_test.independent:
            continue
        confounders.append(attribute)

    # Greedy ranking by CMI drop (HypDB's responsibility ordering); each
    # round scores the surviving confounders in one batched kernel pass
    # against the shared fused coding of the selected set.
    selected: List[str] = []
    remaining = list(confounders)
    while remaining and len(selected) < max(0, k):
        scores = problem.score_candidates(remaining, selected)
        best = min(remaining, key=scores.__getitem__)
        improvement = problem.cmi(selected) - scores[best]
        if improvement <= 0 and selected:
            break
        selected.append(best)
        remaining.remove(best)
    runtime = time.perf_counter() - start
    baseline = problem.baseline_cmi()
    explainability = problem.explanation_score(selected) if selected else baseline
    return Explanation(
        attributes=tuple(selected),
        explainability=explainability,
        baseline_cmi=baseline,
        objective=problem.objective(selected),
        responsibilities=responsibilities(problem, selected),
        method="hypdb",
        runtime_seconds=runtime,
    )
