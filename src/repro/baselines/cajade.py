"""CajaDE-style baseline: outcome-independent pattern explanations.

CajaDE [Li et al., SIGMOD 2021] explains query results with patterns
(attribute-value predicates from joined context tables) that are unevenly
distributed across the groups of the query result.  Crucially, the patterns
are chosen *independently of the outcome attribute* — which is exactly why
the paper finds its explanations unhelpful for understanding an
exposure/outcome correlation.  This re-implementation scores every
(attribute, value) pattern by how skewed its distribution is across the
exposure groups and reports the attributes of the top patterns.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.explanation import Explanation
from repro.core.problem import CorrelationExplanationProblem
from repro.core.responsibility import responsibilities


def _pattern_skew(problem: CorrelationExplanationProblem, attribute: str) -> float:
    """How unevenly the attribute's values are distributed across exposure groups.

    Measured as the total-variation-like statistic
    ``max_value max_group |P(value | group) - P(value)|`` over the encoded
    attribute; high skew means the pattern separates the groups well.
    """
    codes = problem.frame.codes(attribute)
    groups = problem.frame.codes(problem.exposure)
    present = (codes >= 0) & (groups >= 0)
    codes, groups = codes[present], groups[present]
    if len(codes) == 0:
        return 0.0
    n_values = int(codes.max()) + 1
    overall = np.bincount(codes, minlength=n_values) / len(codes)
    skew = 0.0
    for group in np.unique(groups):
        in_group = codes[groups == group]
        if len(in_group) == 0:
            continue
        group_dist = np.bincount(in_group, minlength=n_values) / len(in_group)
        skew = max(skew, float(np.abs(group_dist - overall).max()))
    return skew


def cajade(problem: CorrelationExplanationProblem, k: int = 3,
           candidates: Optional[Sequence[str]] = None) -> Explanation:
    """Select the ``k`` attributes whose value patterns are most group-skewed."""
    if candidates is None:
        candidates = problem.candidates
    start = time.perf_counter()
    scores: Dict[str, float] = {attribute: _pattern_skew(problem, attribute)
                                for attribute in candidates}
    ranked = sorted(scores, key=lambda attribute: -scores[attribute])
    selected: Tuple[str, ...] = tuple(ranked[:max(0, k)])
    runtime = time.perf_counter() - start
    baseline = problem.baseline_cmi()
    explainability = problem.explanation_score(selected) if selected else baseline
    return Explanation(
        attributes=selected,
        explainability=explainability,
        baseline_cmi=baseline,
        objective=problem.objective(selected),
        responsibilities=responsibilities(problem, selected),
        method="cajade",
        runtime_seconds=runtime,
    )
