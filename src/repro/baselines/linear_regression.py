"""Linear-regression (OLS) baseline.

Regresses the outcome on the candidate attributes (numeric candidates enter
directly, categorical ones are one-hot encoded) and reports the top-k
attributes with the largest standardised coefficients whose p-value is below
0.05.  As in the paper, the baseline frequently fails to produce an
explanation at all (no coefficient is significant) and is blind to
non-linear relationships — it exists to reproduce that comparison, not to be
a good explanation method.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.core.explanation import Explanation
from repro.core.problem import CorrelationExplanationProblem
from repro.core.responsibility import responsibilities


def _design_matrix(problem: CorrelationExplanationProblem,
                   candidates: Sequence[str]) -> Tuple[np.ndarray, List[Tuple[str, int]]]:
    """Dense design matrix and a (attribute, column) map for every column."""
    table = problem.context_table
    columns: List[np.ndarray] = []
    owners: List[Tuple[str, int]] = []
    for attribute in candidates:
        column = table.column(attribute)
        if column.is_numeric():
            values = column.numeric_array()
            fill = np.nanmean(values) if np.isfinite(values).any() else 0.0
            values = np.where(np.isnan(values), fill, values)
            std = values.std()
            if std > 0:
                columns.append((values - values.mean()) / std)
                owners.append((attribute, len(columns) - 1))
        else:
            codes = problem.frame.codes(attribute)
            n_categories = int(codes.max()) + 1 if codes.max() >= 0 else 0
            for category in range(1, n_categories):
                indicator = (codes == category).astype(np.float64)
                if indicator.std() > 0:
                    columns.append(indicator - indicator.mean())
                    owners.append((attribute, len(columns) - 1))
    if not columns:
        return np.zeros((table.n_rows, 0)), []
    return np.column_stack(columns), owners


def ols_with_pvalues(design: np.ndarray, response: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Ordinary least squares returning (coefficients, p-values).

    An intercept column is added internally; its coefficient/p-value are not
    returned.  Degenerate designs fall back to the pseudo-inverse.
    """
    n_rows, n_features = design.shape
    augmented = np.hstack([np.ones((n_rows, 1)), design])
    coefficients, _, rank, _ = np.linalg.lstsq(augmented, response, rcond=None)
    residuals = response - augmented @ coefficients
    dof = max(1, n_rows - rank)
    sigma2 = float(residuals @ residuals) / dof
    covariance = sigma2 * np.linalg.pinv(augmented.T @ augmented)
    standard_errors = np.sqrt(np.clip(np.diag(covariance), 1e-300, None))
    t_values = coefficients / standard_errors
    p_values = 2.0 * stats.t.sf(np.abs(t_values), dof)
    return coefficients[1:], p_values[1:]


def linear_regression(problem: CorrelationExplanationProblem, k: int = 3,
                      candidates: Optional[Sequence[str]] = None,
                      p_value_threshold: float = 0.05) -> Explanation:
    """The LR baseline: top-k significant standardised coefficients."""
    if candidates is None:
        candidates = problem.candidates
    start = time.perf_counter()
    outcome_column = problem.context_table.column(problem.outcome)
    if outcome_column.is_numeric():
        response = outcome_column.numeric_array()
        fill = np.nanmean(response) if np.isfinite(response).any() else 0.0
        response = np.where(np.isnan(response), fill, response)
    else:
        response = problem.frame.codes(problem.outcome).astype(np.float64)
    design, owners = _design_matrix(problem, candidates)
    selected: Tuple[str, ...] = ()
    if design.shape[1] > 0:
        coefficients, p_values = ols_with_pvalues(design, response)
        strength: Dict[str, float] = {}
        for (attribute, column_index) in owners:
            if p_values[column_index] < p_value_threshold:
                magnitude = abs(float(coefficients[column_index]))
                strength[attribute] = max(strength.get(attribute, 0.0), magnitude)
        ranked = sorted(strength, key=lambda attribute: -strength[attribute])
        selected = tuple(ranked[:max(0, k)])
    runtime = time.perf_counter() - start
    baseline = problem.baseline_cmi()
    explainability = problem.explanation_score(selected) if selected else baseline
    return Explanation(
        attributes=selected,
        explainability=explainability,
        baseline_cmi=baseline,
        objective=problem.objective(selected),
        responsibilities=responsibilities(problem, selected),
        method="linear_regression",
        runtime_seconds=runtime,
    )
