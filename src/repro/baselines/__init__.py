"""Baseline explanation algorithms the paper compares MESA against.

* :func:`brute_force` — exhaustive search over attribute subsets
  (the optimum of Definition 2.1; only feasible after pruning / on small
  candidate sets).
* :func:`top_k` — rank attributes by individual explanation power only
  (max relevance, no redundancy control).
* :func:`linear_regression` — OLS of the outcome on the candidate
  attributes; the explanation is the top-k significant coefficients.
* :func:`hypdb` — a re-implementation of the HypDB-style causal-analysis
  baseline: candidate confounders must be associated with both the exposure
  and the outcome, ranked by their responsibility, with an attribute-count
  cap reflecting its exponential scaling.
* :func:`cajade` — a CajaDE-style baseline: patterns (attribute-value pairs)
  most unevenly distributed across the exposure groups, chosen independently
  of the outcome.

Every baseline is also registered with the engine's explainer registry
(:func:`repro.engine.registry.get_explainer`), which is how the evaluation
harness and serving code run them behind the uniform
:class:`~repro.engine.registry.Explainer` surface.
"""

from repro.baselines.brute_force import brute_force
from repro.baselines.cajade import cajade
from repro.baselines.hypdb import hypdb
from repro.baselines.linear_regression import linear_regression
from repro.baselines.top_k import top_k

__all__ = ["brute_force", "cajade", "hypdb", "linear_regression", "top_k"]
