"""Row partitioning for the sharded data plane."""

from __future__ import annotations

from typing import List, Tuple

from repro.exceptions import ConfigurationError


def row_ranges(n_rows: int, n_shards: int) -> List[Tuple[int, int]]:
    """Split ``0..n_rows`` into ``n_shards`` balanced contiguous ranges.

    Every shard receives ``n_rows // n_shards`` rows, the first
    ``n_rows % n_shards`` shards one extra — so shard sizes differ by at
    most one row and each worker's resident slice stays ``O(rows / N)``.
    Empty ranges are legal (more shards than rows): the partial counts of
    an empty slice are all-zero and merge away.
    """
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    if n_rows < 0:
        raise ConfigurationError(f"n_rows must be >= 0, got {n_rows}")
    base, extra = divmod(n_rows, n_shards)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for shard in range(n_shards):
        stop = start + base + (1 if shard < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges
