"""A CorrelationExplanationProblem whose estimates run on a shard pool.

:class:`ShardedExplanationProblem` keeps the *control plane* of
:class:`~repro.core.problem.CorrelationExplanationProblem` — the encoded
frame, the memo caches, the search-facing API — but routes every count
underneath an estimate through a
:class:`~repro.distributed.coordinator.ShardPool`: the coordinator sends
fuse *recipes* (not data), workers return partial count tensors of their
row ranges, and the entropy step runs here on the merged totals.

Exactness.  Unweighted estimates are *identical* to the single-process
kernel: integer partial counts merge exactly, and using global (unmasked)
cardinalities only pads the count tensors with empty cells, which the
entropy step ignores.  IPW-weighted estimates agree to float summation
order (the property tests assert 1e-9).  Permutation tests stratify
within (shard × stratum) with deterministic per-shard RNG streams — a
different (equally valid) draw from the same null than the single-process
stream, so p-values differ while the engine-consumed boolean verdicts
agree except on knife-edge cases.

Hybrid by design: terms whose count tensors would exceed the dense-cell
budget fall back to the coordinator-local kernel (the frame holds every
column anyway — the pool exists to keep *worker* memory ``O(rows / N)``),
and :meth:`restricted_to` (the subgroup search, which re-estimates over
arbitrary row masks) returns a plain local problem.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.problem import CorrelationExplanationProblem
from repro.distributed.coordinator import ShardContext, ShardPool
from repro.exceptions import ReproError
from repro.infotheory import kernel, permutation
from repro.obs import trace
from repro.infotheory.independence import (
    DEFAULT_CMI_THRESHOLD,
    IndependenceResult,
)


class ShardedExplanationProblem(CorrelationExplanationProblem):
    """The scatter-gather face of the correlation-explanation oracle.

    Constructed exactly like the base problem plus ``pool`` (a started
    :class:`ShardPool`) and ``shard_ctx`` (the pool's context handle for
    this problem's context frame).  ``use_kernel=False`` disables the
    kernel *and* the data plane — estimates run on the local reference
    estimators.
    """

    def __init__(self, pool: ShardPool, shard_ctx: ShardContext,
                 *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.pool = pool
        self.shard_ctx = shard_ctx
        #: Recipe caches mirroring the base class's fused-code caches —
        #: (steps, cardinality) per conditioning tuple.  Entries are tiny
        #: (the codes live in the workers), but bounded all the same.
        self._steps_cache: "OrderedDict[Tuple[str, ...], Tuple[Tuple, int]]" = \
            OrderedDict()
        self._plain_steps_cache: "OrderedDict[Tuple[str, ...], Tuple[Tuple, int]]" = \
            OrderedDict()
        self._weight_keys_by_attr: Dict[str, str] = {
            attribute: "w:" + attribute + ":" + hashlib.sha1(
                np.ascontiguousarray(weights,
                                     dtype=np.float64).tobytes()
            ).hexdigest()[:10]
            for attribute, weights in self.attribute_weights.items()}

    # ------------------------------------------------------------------ #
    # column provider (the pool slices these per shard)
    # ------------------------------------------------------------------ #
    def _provider(self, key: str) -> np.ndarray:
        if key.startswith("p:"):
            return self.frame.codes(key[2:])
        if key.startswith("m:"):
            return self.frame.codes(key[2:], missing_as_category=True)
        if key.startswith("w:"):
            attribute = key[2:].rsplit(":", 1)[0]
            return np.asarray(self.attribute_weights[attribute],
                              dtype=np.float64)
        raise ReproError(f"unknown shard column key {key!r}")

    def _weight_keys(self, attributes: Sequence[str]) -> Optional[List[str]]:
        """Worker-side weight columns in ``_weights_for`` product order.

        Weight vectors vary per query (they depend on the IPW predictor
        set), so the key embeds a content digest — a context's workers may
        hold several vectors for one attribute without collisions.
        """
        keys = [self._weight_keys_by_attr[attribute]
                for attribute in attributes
                if attribute in self._weight_keys_by_attr]
        return keys or None

    def _card_of(self, attribute: str, plain: bool) -> int:
        codes = self.frame.codes(attribute) if plain \
            else self.frame.codes(attribute, missing_as_category=True)
        return kernel.code_cardinality(codes)

    # ------------------------------------------------------------------ #
    # fuse recipes (the distributed counterpart of _joint_for)
    # ------------------------------------------------------------------ #
    def _compact_limit(self) -> int:
        return max(1024, 2 * self.n_rows)

    def _steps_for(self, key: Tuple[str, ...],
                   plain: bool = False) -> Tuple[Tuple, int]:
        """Fuse recipe + cardinality of a conditioning set (cached).

        Mirrors the base ``_joint_for``: left-to-right fuses with the same
        compaction threshold — except compaction is *global*
        (:meth:`ShardPool.compact`), so every shard relabels identically.
        Compaction is value-preserving (sorted relabelling keeps partition
        and label order), so a decision mismatch against the
        single-process path could only change performance, never a value.
        """
        if not key:
            return (), 1
        cache = self._plain_steps_cache if plain else self._steps_cache
        cached = cache.get(key)
        if cached is not None:
            cache.move_to_end(key)
            return cached
        prefix = "p:" if plain else "m:"
        if len(key) == 1:
            entry: Tuple[Tuple, int] = (
                (("col", prefix + key[0]),), self._card_of(key[0], plain))
        else:
            base_steps, base_card = self._steps_for(key[:-1], plain=plain)
            extra_card = self._card_of(key[-1], plain)
            steps = base_steps + (("fuse", prefix + key[-1], extra_card),)
            card = base_card * extra_card
            if card > self._compact_limit():
                token, card = self.pool.compact(self.shard_ctx, steps,
                                                self._provider)
                steps = steps + (("relabel", token),)
            entry = (steps, card)
        cache[key] = entry
        while len(cache) > self.MAX_JOINT_CACHE:
            cache.popitem(last=False)
        return entry

    # ------------------------------------------------------------------ #
    # local fallback (exact: the frame holds every column)
    # ------------------------------------------------------------------ #
    def _local_cmi_value(self, key: Tuple[str, ...]) -> float:
        fused, card = self._joint_for(key)
        return kernel.contingency_cmi(
            self.frame.codes(self.outcome), self.frame.codes(self.exposure),
            fused, n_z=card, weights=self._weights_for(key))

    def _count_hook(self, name: str, increment: int = 1) -> None:
        if self.counter_hook is not None:
            self.counter_hook(name, increment)

    # ------------------------------------------------------------------ #
    # information-theoretic oracle (scatter-gather)
    # ------------------------------------------------------------------ #
    def cmi(self, conditioning: Sequence[str] = ()) -> float:
        if not self.use_kernel:
            return super().cmi(conditioning)
        key = tuple(sorted(conditioning))
        cached = self._cmi_cache.get(key)
        if cached is not None:
            return cached
        steps, card = self._steps_for(key)
        n_x = self._card_of(self.outcome, plain=True)
        n_y = self._card_of(self.exposure, plain=True)
        if n_x * n_y * card > kernel.DENSE_CELL_LIMIT:
            self._count_hook("shard_local_fallback")
            value = self._local_cmi_value(key)
        else:
            job = {"kind": "cmi",
                   "x": (("col", "p:" + self.outcome),),
                   "y": (("col", "p:" + self.exposure),),
                   "z": steps or None,
                   "n_x": n_x, "n_y": n_y, "n_z": card,
                   "weights": self._weight_keys(key)}
            counts = self.pool.counts(self.shard_ctx, [job],
                                      self._provider)[0]
            value = kernel.cmi_from_counts(
                counts.reshape(card, n_y, n_x))
        self._cmi_cache[key] = value
        return value

    def score_candidates(self, attributes: Sequence[str],
                         given: Sequence[str] = ()) -> Dict[str, float]:
        if not self.use_kernel:
            return super().score_candidates(attributes, given)
        given = tuple(given)
        given_set = set(given)
        scores: Dict[str, float] = {}
        base_steps, base_card = self._steps_for(tuple(sorted(given)))
        n_x = self._card_of(self.outcome, plain=True)
        n_y = self._card_of(self.exposure, plain=True)
        jobs: List[Dict] = []
        job_keys: List[Tuple[str, ...]] = []
        job_cards: List[int] = []
        for attribute in attributes:
            key = given if attribute in given_set \
                else tuple(sorted(given_set | {attribute}))
            value = self._cmi_cache.get(key)
            if value is not None:
                scores[attribute] = value
                continue
            if attribute in given_set:
                scores[attribute] = self.cmi(key)
                continue
            extra_card = self._card_of(attribute, plain=False)
            if base_steps:
                steps: Tuple = base_steps + (
                    ("fuse", "m:" + attribute, extra_card),)
                card = base_card * extra_card
            else:
                steps = (("col", "m:" + attribute),)
                card = extra_card
            if card > self._compact_limit():
                token, card = self.pool.compact(self.shard_ctx, steps,
                                                self._provider)
                steps = steps + (("relabel", token),)
            if n_x * n_y * card > kernel.DENSE_CELL_LIMIT:
                self._count_hook("shard_local_fallback")
                value = self._local_cmi_value(key)
                self._cmi_cache[key] = value
                scores[attribute] = value
                continue
            jobs.append({"kind": "cmi",
                         "x": (("col", "p:" + self.outcome),),
                         "y": (("col", "p:" + self.exposure),),
                         "z": steps,
                         "n_x": n_x, "n_y": n_y, "n_z": card,
                         "weights": self._weight_keys(key)})
            job_keys.append(key)
            job_cards.append(card)
        if jobs:
            merged = self.pool.counts(self.shard_ctx, jobs, self._provider)
            for key, card, counts in zip(job_keys, job_cards, merged):
                value = kernel.cmi_from_counts(
                    counts.reshape(card, n_y, n_x))
                self._cmi_cache[key] = value
        for attribute in attributes:
            if attribute in scores:
                continue
            key = tuple(sorted(given_set | {attribute}))
            scores[attribute] = self._cmi_cache[key]
        return scores

    def pairwise_mi(self, a: str, b: str) -> float:
        if not self.use_kernel:
            return super().pairwise_mi(a, b)
        key = (a, b) if a <= b else (b, a)
        cached = self._mi_cache.get(key)
        if cached is not None:
            return cached
        n_x = self._card_of(a, plain=False)
        n_y = self._card_of(b, plain=False)
        if n_x * n_y > kernel.DENSE_CELL_LIMIT:
            self._count_hook("shard_local_fallback")
            return super().pairwise_mi(a, b)
        job = {"kind": "cmi",
               "x": (("col", "m:" + a),),
               "y": (("col", "m:" + b),),
               "z": None, "n_x": n_x, "n_y": n_y, "n_z": 1,
               "weights": self._weight_keys([a, b])}
        counts = self.pool.counts(self.shard_ctx, [job], self._provider)[0]
        value = kernel.cmi_from_counts(counts.reshape(1, n_y, n_x))
        self._mi_cache[key] = value
        return value

    def entropy_of(self, attribute: str) -> float:
        if not self.use_kernel:
            return super().entropy_of(attribute)
        cached = self._entropy_cache.get(attribute)
        if cached is None:
            card = self._card_of(attribute, plain=True)
            job = {"kind": "entropy",
                   "codes": (("col", "p:" + attribute),),
                   "minlength": card, "weights": None}
            counts = self.pool.counts(self.shard_ctx, [job],
                                      self._provider)[0]
            cached = kernel.finalize(counts)
            self._entropy_cache[attribute] = cached
        return cached

    def conditional_entropy_of(self, target: str,
                               given: Sequence[str]) -> float:
        if not self.use_kernel:
            return super().conditional_entropy_of(target, given)
        steps, card = self._steps_for(tuple(sorted(given)), plain=True)
        n_target = self._card_of(target, plain=True)
        if n_target * card > kernel.DENSE_CELL_LIMIT:
            self._count_hook("shard_local_fallback")
            return super().conditional_entropy_of(target, given)
        job = {"kind": "joint",
               "target": (("col", "p:" + target),),
               "given": steps or None,
               "n_target": n_target, "n_given": card, "weights": None}
        counts = self.pool.counts(self.shard_ctx, [job], self._provider)[0]
        return kernel.conditional_entropy_from_counts(
            counts.reshape(card, n_target))

    # ------------------------------------------------------------------ #
    # independence testing (distributed permutation rounds)
    # ------------------------------------------------------------------ #
    def independence_test(self, a: str, b: str,
                          conditioning: Sequence[str] = (),
                          **kwargs) -> IndependenceResult:
        if not self.use_kernel:
            return super().independence_test(a, b, conditioning, **kwargs)
        threshold = kwargs.pop("threshold", DEFAULT_CMI_THRESHOLD)
        n_permutations = kwargs.pop("n_permutations", 30)
        alpha = kwargs.pop("alpha", 0.05)
        dependent_threshold = kwargs.pop("dependent_threshold", None)
        seed = kwargs.pop("seed", 0)
        kwargs.pop("block_size", None)  # a blocked-engine tuning knob;
        # the pool sizes its own rounds
        import time as _time
        start = _time.perf_counter() if self.seconds_hook is not None else 0.0
        try:
            with trace.span("permutation_test", a=a, b=b,
                            conditioning=len(conditioning), sharded=True):
                return self._sharded_independence_test(
                    a, b, conditioning, threshold, n_permutations, alpha,
                    dependent_threshold, seed, **kwargs)
        finally:
            if self.seconds_hook is not None:
                self.seconds_hook("permutation_test",
                                  _time.perf_counter() - start)

    def _sharded_independence_test(self, a: str, b: str,
                                   conditioning: Sequence[str],
                                   threshold, n_permutations: int,
                                   alpha: float, dependent_threshold, seed,
                                   **kwargs) -> IndependenceResult:
        # Fuse in *caller* order, like the base plain path: the shard
        # strata refine these codes, and keeping the recipe identical
        # lets sharded and local tests share compaction decisions.
        steps, card = self._steps_for(tuple(conditioning), plain=True)
        n_x = self._card_of(a, plain=True)
        n_y = self._card_of(b, plain=True)
        if n_x * n_y * card > kernel.DENSE_CELL_LIMIT:
            self._count_hook("shard_local_fallback")
            return super().independence_test(
                a, b, conditioning, threshold=threshold,
                n_permutations=n_permutations, alpha=alpha,
                dependent_threshold=dependent_threshold, seed=seed,
                **kwargs)
        weight_keys = self._weight_keys([a, b, *conditioning])
        x_steps = (("col", "p:" + a),)
        y_steps = (("col", "p:" + b),)
        job = {"kind": "cmi", "x": x_steps, "y": y_steps,
               "z": steps or None, "n_x": n_x, "n_y": n_y, "n_z": card,
               "weights": weight_keys}
        counts = self.pool.counts(self.shard_ctx, [job],
                                  self._provider)[0]
        observed = kernel.cmi_from_counts(counts.reshape(card, n_y, n_x))
        if observed <= threshold:
            return IndependenceResult(independent=True, cmi=observed,
                                      p_value=1.0, n_permutations=0)
        if dependent_threshold is not None \
                and observed >= dependent_threshold:
            return IndependenceResult(independent=False, cmi=observed,
                                      p_value=0.0, n_permutations=0)
        if n_permutations <= 0:
            return IndependenceResult(independent=False, cmi=observed,
                                      p_value=0.0, n_permutations=0)
        budget = permutation.resolve_budget(self.permutation_budget,
                                            self.permutation_early_exit)
        outcome = self.pool.permutation_rounds(
            self.shard_ctx, x=x_steps, y=y_steps, z=steps or None,
            n_x=n_x, n_y=n_y, n_z=card, weights=weight_keys,
            observed=observed, n_permutations=n_permutations,
            alpha=alpha, seed=seed,
            early_exit=self.permutation_early_exit,
            budget=self.permutation_budget,
            provider=self._provider)
        permutation.report_outcome(self.counter_hook, outcome,
                                   n_permutations, budget)
        return IndependenceResult(independent=outcome.independent(alpha),
                                  cmi=observed,
                                  p_value=outcome.p_value,
                                  n_permutations=outcome.n_run,
                                  early_exit=outcome.verdict is not None,
                                  budget_extensions=outcome.extensions)

    # ------------------------------------------------------------------ #
    # distributed IRLS (the IPW selection fits)
    # ------------------------------------------------------------------ #
    def distributed_fitter(self, predictor_columns: Sequence[str]):
        """A ``fit_logistic_multi``-shaped solver running on the pool.

        Falls back to the local solver when a shard dies mid-fit (the
        caller already holds the full design for prediction, so the
        fallback costs one local fit, not a re-ship).
        """
        # Global cards with the *encoder's* local-maximum semantics (0 for
        # an all-missing column, not code_cardinality's floor of 1), so the
        # shard designs lay out column-for-column like build_design's.
        cards = []
        for column in predictor_columns:
            codes = self.frame.codes(column)
            cards.append(int(codes.max()) + 1
                         if len(codes) and codes.max() >= 0 else 0)
        keys = ["p:" + column for column in predictor_columns]

        def fit(features, labels_matrix, row_groups=None, l2=1e-3,
                max_iter=50, tol=1e-8):
            try:
                models = self.pool.fit_logistic_multi(
                    self.shard_ctx, keys, cards, labels_matrix,
                    l2=l2, max_iter=max_iter, tol=tol,
                    provider=self._provider)
                self._count_hook("shard_irls_fit")
                return models
            except ReproError:
                self._count_hook("shard_irls_fallback")
                from repro.missingness.logistic import fit_logistic_multi
                return fit_logistic_multi(features, labels_matrix,
                                          row_groups=row_groups, l2=l2,
                                          max_iter=max_iter, tol=tol)

        return fit

    # ------------------------------------------------------------------ #
    # derived problems
    # ------------------------------------------------------------------ #
    # restricted_to is inherited unchanged: the subgroup search evaluates
    # arbitrary row masks, whose slices the workers do not hold — the base
    # implementation already returns a plain local problem over the
    # restricted frame, which is exactly the hybrid we want.

    def subset_candidates(self, candidates: Iterable[str]
                          ) -> "ShardedExplanationProblem":
        """A reduced-candidate clone that stays on the data plane."""
        clone = ShardedExplanationProblem.__new__(ShardedExplanationProblem)
        base = super().subset_candidates(candidates)
        clone.__dict__.update(base.__dict__)
        clone.pool = self.pool
        clone.shard_ctx = self.shard_ctx
        clone._steps_cache = self._steps_cache
        clone._plain_steps_cache = self._plain_steps_cache
        clone._weight_keys_by_attr = self._weight_keys_by_attr
        return clone
