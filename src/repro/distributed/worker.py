"""The shard worker: one row range, recipe-driven partial computations.

A shard worker statefully holds, per registered *context* (one dataset +
context-predicate encoding), only the base column slices the coordinator
has shipped it — integer code arrays and IPW weight vectors for its row
range, ``O(rows / N)`` memory per column.  Every compute request carries a
*recipe*: the ordered fuse steps (and optional compaction relabels) that
turn base columns into the fused conditioning codes of one term.  Workers
fuse on the fly (``O(k · n/N)`` per request — cheap next to the counts
themselves) instead of caching fused arrays, which keeps worker state
trivially reconstructible after a restart: respawn blank, let the
coordinator re-ship lazily, retry.

Recipes are lists of steps:

* ``("col", key)`` — start from the stored base column ``key``;
* ``("fuse", key, extra_card)`` — extend by one variable
  (:func:`repro.infotheory.kernel.fuse_codes` place-value arithmetic);
* ``("relabel", token)`` — apply a coordinator-computed global compaction
  (see :meth:`repro.distributed.coordinator.ShardPool.compact`).

Column keys are namespaced by encoding: ``"p:attr"`` for plain codes,
``"m:attr"`` for missing-as-category codes, ``"w:attr"`` for an IPW
weight vector — mirroring the two code views of
:class:`repro.infotheory.encoding.EncodedFrame`.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro.distributed.ipc import serve_pipe
from repro.exceptions import ConfigurationError
from repro.infotheory import kernel, permutation
from repro.missingness.logistic import (
    logistic_partials,
    one_hot_encode_codes,
)
from repro.utils.rng import spawn_rng


class ShardStore:
    """Per-worker state: base column slices and IRLS designs by context."""

    def __init__(self, shard_index: int, n_shards: int):
        self.shard_index = shard_index
        self.n_shards = n_shards
        #: ctx id -> {"columns": {key: array}, "relabels": {token: (values,
        #: ranks)}, "fits": {fit id: {"design", "labels"}}, "n_rows": int}
        self.contexts: Dict[Any, Dict[str, Any]] = {}
        self.peak_resident_rows = 0

    # ------------------------------------------------------------------ #
    # state management
    # ------------------------------------------------------------------ #
    def context(self, ctx: Any) -> Dict[str, Any]:
        entry = self.contexts.get(ctx)
        if entry is None:
            entry = {"columns": {}, "relabels": {}, "fits": {}, "n_rows": 0}
            self.contexts[ctx] = entry
        return entry

    def put_columns(self, ctx: Any, columns: Dict[str, np.ndarray]) -> int:
        entry = self.context(ctx)
        for key, values in columns.items():
            entry["columns"][key] = np.asarray(values)
            entry["n_rows"] = len(values)
        self.peak_resident_rows = max(self.peak_resident_rows,
                                      self.resident_rows())
        return entry["n_rows"]

    def put_shm_columns(self, ctx: Any, columns: Dict[str, Any]) -> int:
        """Map shared-segment column slices as read-only views (zero copy).

        ``columns`` maps a column key to ``(ArrayRef, start, stop)``: the
        full column lives in a shared segment published by the
        coordinator, and this shard views only its row range.  A 1-D slice
        of a view is itself a view, so resident bytes stay O(attached
        segments), not O(rows x columns) per shard.
        """
        from repro.shm.segments import attachments

        cache = attachments()
        entry = self.context(ctx)
        segments = entry.setdefault("segments", set())
        for key, (ref, start, stop) in columns.items():
            view = cache.attach(ref)[start:stop]
            entry["columns"][key] = view
            entry["n_rows"] = len(view)
            segments.add(ref.segment)
        self.peak_resident_rows = max(self.peak_resident_rows,
                                      self.resident_rows())
        return entry["n_rows"]

    def put_relabel(self, ctx: Any, token: str, values: np.ndarray,
                    ranks: np.ndarray) -> None:
        self.context(ctx)["relabels"][token] = (
            np.asarray(values, dtype=np.int64),
            np.asarray(ranks, dtype=np.int64))

    def drop_context(self, ctx: Any) -> None:
        entry = self.contexts.pop(ctx, None)
        if entry is not None:
            self._release_segments(entry.get("segments", ()))

    def clear(self) -> None:
        entries = list(self.contexts.values())
        self.contexts.clear()
        released = set()
        for entry in entries:
            released.update(entry.get("segments", ()))
        self._release_segments(released)

    def _release_segments(self, dropped) -> None:
        """Detach segments no surviving context still views."""
        if not dropped:
            return
        still_needed = set()
        for entry in self.contexts.values():
            still_needed.update(entry.get("segments", ()))
        stale = set(dropped) - still_needed
        if stale:
            from repro.shm.segments import attachments

            attachments().release(stale)

    def resident_rows(self) -> int:
        """Total rows resident across contexts (one context = one slice)."""
        return sum(entry["n_rows"] for entry in self.contexts.values())

    # ------------------------------------------------------------------ #
    # recipe evaluation
    # ------------------------------------------------------------------ #
    def column(self, ctx: Any, key: str) -> np.ndarray:
        entry = self.contexts.get(ctx)
        if entry is None or key not in entry["columns"]:
            # A restarted worker lost its shipped state; the coordinator's
            # retry path re-ships on this signal.
            raise ConfigurationError(
                f"shard {self.shard_index} is missing column {key!r} "
                f"for context {ctx!r}")
        return entry["columns"][key]

    def build(self, ctx: Any, steps: Optional[Sequence]) -> Optional[np.ndarray]:
        """Evaluate a fuse recipe over this shard's column slices."""
        if steps is None:
            return None
        fused: Optional[np.ndarray] = None
        for step in steps:
            kind = step[0]
            if kind == "col":
                fused = np.asarray(self.column(ctx, step[1]), dtype=np.int64)
            elif kind == "fuse":
                if fused is None:
                    raise ConfigurationError(
                        "fuse recipe must start with a 'col' step")
                extra = np.asarray(self.column(ctx, step[1]), dtype=np.int64)
                fused, _ = kernel.fuse_codes(fused, 0, extra, step[2])
            elif kind == "relabel":
                if fused is None:
                    raise ConfigurationError(
                        "fuse recipe must start with a 'col' step")
                entry = self.contexts.get(ctx) or {"relabels": {}}
                relabel = entry["relabels"].get(step[1])
                if relabel is None:
                    raise ConfigurationError(
                        f"shard {self.shard_index} is missing relabel "
                        f"{step[1]!r} for context {ctx!r}")
                values, ranks = relabel
                out = np.full(len(fused), -1, dtype=np.int64)
                present = fused >= 0
                positions = np.searchsorted(values, fused[present])
                out[present] = ranks[positions]
                fused = out
            else:
                raise ConfigurationError(f"unknown recipe step {step!r}")
        return fused

    def weights(self, ctx: Any,
                keys: Optional[Sequence[str]]) -> Optional[np.ndarray]:
        """Element-wise product of shipped weight vectors (None for none)."""
        if not keys:
            return None
        product = np.asarray(self.column(ctx, keys[0]),
                             dtype=np.float64).copy()
        for key in keys[1:]:
            product *= np.asarray(self.column(ctx, key), dtype=np.float64)
        return product


def _attachment_stats() -> Dict[str, int]:
    """This process's shared-segment attachment counters (observability)."""
    from repro.shm.segments import attachments

    return attachments().stats()


def _serve_counts_job(store: ShardStore, ctx: Any,
                      job: Dict[str, Any]) -> np.ndarray:
    """One partial-counts work unit (returned raveled; merged upstream)."""
    kind = job["kind"]
    weights = store.weights(ctx, job.get("weights"))
    if kind == "cmi":
        counts = kernel.cmi_counts(
            store.build(ctx, job["x"]), store.build(ctx, job["y"]),
            store.build(ctx, job.get("z")),
            n_x=job["n_x"], n_y=job["n_y"], n_z=job.get("n_z", 1),
            weights=weights)
        return counts.ravel()
    if kind == "joint":
        counts = kernel.joint_counts(
            store.build(ctx, job["target"]), store.build(ctx, job.get("given")),
            n_target=job["n_target"], n_given=job.get("n_given", 1),
            weights=weights)
        return counts.ravel()
    if kind == "entropy":
        return kernel.accumulate(store.build(ctx, job["codes"]),
                                 weights=weights,
                                 minlength=job.get("minlength", 0))
    raise ConfigurationError(f"unknown counts job kind {kind!r}")


def _shard_worker_main(conn, shard_index: int, n_shards: int) -> None:
    """The shard worker process body: a request/response loop over ops."""
    store = ShardStore(shard_index, n_shards)

    def serve_one(op: str, payload):
        if op == "counts":
            ctx = payload["ctx"]
            return [_serve_counts_job(store, ctx, job)
                    for job in payload["jobs"]]
        if op == "perm":
            # Permutation i draws from the stream of fixed-size chunk
            # i // chunk, so the null sequence depends only on (seed,
            # shard count) — never on how the coordinator batches rounds.
            ctx = payload["ctx"]
            x = store.build(ctx, payload["x"])
            y = store.build(ctx, payload["y"])
            z = store.build(ctx, payload.get("z"))
            weights = store.weights(ctx, payload.get("weights"))
            start, chunk, count = (payload["start"], payload["chunk"],
                                   payload["count"])
            rng_stream = payload.get("rng_stream",
                                     permutation.RNG_STREAM_LEGACY)
            parts = []
            produced = 0
            while produced < count:
                index = start + produced
                take = min(chunk - index % chunk, count - produced)
                rng = spawn_rng(payload["seed"], "shard", shard_index,
                                "chunk", index // chunk)
                parts.append(permutation.block_partial_counts(
                    x, y, z, payload["n_x"], payload["n_y"],
                    payload.get("n_z", 1), weights, rng, take,
                    rng_stream=rng_stream))
                produced += take
            return parts[0] if len(parts) == 1 else \
                np.concatenate(parts, axis=0)
        if op == "present":
            fused = store.build(payload["ctx"], payload["steps"])
            return np.unique(fused[fused >= 0])
        if op == "put":
            return store.put_columns(payload["ctx"], payload["columns"])
        if op == "put_shm":
            return store.put_shm_columns(payload["ctx"], payload["columns"])
        if op == "put_relabel":
            store.put_relabel(payload["ctx"], payload["token"],
                              payload["values"], payload["ranks"])
            return None
        if op == "irls_begin":
            ctx = payload["ctx"]
            entry = store.context(ctx)
            slices = [store.column(ctx, key) for key in payload["predictors"]]
            features = one_hot_encode_codes(slices, cards=payload["cards"])
            design = np.hstack([np.ones((len(features), 1)), features])
            entry["fits"][payload["fit"]] = {
                "design": design,
                "labels": np.asarray(payload["labels"], dtype=np.float64),
            }
            return design.shape[1]
        if op == "irls_step":
            entry = store.context(payload["ctx"])
            fit = entry["fits"].get(payload["fit"])
            if fit is None:
                raise ConfigurationError(
                    f"shard {shard_index} has no IRLS fit {payload['fit']!r}")
            active = np.asarray(payload["active"], dtype=np.int64)
            return logistic_partials(fit["design"],
                                     fit["labels"][:, active],
                                     payload["beta"])
        if op == "irls_end":
            entry = store.contexts.get(payload["ctx"])
            if entry is not None:
                entry["fits"].pop(payload["fit"], None)
            return None
        if op == "drop_ctx":
            store.drop_context(payload["ctx"])
            return None
        if op == "clear":
            store.clear()
            return None
        if op == "stats":
            from repro.obs.metrics import process_maxrss_kb

            # VmHWM, not ru_maxrss: a spawn-started shard inherits the
            # parent's rusage peak on Linux, which would report the
            # coordinator's footprint as the shard's.
            maxrss_kb = process_maxrss_kb()
            rows = store.resident_rows()
            return {
                "role": "row-shard",
                "shard_index": shard_index,
                "n_shards": n_shards,
                "contexts": len(store.contexts),
                "resident_rows": rows,
                "peak_resident_rows": max(store.peak_resident_rows, rows),
                "max_context_rows": max(
                    (entry["n_rows"] for entry in store.contexts.values()),
                    default=0),
                "resident_columns": sum(
                    len(entry["columns"])
                    for entry in store.contexts.values()),
                "maxrss_kb": maxrss_kb,
                "frame_store": _attachment_stats(),
            }
        if op == "ping":
            return "pong"
        raise ConfigurationError(f"unknown shard op {op!r}")

    try:
        serve_pipe(conn, serve_one, span_prefix="shard")
    finally:
        conn.close()
