"""Distributed IRLS: merge per-shard Newton partials, solve centrally.

The multi-label selection fit
(:func:`repro.missingness.logistic.fit_logistic_multi`) iterates
``beta += solve(X' W X + diag(penalty), X'(s - p) - penalty * beta)``.
Both normal-equation terms are sums over rows, so each shard computes the
partials of its row slice (:func:`repro.missingness.logistic.
logistic_partials` on its design slice) and the coordinator merges,
penalises, solves and rebroadcasts.  The driver below replicates the
reference control flow — degenerate-label freezing, the per-label
convergence test on the step norm, active-set shrinking — *without* the
binomial row-group collapse (which, per the reference docstring, yields
the identical gradient and Hessian at every beta), so the trajectories
match to float summation order; the property tests assert 1e-7 on the
final coefficients.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

import numpy as np

from repro.exceptions import MissingDataError
from repro.missingness.logistic import LogisticRegression

#: ``step(beta_active, active_idx) -> (gradients, hessians)`` — the merged
#: unpenalised partials of shapes ``(d, A)`` and ``(A, d, d)``.
StepFn = Callable[[np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray]]


def drive_irls(step: StepFn, labels_matrix: np.ndarray, n_coefficients: int,
               l2: float = 1e-3, max_iter: int = 50,
               tol: float = 1e-8) -> List[LogisticRegression]:
    """Drive the merged-partials Newton loop to fitted models.

    ``labels_matrix`` is the full ``(n, L)`` 0/1 label matrix — the
    coordinator knows every observed mask, so degenerate labels (all 0 or
    all 1) freeze centrally exactly as in the reference fit, and only the
    remaining columns consume scatter-gather rounds.  ``n_coefficients``
    is the design width *including* the intercept (shards report it from
    their identically-laid-out one-hot designs).
    """
    labels_matrix = np.asarray(labels_matrix, dtype=np.float64)
    if labels_matrix.ndim != 2:
        raise MissingDataError(
            f"labels_matrix must be 2-dimensional, got shape "
            f"{labels_matrix.shape}")
    if not np.isin(labels_matrix, (0.0, 1.0)).all():
        raise MissingDataError("labels must be binary (0/1)")
    n_rows, n_labels = labels_matrix.shape
    models = [LogisticRegression(l2=l2, max_iter=max_iter, tol=tol)
              for _ in range(n_labels)]
    if n_labels == 0:
        return models
    penalty = np.full(n_coefficients, l2)
    penalty[0] = 0.0
    beta = np.zeros((n_coefficients, n_labels))

    active: List[int] = []
    for label in range(n_labels):
        column = labels_matrix[:, label]
        if n_rows == 0 or column.min() == column.max():
            rate = float(np.clip(column.mean() if n_rows else 0.5,
                                 1e-6, 1 - 1e-6))
            frozen = np.zeros(n_coefficients)
            frozen[0] = np.log(rate / (1 - rate))
            models[label]._store(frozen, converged=True, iterations=0)
            beta[:, label] = frozen
        else:
            active.append(label)
    active_idx = np.array(active, dtype=np.int64)

    for iteration in range(1, max_iter + 1):
        if not len(active_idx):
            break
        current = beta[:, active_idx]
        gradients, hessians = step(current, active_idx)
        gradients = np.asarray(gradients, dtype=np.float64) \
            - penalty[:, None] * current
        hessians = np.asarray(hessians, dtype=np.float64) \
            + np.diag(penalty + 1e-12)[None, :, :]
        try:
            steps = np.linalg.solve(hessians, gradients.T[:, :, None])[:, :, 0]
        except np.linalg.LinAlgError:
            steps = np.empty((len(active_idx), n_coefficients))
            for position in range(len(active_idx)):
                try:
                    steps[position] = np.linalg.solve(
                        hessians[position], gradients[:, position])
                except np.linalg.LinAlgError:
                    steps[position] = np.linalg.lstsq(
                        hessians[position], gradients[:, position],
                        rcond=None)[0]
        beta[:, active_idx] = current + steps.T
        converged_now = np.abs(steps).max(axis=1) < tol
        for position in np.flatnonzero(converged_now):
            label = int(active_idx[position])
            models[label]._store(beta[:, label], converged=True,
                                 iterations=iteration)
        active_idx = active_idx[~converged_now]
    for label in active_idx:
        models[int(label)]._store(beta[:, int(label)], converged=False,
                                  iterations=max_iter)
    return models
