"""Row-sharded data plane: scatter-gather counts, permutations and IRLS.

The serving tier of PR 5 scales on the *user* axis — every cluster worker
holds a full copy of the registered tables and the key space shards across
them.  This package adds the *data* axis: a registered table is split into
contiguous row ranges, each owned by a stateful shard worker process, and
a query's information-theoretic work units fan out as scatter-gather
rounds:

* **counts** — every entropy/MI/CMI term reduces to one weighted
  contingency count over fused codes, and counts are additive over row
  partitions (:func:`repro.infotheory.kernel.accumulate` /
  :func:`~repro.infotheory.kernel.merge_counts` /
  :func:`~repro.infotheory.kernel.finalize`), so each worker returns the
  partial counts of its rows and the coordinator performs one entropy
  step on the merged tensor — an *exact* decomposition, not an
  approximation;
* **permutations** — null distributions are stratified within
  (shard × stratum), a finer and equally valid stratification under the
  permutation null, with each shard consuming its own deterministic RNG
  stream (:func:`repro.utils.rng.derive_seed` over the shard index and
  block index), so verdicts are reproducible for any shard count;
* **IRLS** — the IPW selection fits decompose per Newton step into
  per-shard ``X'WX`` / ``X'(s - p)`` partials; the coordinator merges,
  applies the ridge penalty, solves and rebroadcasts beta, following the
  same trajectory as :func:`repro.missingness.logistic.fit_logistic_multi`
  to numerical tolerance.

:class:`~repro.distributed.coordinator.ShardPool` owns the worker
processes (reusing the :class:`~repro.serving.cluster.ServiceCluster`
pipe machinery via :mod:`repro.distributed.ipc`);
:class:`~repro.distributed.problem.ShardedExplanationProblem` is the
drop-in :class:`~repro.core.problem.CorrelationExplanationProblem` that
routes its estimates through a pool.  ``ServiceCluster(shard="rows")``
wires the whole stack into the serving tier.
"""

from repro.distributed.coordinator import ShardContext, ShardPool
from repro.distributed.ipc import WorkerDiedError, WorkerFaultError
from repro.distributed.partition import row_ranges
from repro.distributed.problem import ShardedExplanationProblem

__all__ = [
    "ShardContext",
    "ShardPool",
    "ShardedExplanationProblem",
    "WorkerDiedError",
    "WorkerFaultError",
    "row_ranges",
]
