"""The shard coordinator: scatter work units, gather and merge partials.

:class:`ShardPool` owns N shard worker processes
(:mod:`repro.distributed.worker`) over the pipe transport of
:mod:`repro.distributed.ipc`.  It is the *data plane* only: the engine
(the coordinator side) keeps the table, the encodings, the search logic
and the entropy finalisation; the pool's job is to hold row slices in
worker memory and answer partial-count, permutation and IRLS-partial
requests for them.

**Contexts.**  Work is namespaced by *context* — one
``(dataset label, dataset version, hops, n_bins, context predicate)``
tuple, matching the engine's context-frame cache key.  Column slices are
shipped to a worker once per context and reused across every query that
hits the same context; a bounded LRU retires cold contexts (and their
worker-side slices), and version bumps age out stale ones naturally
because the version participates in the key.

**Restart.**  Worker state is a pure function of (shipped columns,
shipped relabels), so the pool heals exactly like the serving cluster: a
dead worker is respawned blank, its per-context shipped bookkeeping is
reset, and the failed request is retried once — the prepare step re-ships
whatever the retried request needs.

**Compaction.**  When a fused code space outgrows the dense-count budget,
compaction must be *global* (every shard must agree on the relabelling).
:meth:`ShardPool.compact` runs the two-phase protocol: workers report the
distinct fused values present in their slice, the coordinator merges them
into the sorted global support, and each worker receives only its own
values with their global ranks — ``O(local distinct)`` per worker, never
the full table.  Because :func:`repro.infotheory.kernel.compact_codes`
relabels in sorted order, the global relabelling induces the same
partition and label order as single-process compaction, so estimates are
unchanged.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.distributed import ipc
from repro.distributed.partition import row_ranges
from repro.distributed.worker import _shard_worker_main
from repro.exceptions import ConfigurationError
from repro.infotheory import permutation
from repro.missingness.logistic import LogisticRegression
from repro.obs import trace

#: Retire the least-recently-used shard context beyond this many (matches
#: the engine's frame-cache budget — contexts past it are cold there too).
MAX_SHARD_CONTEXTS = 32

#: A column provider maps a column key (``"p:attr"`` / ``"m:attr"`` /
#: ``"w:attr"``) to its full-length array; the pool slices per shard.
ColumnProvider = Callable[[str], np.ndarray]


@dataclass
class ShardContext:
    """Coordinator-side bookkeeping for one registered context."""

    key: Tuple
    n_rows: int
    ranges: List[Tuple[int, int]]
    #: Per worker: column keys already resident in that worker.
    shipped: List[set] = field(default_factory=list)
    #: Per worker: relabel tokens already resident in that worker.
    relabel_shipped: List[set] = field(default_factory=list)
    #: token -> {"steps": recipe, "merged": sorted global support}.
    relabels: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: recipe -> (token, cardinality) — one global compaction per recipe.
    compact_cache: Dict[Tuple, Tuple[str, int]] = field(default_factory=dict)
    #: column key -> ArrayRef for columns published to the frame store
    #: (shared-memory ship path; every shard views the same segment).
    published: Dict[str, Any] = field(default_factory=dict)


def recipe_columns(*step_lists: Optional[Sequence]) -> List[str]:
    """The column keys a set of fuse recipes (and weight lists) touch."""
    needed: List[str] = []
    seen = set()
    for steps in step_lists:
        if steps is None:
            continue
        for step in steps:
            if isinstance(step, str):
                key = step  # a bare weight-column key
            elif step[0] in ("col", "fuse"):
                key = step[1]
            else:
                continue
            if key not in seen:
                seen.add(key)
                needed.append(key)
    return needed


def recipe_tokens(*step_lists: Optional[Sequence]) -> List[str]:
    """The relabel tokens a set of fuse recipes reference."""
    tokens: List[str] = []
    for steps in step_lists:
        if steps is None:
            continue
        for step in steps:
            if not isinstance(step, str) and step[0] == "relabel" \
                    and step[1] not in tokens:
                tokens.append(step[1])
    return tokens


class ShardPool:
    """N stateful shard workers serving partial computations over row ranges.

    Parameters
    ----------
    n_shards:
        How many shard worker processes to spawn.
    start_method:
        ``"fork"`` / ``"spawn"`` — same semantics as
        :class:`~repro.serving.cluster.ServiceCluster`.
    request_timeout:
        Seconds to wait for one worker reply before declaring it dead.
    max_contexts:
        LRU budget on registered contexts (worker slices are dropped when
        a context retires).
    frame_store:
        Optional :class:`repro.shm.store.FrameStore`.  When set, column
        slices are not pickled down worker pipes: the full column is
        published into a shared segment **once per context** and every
        shard maps a read-only view of its row range (zero copy).  The
        pool does not own the store — the caller closes it.
    """

    def __init__(self, n_shards: int = 2,
                 start_method: Optional[str] = None,
                 request_timeout: float = 600.0,
                 max_contexts: int = MAX_SHARD_CONTEXTS,
                 frame_store: Optional[Any] = None):
        if n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
        import multiprocessing

        available = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in available else "spawn"
        if start_method not in ("fork", "spawn"):
            raise ConfigurationError(
                f"start_method must be 'fork' or 'spawn', got {start_method!r}")
        self._mp = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self.n_shards = n_shards
        self.request_timeout = request_timeout
        self.max_contexts = max_contexts
        self._store = frame_store
        self._handles: List[ipc.PipeWorkerHandle] = []
        self._contexts: "OrderedDict[Tuple, ShardContext]" = OrderedDict()
        self._lock = threading.Lock()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._started = False
        self._closed = False
        self._token_counter = 0
        self._fit_counter = 0
        self.requests = 0
        self.worker_restarts = 0
        self.request_retries = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ShardPool":
        """Spawn the shard workers and wait until all answer (idempotent)."""
        if self._started:
            return self
        if self._closed:
            raise ConfigurationError("ShardPool is closed")
        self._handles = [self._spawn(index) for index in range(self.n_shards)]
        self._executor = ThreadPoolExecutor(
            max_workers=self.n_shards,
            thread_name_prefix="repro-shard-pool")
        for handle in self._handles:
            ipc.request(handle, "ping", None, self.request_timeout)
        self._started = True
        return self

    def _spawn(self, index: int) -> ipc.PipeWorkerHandle:
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        process = self._mp.Process(
            target=_shard_worker_main,
            args=(child_conn, index, self.n_shards),
            name=f"repro-shard-worker-{index}", daemon=True)
        process.start()
        child_conn.close()  # the parent keeps only its end
        return ipc.PipeWorkerHandle(index=index, process=process,
                                    conn=parent_conn)

    def close(self) -> None:
        """Shut every shard worker down (gracefully, then firmly)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._handles)
        if self._executor is not None:
            self._executor.shutdown(wait=False)
        for handle in handles:
            if not handle.lock.acquire(timeout=2.0):
                continue  # busy worker: skip graceful, terminate below
            try:
                handle.conn.send(("shutdown", None))
                handle.conn.poll(2.0)
            except (OSError, ValueError, BrokenPipeError):
                pass
            finally:
                handle.lock.release()
        for handle in handles:
            if handle.process is not None:
                handle.process.join(timeout=5.0)
                if handle.process.is_alive():  # pragma: no cover - stuck
                    handle.process.terminate()
                    handle.process.join(timeout=2.0)
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        if self._store is not None:
            # The pool does not own the store, but its shard generations
            # are dead weight once the workers are gone — retire them so a
            # long-lived shared store does not accumulate /dev/shm bytes.
            with self._lock:
                dropped = list(self._contexts.values())
            for ctx in dropped:
                self._retire_ctx(ctx)

    def __enter__(self) -> "ShardPool":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # contexts
    # ------------------------------------------------------------------ #
    def context_handle(self, label: str, version: int, hops: int,
                       n_bins: int, context_key: Any,
                       n_rows: int) -> ShardContext:
        """Fetch or register the shard context of one encoded frame.

        The key mirrors the engine's context-frame cache key (plus the
        dataset label, since one pool may serve several datasets), so a
        frame-cache hit and a shard-context hit coincide and a dataset
        version bump retires both.
        """
        key = (str(label), int(version), int(hops), int(n_bins), context_key)
        evicted: List[ShardContext] = []
        with self._lock:
            ctx = self._contexts.get(key)
            if ctx is not None and ctx.n_rows == n_rows:
                self._contexts.move_to_end(key)
                return ctx
            ctx = ShardContext(
                key=key, n_rows=n_rows,
                ranges=row_ranges(n_rows, self.n_shards),
                shipped=[set() for _ in range(self.n_shards)],
                relabel_shipped=[set() for _ in range(self.n_shards)])
            self._contexts[key] = ctx
            self._contexts.move_to_end(key)
            while len(self._contexts) > self.max_contexts:
                _, old = self._contexts.popitem(last=False)
                evicted.append(old)
        for old in evicted:
            self._broadcast_best_effort("drop_ctx", {"ctx": old.key})
            self._retire_ctx(old)
        return ctx

    def drop_all_contexts(self) -> None:
        """Forget every context, coordinator- and worker-side."""
        with self._lock:
            dropped = list(self._contexts.values())
            self._contexts.clear()
        self._broadcast_best_effort("clear", None)
        for old in dropped:
            self._retire_ctx(old)

    def _broadcast_best_effort(self, op: str, payload) -> None:
        for handle in self._handles:
            try:
                ipc.request(handle, op, payload, self.request_timeout)
            except Exception:
                continue

    # ------------------------------------------------------------------ #
    # transport: prepare-and-request with restart-and-retry
    # ------------------------------------------------------------------ #
    def _prepare_locked(self, ctx: ShardContext,
                        handle: ipc.PipeWorkerHandle,
                        columns: Sequence[str], tokens: Sequence[str],
                        provider: Optional[ColumnProvider]) -> None:
        """Ship whatever this worker is missing (caller holds its lock)."""
        index = handle.index
        missing = [key for key in columns if key not in ctx.shipped[index]]
        if missing:
            if provider is None:
                raise ConfigurationError(
                    f"worker {index} is missing columns {missing} and no "
                    f"provider was supplied")
            start, stop = ctx.ranges[index]
            if self._store is not None:
                # Zero-copy ship: publish each full column into shared
                # memory once per context, then hand this shard only the
                # refs — it maps a read-only view of its row range.
                refs = self._publish_refs(ctx, missing, provider)
                self._store.attach_reader(("shard", ctx.key), index)
                ipc.request_locked(
                    handle, "put_shm",
                    {"ctx": ctx.key,
                     "columns": {key: (refs[key], start, stop)
                                 for key in missing}},
                    self.request_timeout)
            else:
                payload = {key: np.ascontiguousarray(
                               provider(key)[start:stop])
                           for key in missing}
                ipc.request_locked(handle, "put",
                                   {"ctx": ctx.key, "columns": payload},
                                   self.request_timeout)
            ctx.shipped[index].update(missing)
        for token in tokens:
            if token in ctx.relabel_shipped[index]:
                continue
            spec = ctx.relabels.get(token)
            if spec is None:
                raise ConfigurationError(f"unknown relabel token {token!r}")
            local = ipc.request_locked(
                handle, "present", {"ctx": ctx.key, "steps": spec["steps"]},
                self.request_timeout)
            merged = spec["merged"]
            ranks = np.searchsorted(merged, local)
            ipc.request_locked(
                handle, "put_relabel",
                {"ctx": ctx.key, "token": token, "values": local,
                 "ranks": ranks},
                self.request_timeout)
            ctx.relabel_shipped[index].add(token)

    def _publish_refs(self, ctx: ShardContext, keys: Sequence[str],
                      provider: ColumnProvider) -> Dict[str, Any]:
        """Refs for ``keys``, publishing any not yet in shared memory.

        Serialised under the pool lock so concurrent per-shard prepares
        publish each column exactly once (segments are append-only per
        generation, so a duplicate publish would leak bytes until the
        context retires).
        """
        with self._lock:
            unpublished = [key for key in keys if key not in ctx.published]
            if unpublished:
                arrays = {key: np.ascontiguousarray(provider(key))
                          for key in unpublished}
                ctx.published.update(
                    self._store.put_arrays(("shard", ctx.key), arrays))
            return {key: ctx.published[key] for key in keys}

    def _retire_ctx(self, ctx: ShardContext) -> None:
        """Retire a dropped context's segment generation (if any)."""
        if self._store is None:
            return
        generation = ("shard", ctx.key)
        # The workers were already told to drop the context (best-effort);
        # unlink-with-live-maps semantics cover any shard that missed the
        # message — its views stay valid until it drops them.
        for index in range(self.n_shards):
            self._store.detach_reader(generation, index)
        self._store.retire(generation)

    def _run_on_worker(self, ctx: ShardContext, index: int, op: str,
                       payload, columns: Sequence[str],
                       tokens: Sequence[str],
                       provider: Optional[ColumnProvider],
                       retry: bool = True) -> Any:
        """Prepare, send, and — once, after a restart — retry one request."""
        for attempt in (0, 1):
            handle = self._handles[index]
            generation = handle.generation
            try:
                with handle.lock:
                    self._prepare_locked(ctx, handle, columns, tokens,
                                         provider)
                    with self._lock:
                        self.requests += 1
                    return ipc.request_locked(handle, op, payload,
                                              self.request_timeout)
            except ipc.WorkerDiedError:
                if not retry or attempt:
                    raise
                self._restart(index, generation)
                with self._lock:
                    self.request_retries += 1
        raise AssertionError("unreachable")  # pragma: no cover

    def _restart(self, index: int, observed_generation: int) -> None:
        """Respawn a dead shard worker blank; shipped state re-ships lazily."""
        handle = self._handles[index]
        with handle.lock:
            if handle.generation != observed_generation:
                return  # another thread already replaced this process
            if self._closed:
                raise ipc.WorkerDiedError(
                    f"shard worker {index} died and the pool is closed")
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            if handle.process is not None and handle.process.is_alive():
                handle.process.terminate()
            if handle.process is not None:
                handle.process.join(timeout=5.0)
            fresh = self._spawn(index)
            handle.process = fresh.process
            handle.conn = fresh.conn
            handle.generation += 1
            handle.restarts += 1
            with self._lock:
                contexts = list(self._contexts.values())
                self.worker_restarts += 1
            # The fresh process holds nothing: every context must re-ship
            # to this worker before its next request.
            for ctx in contexts:
                ctx.shipped[index] = set()
                ctx.relabel_shipped[index] = set()
            if self._store is not None:
                # The dead process can never ack a release; drop it from
                # every generation so pending retirements drain.  The lazy
                # re-ship re-attaches the fresh process as a reader.
                self._store.drop_reader(index)

    def _scatter(self, ctx: ShardContext, op: str,
                 payload_for: Callable[[int], Any],
                 columns: Sequence[str], tokens: Sequence[str],
                 provider: Optional[ColumnProvider]) -> List[Any]:
        """Run one op on every shard concurrently; results in shard order."""
        self._ensure_running()
        if self.n_shards == 1:
            return [self._run_on_worker(ctx, 0, op, payload_for(0),
                                        columns, tokens, provider)]
        # Executor threads inherit the caller's trace (if any) so the
        # per-shard rpc spans land in the request's tree.
        captured = trace.capture()
        futures = [
            self._executor.submit(trace.call_with_capture, captured,
                                  self._run_on_worker, ctx, index, op,
                                  payload_for(index), columns, tokens,
                                  provider)
            for index in range(self.n_shards)]
        return [future.result() for future in futures]

    def _ensure_running(self) -> None:
        if not self._started:
            raise ConfigurationError("ShardPool.start() has not been called")
        if self._closed:
            raise ConfigurationError("ShardPool is closed")

    # ------------------------------------------------------------------ #
    # compute: counts
    # ------------------------------------------------------------------ #
    def counts(self, ctx: ShardContext, jobs: Sequence[Dict[str, Any]],
               provider: Optional[ColumnProvider] = None) -> List[np.ndarray]:
        """Merged count vectors for a batch of jobs (one round trip/worker).

        Each job is a dict with ``kind`` ``"cmi"`` / ``"joint"`` /
        ``"entropy"`` plus the recipes and global cardinalities (see
        :mod:`repro.distributed.worker`); the result holds, per job, the
        sum of the per-shard partial count vectors — ready for the
        ``*_from_counts`` finalisers.
        """
        step_lists: List[Any] = []
        for job in jobs:
            for fieldname in ("x", "y", "z", "target", "given", "codes"):
                step_lists.append(job.get(fieldname))
            step_lists.append(job.get("weights"))
        columns = recipe_columns(*step_lists)
        tokens = recipe_tokens(*step_lists)
        per_worker = self._scatter(
            ctx, "counts", lambda index: {"ctx": ctx.key, "jobs": list(jobs)},
            columns, tokens, provider)
        merged: List[np.ndarray] = []
        for position in range(len(jobs)):
            total = np.asarray(per_worker[0][position], dtype=np.float64).copy()
            for worker_result in per_worker[1:]:
                total += np.asarray(worker_result[position], dtype=np.float64)
            merged.append(total)
        return merged

    # ------------------------------------------------------------------ #
    # compute: global compaction
    # ------------------------------------------------------------------ #
    def compact(self, ctx: ShardContext, steps: Sequence,
                provider: Optional[ColumnProvider] = None) -> Tuple[str, int]:
        """Globally compact a fused recipe; returns ``(token, cardinality)``.

        Appending ``("relabel", token)`` to the recipe makes every shard
        relabel its fused codes onto the dense sorted global support —
        the same labels single-process :func:`~repro.infotheory.kernel.
        compact_codes` would assign.
        """
        steps = tuple(steps)
        with self._lock:
            cached = ctx.compact_cache.get(steps)
        if cached is not None:
            return cached
        columns = recipe_columns(steps)
        tokens = recipe_tokens(steps)
        locals_per_shard = self._scatter(
            ctx, "present", lambda index: {"ctx": ctx.key, "steps": steps},
            columns, tokens, provider)
        merged = np.unique(np.concatenate(
            [np.asarray(local, dtype=np.int64)
             for local in locals_per_shard]
            + [np.zeros(0, dtype=np.int64)]))
        with self._lock:
            cached = ctx.compact_cache.get(steps)
            if cached is not None:
                return cached
            self._token_counter += 1
            token = f"t{self._token_counter}"
            ctx.relabels[token] = {"steps": steps, "merged": merged}
            card = max(1, len(merged))
            ctx.compact_cache[steps] = (token, card)
        return token, card

    # ------------------------------------------------------------------ #
    # compute: permutation rounds
    # ------------------------------------------------------------------ #
    def permutation_rounds(self, ctx: ShardContext, *,
                           x: Sequence, y: Sequence, z: Optional[Sequence],
                           n_x: int, n_y: int, n_z: int,
                           weights: Optional[Sequence[str]],
                           observed: float, n_permutations: int,
                           alpha: float, seed: int, early_exit: bool,
                           budget=None,
                           provider: Optional[ColumnProvider] = None,
                           ) -> "permutation.PermutationOutcome":
        """Coordinator-driven permutation test over per-shard RNG streams.

        Each round requests a block of permutations from every shard in
        parallel; shard ``s`` permutes within its own strata, drawing
        permutation ``i`` from the deterministic stream
        ``derive_seed(seed, "shard", s, "chunk", i // CHUNK)`` — keyed by
        the *global permutation index*, not the round schedule, so the
        null sequence is a pure function of ``(seed, shard count)``.  The
        early-exit ramp changes only how many permutations each round
        requests, never which permutations are drawn; the budgeted
        sequential decision (the same
        :class:`~repro.infotheory.permutation.BudgetedSequentialTest` the
        single-process engine applies between rounds) therefore behaves
        exactly like the local blocked driver — including adaptive budget
        extension.  Rounds are kept chunk-aligned so a stream chunk is
        only ever partially consumed at the global end: a worker always
        draws a chunk's permutations from the start of that chunk's
        stream, so under an adaptive budget every round *requests* a
        chunk-multiple (bounded look-ahead past the current target,
        counted in ``computed``) and an extension resumes at the next
        chunk boundary instead of re-drawing a half-consumed chunk.

        Returns a :class:`~repro.infotheory.permutation.PermutationOutcome`
        exactly like :func:`~repro.infotheory.permutation.
        blocked_permutation_test` (unpackable as the historical 4-tuple).
        """
        budget = permutation.resolve_budget(budget, early_exit)
        state = permutation.BudgetedSequentialTest(n_permutations, alpha,
                                                  budget)
        cells = n_x * n_y * max(1, n_z)
        chunk = permutation.EARLY_EXIT_INITIAL_BLOCK
        max_block = max(1, min(
            state.cap,
            permutation.BLOCK_CELL_BUDGET // max(1, cells),
            permutation.BLOCK_ROW_BUDGET // max(1, ctx.n_rows)))
        max_block = max(chunk, max_block - max_block % chunk)
        sequential = budget.early_exit or budget.adaptive
        ramp = chunk if sequential else max_block
        extensions_seen = 0
        drawn = 0
        computed = 0
        columns = recipe_columns(x, y, z, weights)
        tokens = recipe_tokens(x, y, z)
        while state.want_more:
            if state.extensions != extensions_seen:
                extensions_seen = state.extensions
                ramp = chunk
            remaining = state.target - drawn
            if budget.adaptive:
                # Round the request up to a chunk multiple (never past the
                # cap) so extension resumes on a chunk boundary.
                aligned = -(-remaining // chunk) * chunk
                remaining = min(max(remaining, aligned), state.cap - drawn)
            count = min(ramp, max_block, remaining)
            ramp = min(ramp * 4, max_block)
            payload = {"ctx": ctx.key, "x": x, "y": y, "z": z,
                       "n_x": n_x, "n_y": n_y, "n_z": n_z,
                       "weights": weights, "seed": seed,
                       "start": drawn, "chunk": chunk, "count": count,
                       "rng_stream": budget.rng_stream}
            partials = self._scatter(ctx, "perm", lambda index: payload,
                                     columns, tokens, provider)
            total = np.asarray(partials[0], dtype=np.float64).copy()
            for part in partials[1:]:
                total += np.asarray(part, dtype=np.float64)
            null_cmis = permutation.null_cmis_from_counts(
                total, n_x, n_y, n_z)
            drawn += count
            computed += count
            for value in null_cmis:
                if not state.want_more:
                    break
                verdict = state.update(value >= observed)
                if verdict is not None:
                    return state.outcome(verdict, computed)
        return state.outcome(None, computed)

    # ------------------------------------------------------------------ #
    # compute: distributed IRLS
    # ------------------------------------------------------------------ #
    def fit_logistic_multi(self, ctx: ShardContext,
                           predictors: Sequence[str],
                           cards: Sequence[int],
                           labels_matrix: np.ndarray,
                           l2: float = 1e-3, max_iter: int = 50,
                           tol: float = 1e-8,
                           provider: Optional[ColumnProvider] = None,
                           ) -> List[LogisticRegression]:
        """Multi-label IRLS with per-shard normal-equation partials.

        Shards build identical-layout one-hot designs from their resident
        predictor slices (global ``cards`` pin the columns) and hold their
        label slice for the fit's duration; each Newton step scatters the
        active beta and gathers ``X'(s - p)`` / ``X'WX`` partials, which
        :func:`repro.distributed.irls.drive_irls` merges, penalises and
        solves.  Raises :class:`~repro.distributed.ipc.WorkerDiedError` if
        a shard dies mid-fit — per-fit worker state is not replayed;
        callers fall back to the local solver (they hold the full design
        already, for prediction).
        """
        from repro.distributed.irls import drive_irls

        labels_matrix = np.asarray(labels_matrix, dtype=np.float64)
        with self._lock:
            self._fit_counter += 1
            fit_id = f"f{self._fit_counter}"
        columns = list(predictors)

        def begin_payload(index: int) -> Dict[str, Any]:
            start, stop = ctx.ranges[index]
            return {"ctx": ctx.key, "fit": fit_id,
                    "predictors": list(predictors), "cards": list(cards),
                    "labels": labels_matrix[start:stop]}

        widths = self._scatter(ctx, "irls_begin", begin_payload,
                               columns, (), provider)
        n_coefficients = int(widths[0])
        if any(int(width) != n_coefficients for width in widths):
            raise ConfigurationError(
                f"shards disagree on design width: {widths}")

        def step(beta_active: np.ndarray,
                 active_idx: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
            payload = {"ctx": ctx.key, "fit": fit_id, "beta": beta_active,
                       "active": active_idx}
            # No restart-and-retry: a respawned worker has no fit state,
            # so a mid-fit death aborts the distributed fit (callers fall
            # back to the local solver).
            if self.n_shards == 1:
                parts = [self._run_on_worker(ctx, 0, "irls_step", payload,
                                             (), (), provider, retry=False)]
            else:
                captured = trace.capture()
                futures = [
                    self._executor.submit(trace.call_with_capture, captured,
                                          self._run_on_worker, ctx, index,
                                          "irls_step", payload, (), (),
                                          provider, False)
                    for index in range(self.n_shards)]
                parts = [future.result() for future in futures]
            gradients = np.asarray(parts[0][0], dtype=np.float64).copy()
            hessians = np.asarray(parts[0][1], dtype=np.float64).copy()
            for part in parts[1:]:
                gradients += np.asarray(part[0], dtype=np.float64)
                hessians += np.asarray(part[1], dtype=np.float64)
            return gradients, hessians

        try:
            return drive_irls(step, labels_matrix, n_coefficients,
                              l2=l2, max_iter=max_iter, tol=tol)
        finally:
            for handle in self._handles:
                try:
                    ipc.request(handle, "irls_end",
                                {"ctx": ctx.key, "fit": fit_id},
                                self.request_timeout)
                except Exception:
                    continue

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        """Per-shard snapshots plus pool counters (busy workers go stale)."""
        def probe(handle: ipc.PipeWorkerHandle) -> Dict[str, Any]:
            if not handle.lock.acquire(timeout=2.0):
                stale = dict(handle.last_stats or {"role": "row-shard"})
                stale["stale"] = True
                return stale
            try:
                snapshot = ipc.request_locked(handle, "stats", None,
                                              self.request_timeout)
                handle.last_stats = snapshot
                return snapshot
            except Exception as error:
                return {"role": "row-shard",
                        "error": f"{type(error).__name__}: {error}"}
            finally:
                handle.lock.release()

        if not self._started or self._closed:
            workers: Dict[str, Any] = {}
        elif self.n_shards == 1:
            workers = {"0": probe(self._handles[0])}
        else:
            with ThreadPoolExecutor(max_workers=self.n_shards) as executor:
                snapshots = list(executor.map(probe, self._handles))
            workers = {str(handle.index): snapshot
                       for handle, snapshot in zip(self._handles, snapshots)}
        for handle, snapshot in zip(self._handles, workers.values()):
            snapshot.setdefault("restarts", handle.restarts)
            snapshot.setdefault("alive", handle.alive())
        with self._lock:
            front = {
                "n_shards": self.n_shards,
                "start_method": self.start_method,
                "contexts": len(self._contexts),
                "requests": self.requests,
                "worker_restarts": self.worker_restarts,
                "request_retries": self.request_retries,
            }
        front["frame_store"] = {"enabled": self._store is not None}
        if self._store is not None:
            front["frame_store"].update(self._store.stats())
        return {"pool": front, "workers": workers}

    def alive_workers(self) -> int:
        return sum(handle.alive() for handle in self._handles)
