"""Pipe-based worker transport shared by the serving and data-plane tiers.

:class:`~repro.serving.cluster.ServiceCluster` (key-sharded replicas) and
:class:`~repro.distributed.coordinator.ShardPool` (row shards) speak the
same strict request/response discipline over :mod:`multiprocessing` pipes:
one outstanding request per worker (a parent-side lock serialises the
round-trips), replies framed as ``("ok", payload)`` or
``("error", (type_name, args))``, liveness-aware waits, and library
exceptions rebuilt by type in the parent.  This module is that shared
machinery, extracted so the data plane does not reimplement (or import
half of) the serving tier.

``serving.cluster`` re-exports :class:`WorkerDiedError`,
:class:`WorkerFaultError` and ``rebuild_error`` under their historical
names, so existing callers and tests are unaffected.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro import exceptions as _exceptions
from repro.exceptions import ReproError
from repro.obs import trace


class WorkerDiedError(ReproError):
    """A worker went away mid-request (crash / kill / closed pipe).

    Deliberately *not* an :class:`ExplanationError`: that family means "the
    request was bad" (HTTP 400 on the serving path), while a dead worker is
    a server fault (500) — and one the owning tier usually heals by
    restarting the worker and retrying before any caller sees this.
    """


class WorkerFaultError(ReproError):
    """A worker raised an exception type the parent cannot reconstruct.

    Covers internal bugs (``KeyError``, ``LinAlgError``, ``MemoryError``,
    ...) whose types do not live in :mod:`repro.exceptions`.  Like
    :class:`WorkerDiedError` this is a *server* fault (HTTP 500) — it must
    never be folded into the client-error family, or switching from one
    process to a cluster would reclassify crashes as bad requests.  Unlike
    a died worker it is not retried: the process is healthy, the request
    deterministically fails.
    """


def rebuild_error(type_name: str, args: Tuple) -> Exception:
    """Reconstruct a worker-side exception in the parent process.

    Library exceptions rebuild as their own type (so 400/404/422 HTTP
    mappings and caller ``except`` clauses behave exactly as in-process);
    everything else is a worker-internal fault and surfaces as
    :class:`WorkerFaultError`.
    """
    error_class = getattr(_exceptions, type_name, None)
    if error_class is None or not isinstance(error_class, type) \
            or not issubclass(error_class, Exception):
        return WorkerFaultError(
            f"worker failed with {type_name}: "
            + "; ".join(str(arg) for arg in args))
    try:
        return error_class(*args)
    except TypeError:
        return WorkerFaultError(f"worker failed with {type_name}: {args}")


def serve_pipe(conn, serve_one, span_prefix: str = "worker") -> None:
    """The worker-side request/response loop shared by both tiers.

    ``serve_one(op, payload)`` computes one reply; exceptions cross the
    pipe as ``("error", (type_name, args))`` and are rebuilt by
    :func:`rebuild_error` on the parent side.  A ``"shutdown"`` op is
    acknowledged and ends the loop; a closed pipe ends it silently.

    Requests framed as ``(op, payload, trace_context)`` join the
    caller's distributed trace: the loop activates a process-local
    collecting tracer, serves the op under a ``{span_prefix}.{op}``
    span, and ships every span the op recorded back in a three-field
    ``("ok", result, spans)`` reply for the parent to stitch in.
    Two-field frames keep the historical untraced protocol exactly.
    """
    collector = trace.Tracer(max_traces=64, tier=span_prefix)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if len(message) == 3:
            op, payload, trace_context = message
        else:
            op, payload = message
            trace_context = None
        if op == "shutdown":
            conn.send(("ok", None))
            break
        if trace_context is None:
            try:
                conn.send(("ok", serve_one(op, payload)))
            except Exception as error:
                conn.send(("error", (type(error).__name__, error.args)))
            continue
        token = trace.activate(collector, trace_context["trace_id"],
                               trace_context.get("parent_span_id"))
        try:
            with trace.span(f"{span_prefix}.{op}"):
                result = serve_one(op, payload)
            conn.send(("ok", result,
                       collector.pop_spans(trace_context["trace_id"])))
        except Exception as error:
            collector.pop_spans(trace_context["trace_id"])
            conn.send(("error", (type(error).__name__, error.args)))
        finally:
            trace.deactivate(token)


@dataclass
class PipeWorkerHandle:
    """Parent-side view of one worker: process, pipe, request lock."""

    index: int
    process: Any
    conn: Any
    #: Serialises request/response round-trips on the pipe.
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: Bumped on every restart; lets a failing thread detect that another
    #: thread already replaced the process it observed dying.
    generation: int = 0
    restarts: int = 0
    #: Last successful ``stats`` snapshot (served when the worker is busy).
    last_stats: Optional[Dict[str, Any]] = None

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


def poll_reply(handle: PipeWorkerHandle, op: str, timeout: float) -> None:
    """Wait for a reply, failing fast when the worker process dies.

    A SIGKILLed worker closes its pipe end, which ``poll`` surfaces — but
    a worker that never came up (or is wedged before its accept loop)
    would otherwise block for the full request timeout, so the wait is
    sliced and the process liveness re-checked between slices.
    """
    slice_seconds = 0.2
    waited = 0.0
    while waited < timeout:
        if handle.conn.poll(min(slice_seconds, timeout - waited)):
            return
        waited += slice_seconds
        if not handle.process.is_alive():
            # One final poll: the reply may have raced the exit.
            if handle.conn.poll(0):
                return
            raise WorkerDiedError(
                f"worker {handle.index} exited while handling {op!r}")
    raise WorkerDiedError(
        f"worker {handle.index} did not answer {op!r} within {timeout}s")


def request_locked(handle: PipeWorkerHandle, op: str, payload,
                   timeout: float) -> Any:
    """One round-trip body; the caller must hold ``handle.lock``.

    When a trace is active on the calling thread the round-trip runs
    under an ``rpc.{op}`` span whose context rides the request frame —
    the worker's spans come back in the reply and are stitched under
    the rpc span, so one trace id spans both processes.
    """
    with trace.span(f"rpc.{op}", worker=handle.index):
        trace_context = trace.current_context()
        try:
            if trace_context is None:
                handle.conn.send((op, payload))
            else:
                handle.conn.send((op, payload, trace_context))
            poll_reply(handle, op, timeout)
            reply = handle.conn.recv()
        except WorkerDiedError:
            raise
        except (EOFError, OSError, BrokenPipeError, ValueError) as error:
            raise WorkerDiedError(
                f"worker {handle.index} died during {op!r}: "
                f"{type(error).__name__}: {error}") from error
        if len(reply) == 3:
            verdict, result, remote_spans = reply
            if remote_spans:
                trace.absorb(remote_spans)
        else:
            verdict, result = reply
        if verdict == "error":
            raise rebuild_error(*result)
        return result


def request(handle: PipeWorkerHandle, op: str, payload,
            timeout: float) -> Any:
    """One request/response round-trip (raises worker-side errors)."""
    with handle.lock:
        return request_locked(handle, op, payload, timeout)
